-- Fig. 1 of the paper: the book database (publisher / book / review),
-- CASCADE delete policy, loaded with the figure's sample rows.
-- Kept in sync with ufilter_core::bookdemo — tests/fixtures_sync.rs checks.
CREATE TABLE publisher(
    pubid VARCHAR2(10),
    pubname VARCHAR2(100) UNIQUE NOT NULL,
    CONSTRAINTS PubPK PRIMARYKEY (pubid));

CREATE TABLE book(
    bookid VARCHAR2(20),
    title VARCHAR2(100) NOT NULL,
    pubid VARCHAR2(10),
    price DOUBLE CHECK (price > 0.00),
    year DATE,
    CONSTRAINTS BookPK PRIMARYKEY (bookid),
    FOREIGNKEY (pubid) REFERENCES publisher (pubid) ON DELETE CASCADE);

CREATE TABLE review(
    bookid VARCHAR2(20),
    reviewid VARCHAR2(3),
    comment VARCHAR2(100),
    reviewer VARCHAR2(10),
    CONSTRAINTS ReviewPK PRIMARYKEY (bookid, reviewid),
    FOREIGNKEY (bookid) REFERENCES book (bookid) ON DELETE CASCADE);

INSERT INTO publisher VALUES ('A01', 'McGraw-Hill Inc.');
INSERT INTO publisher VALUES ('B01', 'Prentice-Hall Inc.');
INSERT INTO publisher VALUES ('A02', 'Simon & Schuster Inc.');
INSERT INTO book VALUES ('98001', 'TCP/IP Illustrated', 'A01', 37.00, 1997);
INSERT INTO book VALUES ('98002', 'Programming in Unix', 'A02', 45.00, 1985);
INSERT INTO book VALUES ('98003', 'Data on the Web', 'A01', 48.00, 2004);
INSERT INTO review VALUES ('98001', '001', 'A good book on network.', 'William');
INSERT INTO review VALUES ('98001', '002', 'Useful for advanced user.', 'John');
