<BookStats>
<n_books> count(document("book.sql")/book/row) </n_books>,
<top_price> max(document("book.sql")/book/row/price) </top_price>
</BookStats>
