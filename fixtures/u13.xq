FOR $book IN document("BookView.xml")/book
WHERE $book/title/text() = "Data on the Web"
UPDATE $book {
INSERT
<review>
<reviewid>001</reviewid>
<comment>Easy read and useful.</comment>
</review>}
