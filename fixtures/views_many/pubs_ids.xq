<PubView>
FOR $publisher IN document("default.xml")/publisher/row
RETURN {
<publisher>
$publisher/pubid
</publisher>}
</PubView>
