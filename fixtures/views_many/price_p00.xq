<BookView>
FOR $book IN document("default.xml")/book/row
WHERE ($book/price >= 0.00) AND ($book/price < 2.27)
RETURN {
<book>
$book/bookid, $book/title, $book/price,
FOR $review IN document("default.xml")/review/row
WHERE ($book/bookid = $review/bookid)
RETURN{
<review>
$review/reviewid, $review/comment
</review>}
</book>}
</BookView>
