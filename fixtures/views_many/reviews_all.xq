<ReviewView>
FOR $review IN document("default.xml")/review/row
RETURN {
<review>
$review/reviewid, $review/comment, $review/reviewer
</review>}
</ReviewView>
