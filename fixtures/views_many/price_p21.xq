<BookView>
FOR $book IN document("default.xml")/book/row
WHERE ($book/price >= 47.67) AND ($book/price < 50.00)
RETURN {
<book>
$book/bookid, $book/title, $book/price,
FOR $review IN document("default.xml")/review/row
WHERE ($book/bookid = $review/bookid)
RETURN{
<review>
$review/reviewid, $review/comment
</review>}
</book>}
</BookView>
