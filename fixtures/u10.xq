FOR $book IN document("BookView.xml")/book
WHERE $book/price > 40.00
UPDATE $book {
DELETE $book/publisher }
