FOR $n IN document("BookStats.xml")/n_books
UPDATE $n {
DELETE $n }
