<BookView>
FOR $book IN document("default.xml")/book/row,
$publisher IN document("default.xml")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
AND ($book/price<50.00) AND ($book/year > 1990)
RETURN {
<book>
$book/bookid, $book/title, $book/price,
<publisher>
$publisher/pubid, $publisher/pubname
</publisher>,
FOR $review IN document("default.xml")/review/row
WHERE ($book/bookid = $review/bookid)
RETURN{
<review>
$review/reviewid, $review/comment
</review>}
</book>},
FOR $publisher IN document("default.xml")/publisher/row
RETURN{
<publisher>
$publisher/pubid, $publisher/pubname
</publisher>}
</BookView>
