//! Quickstart: the paper's running example end to end.
//!
//! Builds the Fig. 1 book database, compiles the Fig. 3(a) BookView, and
//! pushes all thirteen updates of Figs. 4/10 through the three-step
//! checker, printing the classification and (for survivors) the SQL the
//! translation engine emits.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use u_filter::core::bookdemo;
use u_filter::CheckOutcome;

fn main() {
    let filter = bookdemo::book_filter();

    println!("=== U-Filter quickstart: BookView over the Fig. 1 database ===\n");
    println!("View ASG ({} nodes, relations: {:?})", filter.asg.len(), filter.asg.relations);
    println!("\nSTAR marks (UPoint | UContext) per internal node:");
    for n in filter.asg.internal_nodes() {
        println!(
            "  <{}>  ({} | {})   UCB={{{}}}  UPB={{{}}}",
            n.tag,
            n.upoint.expect("marked"),
            n.ucontext.expect("marked"),
            n.ucbinding.join(","),
            n.upbinding.join(","),
        );
    }

    println!("\n=== Checking the paper's updates u1–u13 ===");
    for (name, update) in bookdemo::all_updates() {
        // Fresh database per update so data-driven checks see Fig. 1 state.
        let mut db = bookdemo::book_db();
        let report = filter.check(update, &mut db).remove(0);
        println!("\n--- {name}: {}", report.outcome.label());
        for (step, note) in &report.trace {
            println!("    [{step}] {note}");
        }
        if let CheckOutcome::Translatable { translation, conditions } = &report.outcome {
            if !conditions.is_empty() {
                let cs: Vec<String> = conditions.iter().map(|c| c.to_string()).collect();
                println!("    conditions: {}", cs.join(" + "));
            }
            for stmt in translation {
                println!("    SQL> {stmt}");
            }
        }
    }

    // Apply one translatable update for real and show the view before/after.
    println!("\n=== Applying u13 (insert a review for \"Data on the Web\") ===");
    let mut db = bookdemo::book_db();
    let before = db.row_count("review");
    let report = filter.apply(bookdemo::U13, &mut db).remove(0);
    println!("outcome: {}", report.outcome);
    println!("review rows: {before} -> {}", db.row_count("review"));
    let rs =
        db.query_sql("SELECT reviewid, comment FROM review WHERE bookid = '98003'").expect("query");
    print!("{}", rs.to_table());
}
