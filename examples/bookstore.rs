//! Bookstore scenario: a session of view updates with side-effect-freedom
//! verified after every accepted update (Definition 1's rectangle rule).
//!
//! Demonstrates:
//! * materializing the XML view and watching it change,
//! * why U-Filter rejects what it rejects (the publisher-sharing traps),
//! * the rectangle-rule oracle confirming each accepted translation.
//!
//! ```text
//! cargo run --example bookstore
//! ```

use u_filter::core::bookdemo;
use u_filter::xquery::materialize;
use u_filter::{apply_and_verify, RectangleVerdict};

fn main() {
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();

    let show_view = |db: &u_filter::rdb::Db, label: &str| {
        let v = materialize(db, filter.query()).expect("view materializes");
        println!("\n--- {label}: view has {} elements ---", v.count_elements(v.root()));
        println!("{}", u_filter::xml::to_pretty_string(&v, v.root()));
    };

    show_view(&db, "initial BookView (Fig. 3b)");

    // A session of updates a bookstore app might issue.
    let session: Vec<(&str, String)> = vec![
        (
            "add a review to TCP/IP Illustrated",
            r#"FOR $book IN document("BookView.xml")/book
               WHERE $book/bookid/text() = "98001"
               UPDATE $book {
                 INSERT <review><reviewid>003</reviewid>
                        <comment>Still the reference.</comment></review> }"#
                .to_string(),
        ),
        (
            "add a brand-new book from a brand-new publisher (rejected: the \
             publisher list under the root would change as a side effect)",
            r#"FOR $root IN document("BookView.xml")
               UPDATE $root {
                 INSERT <book><bookid>98010</bookid><title>Streams</title>
                        <price>29.00</price>
                        <publisher><pubid>C01</pubid><pubname>NewCo Press</pubname></publisher>
                        </book> }"#
                .to_string(),
        ),
        (
            "add a new book from an existing publisher (accepted: shared data pre-exists)",
            r#"FOR $root IN document("BookView.xml")
               UPDATE $root {
                 INSERT <book><bookid>98011</bookid><title>Query Rewrites</title>
                        <price>41.50</price>
                        <publisher><pubid>A02</pubid>
                        <pubname>Simon &amp; Schuster Inc.</pubname></publisher>
                        </book> }"#
                .to_string(),
        ),
        ("drop every review of books under $40", bookdemo::U8.to_string()),
        (
            "retire books over $40 (conditional: minimization retains the publisher)",
            bookdemo::U9.to_string(),
        ),
    ];

    for (label, update) in session {
        println!("\n=== {label} ===");
        let (accepted, verdict) =
            apply_and_verify(&filter, &update, &mut db).expect("pipeline runs");
        if accepted {
            assert_eq!(verdict, Some(RectangleVerdict::Holds));
            println!("accepted; rectangle rule verified (no view side effects)");
        } else {
            let mut probe_db = db.clone();
            let report = filter.check(&update, &mut probe_db).remove(0);
            println!("rejected: {}", report.outcome);
        }
    }

    show_view(&db, "final BookView after the session");

    println!(
        "base tables now: publisher={} book={} review={}",
        db.row_count("publisher"),
        db.row_count("book"),
        db.row_count("review")
    );
}
