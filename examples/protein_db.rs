//! The §7.3 practicality study: a Protein Sequence Database (PSD)-like
//! domain where (i) views are **not** well-nested (the nesting does not
//! follow key/foreign-key structure — prior work [7,8] assumes it does) and
//! (ii) the **SET NULL** delete policy is the norm rather than CASCADE.
//!
//! U-Filter handles both: the non-well-nested view compiles and marks, and
//! the policy-aware closures make deleting an organism side-effect-free
//! even though proteins are republished flat — the SET NULL'd protein rows
//! survive, exactly as the view semantics require.
//!
//! ```text
//! cargo run --example protein_db
//! ```

use u_filter::rdb::Db;
use u_filter::{apply_and_verify, RectangleVerdict, UFilter};

/// A PSD-flavoured schema: organisms, proteins (SET NULL to organism),
/// references (RESTRICT to protein — citations must never dangle or vanish
/// silently).
fn psd_db() -> Db {
    let mut db = Db::new();
    for sql in [
        "CREATE TABLE organism( \
           orgid VARCHAR2(10), \
           species VARCHAR2(100) NOT NULL, \
           CONSTRAINTS OrgPK PRIMARYKEY (orgid))",
        "CREATE TABLE protein( \
           protid VARCHAR2(10), \
           name VARCHAR2(100) NOT NULL, \
           orgid VARCHAR2(10), \
           length INT CHECK (length > 0), \
           CONSTRAINTS ProtPK PRIMARYKEY (protid), \
           FOREIGNKEY (orgid) REFERENCES organism (orgid) ON DELETE SET NULL)",
        "CREATE TABLE reference( \
           refid VARCHAR2(10), \
           protid VARCHAR2(10), \
           citation VARCHAR2(200) NOT NULL, \
           CONSTRAINTS RefPK PRIMARYKEY (refid), \
           FOREIGNKEY (protid) REFERENCES protein (protid) ON DELETE RESTRICT)",
        "INSERT INTO organism VALUES ('O1', 'E. coli')",
        "INSERT INTO organism VALUES ('O2', 'S. cerevisiae')",
        "INSERT INTO protein VALUES ('P1', 'DnaK', 'O1', 638)",
        "INSERT INTO protein VALUES ('P2', 'GroEL', 'O1', 548)",
        "INSERT INTO protein VALUES ('P3', 'Hsp104', 'O2', 908)",
        "INSERT INTO reference VALUES ('R1', 'P1', 'Bukau & Horwich 1998')",
        "INSERT INTO reference VALUES ('R2', 'P3', 'Parsell et al. 1994')",
    ] {
        db.execute_sql(sql).expect("fixture");
    }
    db
}

/// Non-well-nested view: proteins nested under organisms (fine), but
/// references are *not* nested under their proteins — they are published
/// as a separate top-level list, and proteins are republished flat. Prior
/// well-nested-view approaches reject this shape outright.
const PSD_VIEW: &str = r#"
<ProteinView>
FOR $o IN document("default.xml")/organism/row
RETURN {
<organism>
$o/orgid, $o/species,
FOR $p IN document("default.xml")/protein/row
WHERE $p/orgid = $o/orgid
RETURN {
<protein> $p/protid, $p/name, $p/length </protein>}
</organism>},
FOR $p2 IN document("default.xml")/protein/row
RETURN {
<proteinlist> $p2/protid, $p2/name </proteinlist>},
FOR $r IN document("default.xml")/reference/row
RETURN {
<reference> $r/refid, $r/citation </reference>}
</ProteinView>"#;

fn main() {
    let mut db = psd_db();
    let filter = UFilter::compile(PSD_VIEW, db.schema()).expect("non-well-nested view compiles");

    println!("=== PSD view (non-well-nested, SET NULL / RESTRICT policies) ===\n");
    println!("STAR marks:");
    for n in filter.asg.internal_nodes() {
        println!(
            "  <{}>  ({} | {})",
            n.tag,
            n.upoint.expect("marked"),
            n.ucontext.expect("marked")
        );
    }

    // 1. Deleting an organism: under SET NULL the proteins survive (they
    //    leave the nested block but stay in the flat list) — exactly what
    //    removing the <organism> element from the view means. U-Filter's
    //    policy-aware extend() sees this and accepts.
    println!("\n=== delete organism O2 (SET NULL keeps its proteins) ===");
    let del_org = r#"FOR $o IN document("V.xml")/organism
                     WHERE $o/orgid/text() = "O2"
                     UPDATE $o { DELETE $o }"#;
    let (accepted, verdict) = apply_and_verify(&filter, del_org, &mut db).expect("runs");
    println!("accepted={accepted}, rectangle={verdict:?}");
    assert!(accepted);
    assert_eq!(verdict, Some(RectangleVerdict::Holds));
    assert_eq!(db.row_count("organism"), 1);
    assert_eq!(db.row_count("protein"), 3, "SET NULL keeps the proteins");
    let orphans = db.query_sql("SELECT protid FROM protein WHERE orgid IS NULL").expect("query");
    println!("orphaned proteins (orgid IS NULL): {:?}", orphans.column_values("protid"));

    // 2. Deleting a protein from the flat list is untranslatable: the same
    //    tuple also feeds the nested block under its organism.
    println!("\n=== delete P1 from the flat list (untranslatable: shared) ===");
    let del_flat = r#"FOR $p IN document("V.xml")/proteinlist
                      WHERE $p/protid/text() = "P1"
                      UPDATE $p { DELETE $p }"#;
    let report = filter.check(del_flat, &mut db).remove(0);
    println!("outcome: {}", report.outcome);
    assert!(!report.outcome.is_translatable());

    // 3. Deleting a nested protein is rejected at STAR: the same tuple
    //    feeds the flat list (and RESTRICT would block the base delete of
    //    P1 anyway, since a citation still references it).
    println!(
        "\n=== delete nested protein P1 (shared with the flat list; RESTRICT backs it up) ==="
    );
    let del_nested = r#"FOR $o IN document("V.xml")/organism, $p IN $o/protein
                        WHERE $p/protid/text() = "P1"
                        UPDATE $o { DELETE $p }"#;
    let report = filter.apply(del_nested, &mut db).remove(0);
    println!("outcome: {}", report.outcome);
    assert_eq!(db.row_count("protein"), 3, "RESTRICT kept the protein");

    // 4. Even a protein without references is rejected: it is republished
    //    in the flat list, which would lose an entry as a side effect.
    println!("\n=== delete nested protein P2 (no citation, still shared) ===");
    let del_p2 = r#"FOR $o IN document("V.xml")/organism, $p IN $o/protein
                    WHERE $p/protid/text() = "P2"
                    UPDATE $o { DELETE $p }"#;
    let report = filter.check(del_p2, &mut db).remove(0);
    println!("outcome: {}", report.outcome);
    assert!(!report.outcome.is_translatable());

    // 5. Inserting a new reference for an existing protein is clean.
    println!("\n=== insert a reference for P2 (clean) ===");
    let ins_ref = r#"FOR $root IN document("V.xml")
                     UPDATE $root {
                       INSERT <reference><refid>R3</refid>
                              <citation>Glover & Lindquist 1998</citation></reference> }"#;
    let (accepted, verdict) = apply_and_verify(&filter, ins_ref, &mut db).expect("runs");
    println!("accepted={accepted}, rectangle={verdict:?}");
    assert!(accepted);
    assert_eq!(db.row_count("reference"), 3);

    println!("\nPSD session complete: non-well-nested views and non-cascade policies handled.");
}
