//! The evaluation's TPC-H views in action: `Vsuccess` accepts updates at
//! every nesting level, `Vfail` rejects them at STAR in constant time while
//! the blind baseline pays execute-compare-rollback, and the three Step-3
//! strategies run side by side.
//!
//! ```text
//! cargo run --release --example tpch_views
//! ```

use std::time::Instant;

use u_filter::tpch::{generate, tpch_schema, updates, vfail_for, Scale, V_SUCCESS};
use u_filter::{blind_apply, Strategy, UFilter, UFilterConfig};
use ufilter_rdb::DeletePolicy;

fn main() {
    let schema = tpch_schema(DeletePolicy::Cascade);
    let scale = Scale::mb(10);
    println!(
        "generating TPC-H-like data: {} rows (customers={}, orders={}, lineitems≈{})",
        scale.total_rows(),
        scale.customers,
        scale.customers * scale.orders_per_customer,
        scale.customers * scale.orders_per_customer * scale.lineitems_per_order,
    );
    let db = generate(scale, 42, DeletePolicy::Cascade);

    // --- Vsuccess: every level is unconditionally updatable -------------
    println!("\n=== Vsuccess: deletes at every nesting level ===");
    let vs = UFilter::compile(V_SUCCESS, &schema).expect("Vsuccess compiles");
    for (level, update) in [
        ("region", updates::delete_region(2)),
        ("nation", updates::delete_nation(7)),
        ("customer", updates::delete_customer(3)),
        ("order", updates::delete_order(5)),
        ("lineitem", updates::delete_lineitems_of_order(5)),
    ] {
        let mut copy = db.clone();
        let t = Instant::now();
        let report = vs.apply(&update, &mut copy).remove(0);
        println!(
            "  delete one {level:<9} -> {:<28} in {:>8.3} ms",
            report.outcome.label(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    // --- Vfail: STAR rejects instantly; the blind baseline pays dearly --
    println!("\n=== Vfail(region): STAR reject vs blind execute+compare+rollback ===");
    let vf = UFilter::compile(&vfail_for("region"), &schema).expect("Vfail compiles");
    let update = updates::delete_region(1);

    let mut copy = db.clone();
    let t = Instant::now();
    let report = vf.check(&update, &mut copy).remove(0);
    let t_star = t.elapsed();
    println!("  U-Filter: {} in {:.3} ms", report.outcome.label(), t_star.as_secs_f64() * 1e3);

    let mut copy = db.clone();
    let t = Instant::now();
    let blind = blind_apply(&vf, &update, &mut copy).expect("blind run completes");
    let t_blind = t.elapsed();
    println!(
        "  blind:    rolled_back={} in {:.3} ms  ({}x slower)",
        blind.rolled_back,
        t_blind.as_secs_f64() * 1e3,
        (t_blind.as_secs_f64() / t_star.as_secs_f64().max(1e-9)) as u64
    );

    // --- the three Step-3 strategies on the same insert ------------------
    println!("\n=== Step-3 strategies: insert a lineitem into order 3 ===");
    for (name, strategy) in [
        ("internal", Strategy::Internal),
        ("hybrid", Strategy::Hybrid),
        ("outside", Strategy::Outside),
    ] {
        let filter = UFilter::compile(V_SUCCESS, &schema)
            .expect("compiles")
            .with_config(UFilterConfig { strategy, ..Default::default() });
        let mut copy = db.clone();
        let t = Instant::now();
        let report = filter.apply(&updates::insert_lineitem(3, 99), &mut copy).remove(0);
        println!(
            "  {name:<9} -> {:<28} in {:>8.3} ms",
            report.outcome.label(),
            t.elapsed().as_secs_f64() * 1e3
        );
        assert!(report.outcome.is_translatable());
    }

    // … and a conflicting insert every strategy must reject.
    println!("\n=== duplicate lineitem (order 3, line 1) — all strategies reject ===");
    for (name, strategy) in [("hybrid", Strategy::Hybrid), ("outside", Strategy::Outside)] {
        let filter = UFilter::compile(V_SUCCESS, &schema)
            .expect("compiles")
            .with_config(UFilterConfig { strategy, ..Default::default() });
        let mut copy = db.clone();
        let report = filter.apply(&updates::insert_lineitem(3, 1), &mut copy).remove(0);
        println!("  {name:<9} -> {}", report.outcome);
        assert!(!report.outcome.is_translatable());
    }
}
