//! Offline stub of the `rand` crate.
//!
//! The build container has no crates.io access, so this workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8 covering exactly what the
//! code base uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! ranges, and `Rng::gen_bool`. The generator is splitmix64 — deterministic
//! under a seed, which is all the TPC-H data generator requires. Swap this
//! path dependency for the real crate once the registry is reachable.

/// Core RNG abstraction: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Range sampling support for `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
