//! The `Strategy` trait and its combinators.
//!
//! A strategy is a recipe for generating values of its `Value` type from a
//! [`TestRng`]. Unlike real proptest there is no value tree and no
//! shrinking: `generate` produces a final value directly.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    fn prop_flat_map<S, F>(self, make: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, make }
    }

    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, predicate }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Bounded-depth recursion. The stub expands the recursion `depth`
    /// times up front, unioning each level with the base so shallow values
    /// stay reachable; `desired_size`/`expected_branch_size` are accepted
    /// for API compatibility only.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// A reference-counted, type-erased strategy (`Rc`, so cheap to clone into
/// recursive definitions).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    make: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.make)(self.source.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.source.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.whence);
    }
}

/// Weighted union over same-valued strategies; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// String literals are regex-subset strategies, as in real proptest.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::from_seed(3);
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_honours_weights() {
        let mut rng = TestRng::from_seed(4);
        let s = Union::new(vec![(1, Just(0i64).boxed()), (9, Just(1i64).boxed())]);
        let ones: i64 = (0..1000).map(|_| s.generate(&mut rng)).sum();
        assert!(ones > 700, "weight-9 arm drawn only {ones}/1000 times");
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::from_seed(5);
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..10, n..(n + 1)));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 1,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::from_seed(6);
        let s = Just(T::Leaf).prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 7);
        }
    }
}
