//! `any::<T>()` over the primitives the test suites draw from.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_negative_values() {
        let mut rng = TestRng::from_seed(31);
        let s = any::<i32>();
        let vals: Vec<i32> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| *v < 0) && vals.iter().any(|v| *v > 0));
    }
}
