//! Offline stub of the `proptest` crate.
//!
//! The build container has no crates.io access, so this workspace vendors a
//! minimal, API-compatible subset of proptest 1.x covering what the test
//! suites use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_flat_map`, `prop_recursive` and `boxed`; `Just`; integer, float
//! and regex-literal string strategies; `prop::collection::{vec,
//! btree_set}`; the `proptest!`, `prop_assert!`, `prop_assert_eq!` and
//! `prop_oneof!` macros; and `ProptestConfig::with_cases`.
//!
//! Semantics differ from real proptest in one important way: **there is no
//! shrinking**. A failing case panics immediately and the harness prints
//! the generated inputs for that case. Generation is deterministic per test
//! function (seeded from the test's module path and name, perturbable via
//! the `PROPTEST_SEED` environment variable), so failures reproduce.
//! Swap this path dependency for the real crate once the registry is
//! reachable.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::strategy;
        pub use crate::string;
    }
}

/// Assert a condition inside a `proptest!` body.
///
/// Unlike real proptest (which returns a `TestCaseError` so the runner can
/// shrink), the stub panics; the `proptest!` harness catches the panic and
/// reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Uniform choice between strategies producing the same value type.
///
/// Weighted arms (`w => strategy`) are accepted and the weight is honoured
/// by simple repetition in the candidate list.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $crate::strategy::Strategy::boxed($strategy);
                ($weight as u32, s)
            }),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// The stub's `proptest!` harness: runs each test body `config.cases`
/// times over freshly generated inputs, catching panics to report the
/// case's inputs before re-raising.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                let __generated =
                    ($($crate::strategy::Strategy::generate(&$strategy, &mut rng),)+);
                // Debug snapshot per case so a failure can name its inputs
                // (the stub has no shrinking).
                let __snapshot = format!("{:#?}", &__generated);
                // As in real proptest, the body runs in a context returning
                // `Result` so `return Ok(())` early-exits compile.
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($arg,)+) = __generated;
                        $body
                        Ok(())
                    },
                ));
                if let Ok(Err(reject)) = &__result {
                    panic!("proptest case returned Err: {reject}");
                }
                if let Err(panic) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed; inputs {} =\n{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        stringify!(($($arg),+)),
                        __snapshot
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}
