//! Test-run configuration and the deterministic RNG behind the stub.

/// FNV-1a over `text`, continuing from `state`. Used for seeding so the
/// same test name yields the same stream on every Rust release.
fn fnv1a(state: u64, text: &str) -> u64 {
    let mut h = state;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Mirror of `proptest::test_runner::Config`, reduced to the knob the test
/// suites actually turn.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error type a `proptest!` body may early-return; mirrors the role of
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator behind every strategy, backed by the vendored
/// rand stub's splitmix64 `StdRng` (one RNG core shared across the stubs).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// Seed from the test's fully qualified name (stable across runs *and*
    /// toolchains — FNV-1a, not the unspecified std hasher; the
    /// `PROPTEST_SEED` environment variable perturbs it for exploration).
    pub fn for_test(qualified_name: &str) -> Self {
        let mut seed = fnv1a(0xcbf2_9ce4_8422_2325, qualified_name);
        if let Ok(perturb) = std::env::var("PROPTEST_SEED") {
            seed = fnv1a(seed, &perturb);
        }
        Self::from_seed(seed)
    }

    pub fn from_seed(seed: u64) -> Self {
        use rand::SeedableRng;
        TestRng { inner: rand::rngs::StdRng::seed_from_u64(seed) }
    }

    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`; modulo bias is acceptable for test
    /// data generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range in strategy");
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("a::b");
        let mut b = TestRng::for_test("a::b");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
