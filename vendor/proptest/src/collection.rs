//! Collection strategies: `prop::collection::{vec, btree_set}`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for collection::vec");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` with a target size drawn from `size`. As with real
/// proptest, deduplication can leave the set smaller than the draw.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range for collection::btree_set");
    BTreeSetStrategy { element, size }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let target = self.size.start + rng.below(span) as usize;
        let mut out = BTreeSet::new();
        // Give duplicates a few extra draws, then settle for what we have.
        for _ in 0..(target * 4) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(11);
        let s = vec(0i64..5, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn btree_set_stays_within_target() {
        let mut rng = TestRng::from_seed(12);
        let s = btree_set(0i64..100, 0..5);
        for _ in 0..200 {
            assert!(s.generate(&mut rng).len() < 5);
        }
    }
}
