//! `prop::option::of` — wrap a strategy's value in `Option`, `None` half
//! the time (real proptest's default probability).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn roughly_half_none() {
        let mut rng = TestRng::from_seed(41);
        let s = of(Just(7u8));
        let somes = (0..1000).filter(|_| s.generate(&mut rng).is_some()).count();
        assert!((300..700).contains(&somes), "{somes}/1000 Some");
    }
}
