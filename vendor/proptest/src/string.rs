//! A generator for the regex subset the test suites use as string
//! strategies: literal characters, escaped characters, character classes
//! with ranges (`[a-zA-Z0-9 .,&-]`), and `{n}` / `{m,n}` / `?` / `*` / `+`
//! quantifiers. No alternation, anchors, groups or negated classes — the
//! suites express alternation with `prop_oneof!`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut entries: Vec<(char, char)> = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
                    match c {
                        ']' => break,
                        '\\' => {
                            let lit = chars.next().unwrap_or_else(|| {
                                panic!("dangling escape in character class in {pattern:?}")
                            });
                            entries.push((lit, lit));
                        }
                        lo => {
                            // `a-z` range unless `-` is the class's last char.
                            if chars.peek() == Some(&'-') {
                                let mut ahead = chars.clone();
                                ahead.next(); // the '-'
                                match ahead.peek() {
                                    Some(']') | None => entries.push((lo, lo)),
                                    Some(&hi) => {
                                        chars.next();
                                        chars.next();
                                        assert!(lo <= hi, "inverted range in {pattern:?}");
                                        entries.push((lo, hi));
                                    }
                                }
                            } else {
                                entries.push((lo, lo));
                            }
                        }
                    }
                }
                assert!(!entries.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(entries)
            }
            '\\' => {
                let lit =
                    chars.next().unwrap_or_else(|| panic!("dangling escape at end of {pattern:?}"));
                Atom::Literal(lit)
            }
            lit => Atom::Literal(lit),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((m, n)) => {
                        let m: usize = m.trim().parse().expect("bad quantifier lower bound");
                        let n: usize = n.trim().parse().expect("bad quantifier upper bound");
                        assert!(m <= n, "inverted quantifier in {pattern:?}");
                        (m, n)
                    }
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn pick(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(entries) => {
            let total: u64 = entries.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
            let mut draw = rng.below(total);
            for (lo, hi) in entries {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if draw < span {
                    return char::from_u32(*lo as u32 + draw as u32)
                        .expect("character range stays in scalar values");
                }
                draw -= span;
            }
            unreachable!("class pick exceeded total span")
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(pick(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn gen100(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::from_seed(21);
        (0..100).map(|_| generate_matching(pattern, &mut rng)).collect()
    }

    #[test]
    fn classes_with_counts() {
        for s in gen100("[a-z]{0,8}") {
            assert!(s.len() <= 8 && s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
        for s in gen100("[0-9]{1,6}") {
            assert!((1..=6).contains(&s.len()) && s.chars().all(|c| c.is_ascii_digit()), "{s:?}");
        }
    }

    #[test]
    fn literal_prefix_and_escape() {
        for s in gen100("9[0-9]{4}") {
            assert!(s.len() == 5 && s.starts_with('9'), "{s:?}");
        }
        for s in gen100("[a-c]\\.[a-e]") {
            let b = s.as_bytes();
            assert!(b.len() == 3 && b[1] == b'.', "{s:?}");
            assert!((b'a'..=b'c').contains(&b[0]) && (b'a'..=b'e').contains(&b[2]), "{s:?}");
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let allowed = |c: char| c.is_ascii_alphanumeric() || " .,&-".contains(c);
        for s in gen100("[a-zA-Z0-9 .,&-]{0,20}") {
            assert!(s.chars().all(allowed), "{s:?}");
        }
    }

    #[test]
    fn bare_literals() {
        assert_eq!(gen100("<=").concat(), "<=".repeat(100));
    }
}
