//! Offline stub of the `criterion` crate.
//!
//! The build container has no crates.io access, so this workspace vendors a
//! minimal, API-compatible subset of criterion 0.5: `Criterion`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock loop (warm-up, then samples until a small time budget is
//! spent) reported as min/mean per iteration — enough to spot order-of-
//! magnitude regressions and to keep `cargo bench --no-run` compiling.
//! Swap this path dependency for the real crate once the registry is
//! reachable.

use std::time::{Duration, Instant};

/// Per-bench time budget. Overridable via `UFILTER_BENCH_MS` so CI smoke
/// runs can shrink it.
fn budget() -> Duration {
    let ms = std::env::var("UFILTER_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300u64);
    Duration::from_millis(ms)
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The stub runs one setup per
/// measured iteration regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifies a benchmark within a group, criterion-style.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

#[derive(Debug, Default, Clone)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine` repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let deadline = Instant::now() + budget();
        // Warm-up.
        black_box(routine());
        loop {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + budget();
        black_box(routine(setup()));
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if Instant::now() >= deadline || self.samples.len() >= 10_000 {
                break;
            }
        }
    }
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {:<40} {:>12?}/iter (min {:>10?}, {} samples)",
            id.to_string(),
            total / n,
            min,
            n
        );
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        std::env::set_var("UFILTER_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
