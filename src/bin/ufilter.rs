//! `ufilter` — command-line driver for the U-Filter checker.
//!
//! ```text
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq check fixtures/u8.xq
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq apply fixtures/u13.xq
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq show-asg
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq materialize
//! ufilter --schema fixtures/book.sql sql "SELECT * FROM book"
//! ufilter --schema fixtures/book.sql --catalog views.cat catalog add books fixtures/bookview.xq
//! ufilter --schema fixtures/book.sql --catalog views.cat check-batch updates.ubatch
//! ```
//!
//! `--schema` takes a `;`-separated SQL script (DDL + data). `--view` takes
//! a view-query file. `--strategy internal|hybrid|outside` and
//! `--mode strict|refined` tune the pipeline. `--catalog` names the view
//! manifest (`name=viewfile` lines) the `catalog`/`check-batch` commands
//! operate on.

use std::process::ExitCode;

use u_filter::core::catalog::{is_schema_ddl, ViewCatalog};
use u_filter::xquery::materialize;
use u_filter::{CheckOutcome, StarMode, Strategy, UFilter, UFilterConfig};
use ufilter_rdb::{Db, Parser};

struct Args {
    schema: Option<String>,
    view: Option<String>,
    catalog: Option<String>,
    strategy: Strategy,
    mode: StarMode,
    command: String,
    operands: Vec<String>,
}

impl Args {
    fn operand(&self, i: usize, what: &str) -> Result<&str, String> {
        self.operands.get(i).map(String::as_str).ok_or_else(|| what.to_string())
    }

    /// Reject trailing operands beyond the `n` a command consumes.
    fn at_most(&self, n: usize) -> Result<(), String> {
        match self.operands.get(n) {
            Some(extra) => Err(format!("unexpected argument {extra}")),
            None => Ok(()),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        schema: None,
        view: None,
        catalog: None,
        strategy: Strategy::Outside,
        mode: StarMode::Refined,
        command: String::new(),
        operands: Vec::new(),
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schema" => out.schema = Some(args.next().ok_or("--schema needs a file")?),
            "--view" => out.view = Some(args.next().ok_or("--view needs a file")?),
            "--catalog" => out.catalog = Some(args.next().ok_or("--catalog needs a file")?),
            "--strategy" => {
                out.strategy = match args.next().as_deref() {
                    Some("internal") => Strategy::Internal,
                    Some("hybrid") => Strategy::Hybrid,
                    Some("outside") => Strategy::Outside,
                    other => return Err(format!("unknown strategy {other:?}")),
                }
            }
            "--mode" => {
                out.mode = match args.next().as_deref() {
                    Some("strict") => StarMode::Strict,
                    Some("refined") => StarMode::Refined,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--help" | "-h" => {
                out.command = "help".into();
                return Ok(out);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            cmd if out.command.is_empty() => out.command = cmd.to_string(),
            operand => out.operands.push(operand.to_string()),
        }
    }
    if out.command.is_empty() {
        out.command = "help".into();
    }
    Ok(out)
}

const HELP: &str = "\
ufilter — XML view update translatability checker (U-Filter, ICDE 2006)

USAGE:
    ufilter --schema <script.sql> [--view <view.xq>] [options] <command> [operands]

COMMANDS:
    check <update.xq>    run the three-step check; print the trace + SQL
    apply <update.xq>    check and execute the translated update
    show-asg             print the view ASG with its STAR marks
    materialize          print the materialized XML view
    sql <statement>      run one SQL statement against the loaded schema
                         (DDL is guarded by the catalog when --catalog is given)
    catalog add <name> <view.xq>   register a view in the --catalog manifest
    catalog list                   list registered views with their relations
    catalog drop <name>            unregister a view
    check-batch <updates-file>     batch-check an update stream against the
                                   catalog; blocks start with '-- view: <name>'
    help                 this message

OPTIONS:
    --catalog <file>                     view manifest ('name=viewfile' lines)
    --strategy internal|hybrid|outside   update-point strategy (default outside)
    --mode strict|refined                Observation-2 handling (default refined)
";

fn load_db(args: &Args) -> Result<Db, String> {
    let Some(path) = &args.schema else {
        return Err("--schema <file> is required".into());
    };
    let script = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut db = Db::new();
    db.execute_script(&script).map_err(|e| format!("{path}: {e}"))?;
    Ok(db)
}

fn load_filter(args: &Args, db: &Db) -> Result<UFilter, String> {
    let Some(path) = &args.view else {
        return Err("--view <file> is required for this command".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    UFilter::compile(&text, db.schema())
        .map(|f| f.with_config(UFilterConfig { mode: args.mode, strategy: args.strategy }))
        .map_err(|e| format!("{path}: {e}"))
}

/// Read a catalog manifest: `name=viewfile` lines, `#` comments. A missing
/// file is an error unless `allow_missing` (only `catalog add` may create a
/// fresh manifest — everywhere else a typo'd path must not silently behave
/// like an empty catalog and disable the DDL guard).
fn load_manifest(path: &str, allow_missing: bool) -> Result<Vec<(String, String)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && allow_missing => {
            return Ok(Vec::new())
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, file) = line
            .split_once('=')
            .ok_or_else(|| format!("{path}:{}: expected 'name=viewfile'", lineno + 1))?;
        entries.push((name.trim().to_string(), file.trim().to_string()));
    }
    Ok(entries)
}

fn save_manifest(path: &str, entries: &[(String, String)]) -> Result<(), String> {
    let mut out = String::from("# ufilter view catalog: name=viewfile\n");
    for (name, file) in entries {
        out.push_str(&format!("{name}={file}\n"));
    }
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// Compile every manifest entry into a `ViewCatalog`.
fn build_catalog(args: &Args, path: &str, db: &Db) -> Result<ViewCatalog, String> {
    let mut catalog = ViewCatalog::new(db.schema().clone())
        .with_config(UFilterConfig { mode: args.mode, strategy: args.strategy });
    for (name, file) in load_manifest(path, false)? {
        let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
        catalog.add(&name, &text).map_err(|e| e.to_string())?;
    }
    Ok(catalog)
}

fn catalog_path(args: &Args) -> Result<&str, String> {
    args.catalog
        .as_deref()
        .ok_or_else(|| "--catalog <file> is required for this command".to_string())
}

/// Parse an update-stream file: blocks introduced by `-- view: <name>`
/// lines, each holding one update statement. Other `--` lines are comments.
fn parse_batch_file(path: &str, text: &str) -> Result<Vec<(String, String)>, String> {
    let mut stream: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("-- view:") {
            stream.push((rest.trim().to_string(), String::new()));
        } else if trimmed.starts_with("--") {
            // Comment line; never part of an update's text.
        } else if let Some((_, update)) = stream.last_mut() {
            update.push_str(line);
            update.push('\n');
        } else if !trimmed.is_empty() {
            return Err(format!(
                "{path}:{}: update text before the first '-- view: <name>' header",
                lineno + 1
            ));
        }
    }
    if stream.is_empty() {
        return Err(format!("{path}: no '-- view: <name>' blocks found"));
    }
    Ok(stream)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "help" => {
            print!("{HELP}");
            Ok(true)
        }
        "sql" => {
            let mut db = load_db(&args)?;
            let stmt = args.operand(0, "sql needs a statement")?;
            args.at_most(1)?;
            // With a catalog, schema-affecting DDL goes through the RESTRICT
            // guard; anything else skips catalog compilation entirely.
            let parsed = Parser::parse_stmt(stmt).map_err(|e| e.to_string())?;
            let out = match (is_schema_ddl(&parsed), args.catalog.as_deref()) {
                (true, Some(path)) => {
                    let mut catalog = build_catalog(&args, path, &db)?;
                    catalog.execute_guarded_stmt(&mut db, parsed).map_err(|e| e.to_string())?
                }
                _ => db.run(parsed).map_err(|e| e.to_string())?,
            };
            if let Some(rs) = out.result {
                print!("{}", rs.to_table());
            } else {
                println!("{} row(s) affected", out.affected);
            }
            for w in out.warnings {
                eprintln!("warning: {w}");
            }
            Ok(true)
        }
        "catalog" => {
            let path = catalog_path(&args)?;
            match args.operand(0, "catalog subcommand (add/list/drop)")? {
                "add" => {
                    let name = args.operand(1, "catalog add needs a view name")?;
                    let file = args.operand(2, "catalog add needs a view file")?;
                    args.at_most(3)?;
                    // The manifest is line-oriented `name=viewfile` with `#`
                    // comments; keep names representable in it.
                    if name.is_empty()
                        || name.contains(['=', '#'])
                        || name.chars().any(char::is_whitespace)
                    {
                        return Err(format!(
                            "view name '{name}' may not be empty or contain '=', '#', or whitespace"
                        ));
                    }
                    let db = load_db(&args)?;
                    let mut entries = load_manifest(path, true)?;
                    if entries.iter().any(|(n, _)| n == name) {
                        return Err(format!("view '{name}' is already registered in {path}"));
                    }
                    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                    let filter =
                        UFilter::compile(&text, db.schema()).map_err(|e| format!("{file}: {e}"))?;
                    entries.push((name.to_string(), file.to_string()));
                    save_manifest(path, &entries)?;
                    println!(
                        "registered '{name}' ({file}); reads {{{}}}",
                        filter.asg.relations.join(", ")
                    );
                    Ok(true)
                }
                "list" => {
                    args.at_most(1)?;
                    let db = load_db(&args)?;
                    let catalog = build_catalog(&args, path, &db)?;
                    for info in catalog.list() {
                        println!(
                            "{}\treads {{{}}}{}",
                            info.name,
                            info.relations.join(", "),
                            if info.cached { "\t(shared artifact)" } else { "" }
                        );
                    }
                    println!("{} view(s) registered", catalog.len());
                    Ok(true)
                }
                "drop" => {
                    let name = args.operand(1, "catalog drop needs a view name")?;
                    args.at_most(2)?;
                    let mut entries = load_manifest(path, false)?;
                    let before = entries.len();
                    entries.retain(|(n, _)| n != name);
                    if entries.len() == before {
                        return Err(format!("no view named '{name}' in {path}"));
                    }
                    save_manifest(path, &entries)?;
                    println!("dropped '{name}'");
                    Ok(true)
                }
                other => Err(format!("unknown catalog subcommand {other}; try --help")),
            }
        }
        "check-batch" => {
            let path = catalog_path(&args)?;
            let mut db = load_db(&args)?;
            let catalog = build_catalog(&args, path, &db)?;
            let file = args.operand(0, "check-batch needs an updates file")?;
            args.at_most(1)?;
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let stream = parse_batch_file(file, &text)?;
            let batch = catalog.check_batch_text(&stream, &mut db);
            let mut all_ok = true;
            for item in &batch.items {
                for report in &item.reports {
                    println!("[{}] {}: {}", item.index + 1, item.view, report.outcome);
                    if !report.outcome.is_translatable() {
                        all_ok = false;
                    }
                }
            }
            let s = batch.stats;
            println!(
                "--- {} update(s), {} parse hit(s), {} probe hit(s) / {} miss(es), \
                 {} target group(s)",
                s.items, s.parse_hits, s.probe_hits, s.probe_misses, s.target_groups
            );
            Ok(all_ok)
        }
        "show-asg" => {
            args.at_most(0)?;
            let db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            print!("{}", filter.asg.describe());
            Ok(true)
        }
        "materialize" => {
            args.at_most(0)?;
            let db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            let doc = materialize(&db, &filter.query).map_err(|e| e.to_string())?;
            print!("{}", u_filter::xml::to_pretty_string(&doc, doc.root()));
            Ok(true)
        }
        cmd @ ("check" | "apply") => {
            let mut db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            let path = args.operand(0, "check/apply need an update file")?;
            args.at_most(1)?;
            let update = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let reports = if cmd == "apply" {
                filter.apply(&update, &mut db)
            } else {
                filter.check(&update, &mut db)
            };
            let mut all_ok = true;
            for (i, report) in reports.iter().enumerate() {
                if reports.len() > 1 {
                    println!("--- action {} ---", i + 1);
                }
                for (step, note) in &report.trace {
                    println!("[{step}] {note}");
                }
                println!("=> {}", report.outcome);
                if let CheckOutcome::Translatable { translation, .. } = &report.outcome {
                    for stmt in translation {
                        println!("SQL> {stmt}");
                    }
                } else {
                    all_ok = false;
                }
            }
            Ok(all_ok)
        }
        other => Err(format!("unknown command {other}; try --help")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1), // update rejected
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
