//! `ufilter` — command-line driver for the U-Filter checker.
//!
//! ```text
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq check fixtures/u8.xq
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq apply fixtures/u13.xq
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq show-asg
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq materialize
//! ufilter --schema fixtures/book.sql sql "SELECT * FROM book"
//! ufilter --schema fixtures/book.sql --catalog views.cat catalog add books fixtures/bookview.xq
//! ufilter --schema fixtures/book.sql --catalog views.cat check-batch updates.ubatch
//! ```
//!
//! `--schema` takes a `;`-separated SQL script (DDL + data). `--view` takes
//! a view-query file. `--strategy internal|hybrid|outside` and
//! `--mode strict|refined` tune the pipeline. `--catalog` names the view
//! manifest (`name=viewfile` lines) the `catalog`/`check-batch` commands
//! operate on.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

use u_filter::core::catalog::{is_schema_ddl, ViewCatalog};
use u_filter::core::persist::CatalogStore;
use u_filter::core::wire;
use u_filter::service::{proto, CheckServer, ShardedCatalog};
use u_filter::xquery::materialize;
use u_filter::{CheckOutcome, StarMode, Strategy, UFilter, UFilterConfig};
use ufilter_rdb::{Db, Parser};

/// One usage line, printed under arg errors (unknown option / wrong arity)
/// so every failure with exit code 2 tells the user the expected shape.
const USAGE_LINE: &str =
    "ufilter [--schema <script.sql>] [--view <view.xq>] [--catalog <manifest>] [options] \
     <command> [operands]   (try --help)";

/// Per-command usage lines (same purpose, sharper shape).
fn cmd_usage(cmd: &str) -> &'static str {
    match cmd {
        "check" => "ufilter --schema <s.sql> --view <v.xq> [options] check <update.xq>",
        "apply" => "ufilter --schema <s.sql> --view <v.xq> [options] apply <update.xq>",
        "show-asg" => "ufilter --schema <s.sql> --view <v.xq> show-asg",
        "materialize" => "ufilter --schema <s.sql> --view <v.xq> materialize",
        "sql" => "ufilter --schema <s.sql> [--catalog <manifest>] sql <statement>",
        "catalog" => {
            "ufilter --schema <s.sql> --catalog <manifest> catalog add <name> <view.xq> \
             | catalog list | catalog drop <name> \
             | ufilter --data-dir <dir> catalog compact | catalog verify"
        }
        "check-batch" => {
            "ufilter --schema <s.sql> --catalog <manifest> check-batch <updates.ubatch>"
        }
        "check-all" => "ufilter --schema <s.sql> --catalog <manifest> check-all <update.xq>",
        "serve" => {
            "ufilter --schema <s.sql> [--views <manifest>] [--data-dir <dir>] [--listen <addr>] \
             [--workers <n>] [--slow-ms <ms>] serve"
        }
        "client" => "ufilter client <host:port> <script.ucl | ->",
        _ => USAGE_LINE,
    }
}

fn usage_err(cmd: &str, msg: impl std::fmt::Display) -> String {
    format!("{msg}\nusage: {}", cmd_usage(cmd))
}

struct Args {
    schema: Option<String>,
    view: Option<String>,
    catalog: Option<String>,
    data_dir: Option<String>,
    listen: Option<String>,
    workers: Option<usize>,
    slow_ms: Option<u64>,
    strategy: Strategy,
    mode: StarMode,
    command: String,
    operands: Vec<String>,
}

impl Args {
    fn operand(&self, i: usize, what: &str) -> Result<&str, String> {
        self.operands.get(i).map(String::as_str).ok_or_else(|| usage_err(&self.command, what))
    }

    /// Reject trailing operands beyond the `n` a command consumes.
    fn at_most(&self, n: usize) -> Result<(), String> {
        match self.operands.get(n) {
            Some(extra) => Err(usage_err(&self.command, format!("unexpected argument {extra}"))),
            None => Ok(()),
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        schema: None,
        view: None,
        catalog: None,
        data_dir: None,
        listen: None,
        workers: None,
        slow_ms: None,
        strategy: Strategy::Outside,
        mode: StarMode::Refined,
        command: String::new(),
        operands: Vec::new(),
    };
    let general = |msg: String| format!("{msg}\nusage: {USAGE_LINE}");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schema" => {
                out.schema =
                    Some(args.next().ok_or_else(|| general("--schema needs a file".into()))?)
            }
            "--view" => {
                out.view = Some(args.next().ok_or_else(|| general("--view needs a file".into()))?)
            }
            // `--views` is the serve-flavoured alias from the service docs;
            // both name the same `name=viewfile` manifest.
            "--catalog" | "--views" => {
                out.catalog = Some(args.next().ok_or_else(|| general(format!("{a} needs a file")))?)
            }
            "--data-dir" => {
                out.data_dir = Some(
                    args.next().ok_or_else(|| general("--data-dir needs a directory".into()))?,
                )
            }
            "--listen" => {
                out.listen =
                    Some(args.next().ok_or_else(|| general("--listen needs an address".into()))?)
            }
            "--workers" => {
                let v = args.next().ok_or_else(|| general("--workers needs a count".into()))?;
                out.workers =
                    Some(v.parse::<usize>().ok().filter(|w| *w >= 1).ok_or_else(|| {
                        general(format!("--workers needs a count >= 1, got {v}"))
                    })?);
            }
            "--slow-ms" => {
                let v = args.next().ok_or_else(|| general("--slow-ms needs a threshold".into()))?;
                out.slow_ms = Some(v.parse::<u64>().map_err(|_| {
                    general(format!("--slow-ms needs a millisecond count, got {v}"))
                })?);
            }
            "--strategy" => {
                out.strategy = match args.next().as_deref() {
                    Some("internal") => Strategy::Internal,
                    Some("hybrid") => Strategy::Hybrid,
                    Some("outside") => Strategy::Outside,
                    other => return Err(general(format!("unknown strategy {other:?}"))),
                }
            }
            "--mode" => {
                out.mode = match args.next().as_deref() {
                    Some("strict") => StarMode::Strict,
                    Some("refined") => StarMode::Refined,
                    other => return Err(general(format!("unknown mode {other:?}"))),
                }
            }
            "--help" | "-h" => {
                out.command = "help".into();
                return Ok(out);
            }
            flag if flag.starts_with("--") => {
                return Err(general(format!("unknown option {flag}")))
            }
            cmd if out.command.is_empty() => out.command = cmd.to_string(),
            operand => out.operands.push(operand.to_string()),
        }
    }
    if out.command.is_empty() {
        out.command = "help".into();
    }
    Ok(out)
}

const HELP: &str = "\
ufilter — XML view update translatability checker (U-Filter, ICDE 2006)

USAGE:
    ufilter --schema <script.sql> [--view <view.xq>] [options] <command> [operands]

COMMANDS:
    check <update.xq>    run the three-step check; print the trace + SQL
    apply <update.xq>    check and execute the translated update
    show-asg             print the view ASG with its STAR marks
    materialize          print the materialized XML view
    sql <statement>      run one SQL statement against the loaded schema
                         (DDL is guarded by the catalog when --catalog is given)
    catalog add <name> <view.xq>   register a view in the --catalog manifest
    catalog list                   list registered views with their relations
    catalog drop <name>            unregister a view
    catalog compact                fold the --data-dir snapshot+log into a fresh
                                   snapshot (offline; the server also compacts
                                   on clean shutdown)
    catalog verify                 read-only integrity check of the --data-dir
                                   files; exit 1 if anything would be repaired
    check-batch <updates-file>     batch-check an update stream against the
                                   catalog; blocks start with '-- view: <name>'
    check-all <update.xq>          fan one update out to every catalog view it
                                   could affect (relevance-index routed); prints
                                   one wire outcome per candidate view
    serve                run the concurrent check server (sharded catalog +
                         worker pool); prints 'LISTENING <addr>' once bound.
                         With --data-dir, catalog mutations are durable: the
                         server logs them before acknowledging, recovers them
                         on restart (prints 'RECOVERED ...'), and compacts on
                         clean shutdown
    client <addr> <script>  drive a running server with a scripted session
                            ('-' reads the script from stdin); script verbs:
                            add/drop/list/verify/check/batch/checkall/batchall/
                            stats/metrics/ping/shutdown
    help                 this message

OPTIONS:
    --catalog <file>                     view manifest ('name=viewfile' lines)
    --views <file>                       alias for --catalog (serve-flavoured)
    --data-dir <dir>                     durable catalog directory (serve,
                                         catalog compact/verify)
    --listen <addr>                      serve: bind address (default 127.0.0.1:0)
    --workers <n>                        serve: worker threads (default 4)
    --slow-ms <ms>                       serve: log requests slower than <ms>
                                         milliseconds to stderr as SLOW lines
                                         with a trace id (default: off)
    --strategy internal|hybrid|outside   update-point strategy (default outside)
    --mode strict|refined                Observation-2 handling (default refined)
";

fn load_db(args: &Args) -> Result<Db, String> {
    let Some(path) = &args.schema else {
        return Err("--schema <file> is required".into());
    };
    let script = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut db = Db::new();
    db.execute_script(&script).map_err(|e| format!("{path}: {e}"))?;
    Ok(db)
}

fn load_filter(args: &Args, db: &Db) -> Result<UFilter, String> {
    let Some(path) = &args.view else {
        return Err("--view <file> is required for this command".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    UFilter::compile(&text, db.schema())
        .map(|f| f.with_config(UFilterConfig { mode: args.mode, strategy: args.strategy }))
        .map_err(|e| format!("{path}: {e}"))
}

/// Read a catalog manifest: `name=viewfile` lines, `#` comments. A missing
/// file is an error unless `allow_missing` (only `catalog add` may create a
/// fresh manifest — everywhere else a typo'd path must not silently behave
/// like an empty catalog and disable the DDL guard).
fn load_manifest(path: &str, allow_missing: bool) -> Result<Vec<(String, String)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && allow_missing => {
            return Ok(Vec::new())
        }
        Err(e) => return Err(format!("{path}: {e}")),
    };
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, file) = line
            .split_once('=')
            .ok_or_else(|| format!("{path}:{}: expected 'name=viewfile'", lineno + 1))?;
        entries.push((name.trim().to_string(), file.trim().to_string()));
    }
    Ok(entries)
}

fn save_manifest(path: &str, entries: &[(String, String)]) -> Result<(), String> {
    let mut out = String::from("# ufilter view catalog: name=viewfile\n");
    for (name, file) in entries {
        out.push_str(&format!("{name}={file}\n"));
    }
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))
}

/// Compile every manifest entry into a `ViewCatalog`.
fn build_catalog(args: &Args, path: &str, db: &Db) -> Result<ViewCatalog, String> {
    let mut catalog = ViewCatalog::new(db.schema().clone())
        .with_config(UFilterConfig { mode: args.mode, strategy: args.strategy });
    for (name, file) in load_manifest(path, false)? {
        let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
        catalog.add(&name, &text).map_err(|e| e.to_string())?;
    }
    Ok(catalog)
}

fn catalog_path(args: &Args) -> Result<&str, String> {
    args.catalog
        .as_deref()
        .ok_or_else(|| "--catalog <file> is required for this command".to_string())
}

fn data_dir_path(args: &Args) -> Result<&str, String> {
    args.data_dir
        .as_deref()
        .ok_or_else(|| "--data-dir <dir> is required for this command".to_string())
}

/// Parse an update-stream file: blocks introduced by `-- view: <name>`
/// lines, each holding one update statement. Other `--` lines are comments.
fn parse_batch_file(path: &str, text: &str) -> Result<Vec<(String, String)>, String> {
    let mut stream: Vec<(String, String)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("-- view:") {
            stream.push((rest.trim().to_string(), String::new()));
        } else if trimmed.starts_with("--") {
            // Comment line; never part of an update's text.
        } else if let Some((_, update)) = stream.last_mut() {
            update.push_str(line);
            update.push('\n');
        } else if !trimmed.is_empty() {
            return Err(format!(
                "{path}:{}: update text before the first '-- view: <name>' header",
                lineno + 1
            ));
        }
    }
    if stream.is_empty() {
        return Err(format!("{path}: no '-- view: <name>' blocks found"));
    }
    Ok(stream)
}

/// Parse a fan-out stream file: update blocks separated by `-- update`
/// lines (other `--` lines are comments). Unlike `.ubatch` files, blocks
/// carry no view name — routing decides the views.
fn parse_uall_file(path: &str, text: &str) -> Result<Vec<String>, String> {
    let mut updates: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        // The delimiter is the exact header, so '-- update foo' style
        // comments stay comments.
        if trimmed == "-- update" {
            updates.push(String::new());
        } else if trimmed.starts_with("--") {
            // Comment line; never part of an update's text.
        } else if let Some(update) = updates.last_mut() {
            update.push_str(line);
            update.push('\n');
        } else if !trimmed.is_empty() {
            return Err(format!(
                "{path}:{}: update text before the first '-- update' header",
                lineno + 1
            ));
        }
    }
    if updates.is_empty() {
        return Err(format!("{path}: no '-- update' blocks found"));
    }
    // Catch stray/trailing headers here with a real diagnostic — an empty
    // item line would otherwise abort the whole BATCHALL server-side.
    if let Some(i) = updates.iter().position(|u| u.trim().is_empty()) {
        return Err(format!("{path}: '-- update' block {} is empty", i + 1));
    }
    Ok(updates)
}

/// Drive one scripted session against a running `ufilter serve`.
///
/// Script lines (`#` comments and blank lines skipped):
///
/// ```text
/// add <name> <view.xq>      register a view (file content travels escaped)
/// drop <name>               unregister a view
/// list                      list registered views
/// check <view> <update.xq>  check one update; prints '<view>: <wire-outcome>'
/// batch <updates.ubatch>    check a '-- view:' stream; prints the exact
///                           '[i] <view>: <wire-outcome>' lines check-batch prints
/// checkall <update.xq>      fan one update out to its candidate views; prints
///                           the exact '<view>: <wire-outcome>' lines check-all prints
/// batchall <updates.uall>   fan a '-- update'-separated stream out; prints
///                           '[i] <view>: <wire-outcome>' per candidate
/// verify                    CATALOG VERIFY: integrity-check the server's
///                           durable store (ERR when no --data-dir)
/// metrics                   METRICS: print the server's Prometheus
///                           text-format exposition (counters + latency
///                           quantiles), one line per metric
/// stats | ping | shutdown   forwarded verbatim
/// ```
///
/// Returns `Ok(false)` (exit code 1) if the server sent any `ERR` reply.
fn run_client(script: &str, stream: TcpStream) -> Result<bool, String> {
    let reader_stream = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(reader_stream);
    let mut writer = BufWriter::new(stream);
    let mut all_ok = true;

    let send = |writer: &mut BufWriter<TcpStream>, line: &str| -> Result<(), String> {
        writeln!(writer, "{line}").and_then(|()| writer.flush()).map_err(|e| e.to_string())
    };
    let recv = |reader: &mut BufReader<TcpStream>| -> Result<String, String> {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(e.to_string()),
        }
    };

    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err_here = |msg: String| format!("client script line {}: {msg}", lineno + 1);
        let mut words = line.split_whitespace();
        let verb = words.next().unwrap_or_default();
        let rest: Vec<&str> = words.collect();
        let arity = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(err_here(format!("'{verb}' takes {n} operand(s), got {}", rest.len())))
            }
        };
        match verb {
            "add" => {
                arity(2)?;
                let text = std::fs::read_to_string(rest[1])
                    .map_err(|e| err_here(format!("{}: {e}", rest[1])))?;
                send(&mut writer, &proto::catalog_add_request(rest[0], &text))?;
                let reply = recv(&mut reader)?;
                all_ok &= !reply.starts_with("ERR");
                println!("{reply}");
            }
            "drop" => {
                arity(1)?;
                send(&mut writer, &format!("CATALOG DROP {}", rest[0]))?;
                let reply = recv(&mut reader)?;
                all_ok &= !reply.starts_with("ERR");
                println!("{reply}");
            }
            "list" => {
                arity(0)?;
                send(&mut writer, "CATALOG LIST")?;
                let head = recv(&mut reader)?;
                println!("{head}");
                if let Some(n) = head.strip_prefix("OK ").and_then(|n| n.parse::<usize>().ok()) {
                    for _ in 0..n {
                        println!("{}", recv(&mut reader)?);
                    }
                } else {
                    all_ok = false;
                }
            }
            "check" => {
                arity(2)?;
                let update = std::fs::read_to_string(rest[1])
                    .map_err(|e| err_here(format!("{}: {e}", rest[1])))?;
                send(&mut writer, &proto::check_request(rest[0], &update))?;
                let reply = recv(&mut reader)?;
                match reply.strip_prefix("OK ") {
                    Some(outcomes) => {
                        for outcome in outcomes.split('\t') {
                            println!("{}: {outcome}", rest[0]);
                        }
                    }
                    None => {
                        all_ok = false;
                        println!("{reply}");
                    }
                }
            }
            "batch" => {
                arity(1)?;
                let text = std::fs::read_to_string(rest[0])
                    .map_err(|e| err_here(format!("{}: {e}", rest[0])))?;
                let items = parse_batch_file(rest[0], &text)?;
                send(&mut writer, &format!("BATCH {}", items.len()))?;
                for (view, update) in &items {
                    send(&mut writer, &proto::batch_item(view, update))?;
                }
                let head = recv(&mut reader)?;
                if !head.starts_with("OK ") {
                    all_ok = false;
                    println!("{head}");
                    continue;
                }
                loop {
                    let reply = recv(&mut reader)?;
                    if let Some(rest) = reply.strip_prefix("ITEM ") {
                        // ITEM <index> <view> <wire-outcome> — print the
                        // exact line shape `check-batch` uses.
                        let mut f = rest.splitn(3, ' ');
                        let (i, view, outcome) = (
                            f.next().unwrap_or_default(),
                            f.next().unwrap_or_default(),
                            f.next().unwrap_or_default(),
                        );
                        let human = i.parse::<usize>().map(|i| i + 1).unwrap_or(0);
                        println!("[{human}] {view}: {outcome}");
                    } else if let Some(stats) = reply.strip_prefix("END ") {
                        println!("--- {stats}");
                        break;
                    } else {
                        all_ok = false;
                        println!("{reply}");
                        break;
                    }
                }
            }
            "checkall" => {
                arity(1)?;
                let update = std::fs::read_to_string(rest[0])
                    .map_err(|e| err_here(format!("{}: {e}", rest[0])))?;
                send(&mut writer, &proto::checkall_request(&update))?;
                let head = recv(&mut reader)?;
                if !head.starts_with("OK ") {
                    all_ok = false;
                    println!("{head}");
                    continue;
                }
                loop {
                    let reply = recv(&mut reader)?;
                    if let Some(rest) = reply.strip_prefix("ITEM ") {
                        // ITEM <view> <wire-outcome> — print the exact line
                        // shape `check-all` uses.
                        let (view, outcome) = rest.split_once(' ').unwrap_or((rest, ""));
                        println!("{view}: {outcome}");
                    } else if let Some(stats) = reply.strip_prefix("END ") {
                        println!("--- {stats}");
                        break;
                    } else {
                        all_ok = false;
                        println!("{reply}");
                        break;
                    }
                }
            }
            "batchall" => {
                arity(1)?;
                let text = std::fs::read_to_string(rest[0])
                    .map_err(|e| err_here(format!("{}: {e}", rest[0])))?;
                let updates = parse_uall_file(rest[0], &text)?;
                send(&mut writer, &format!("BATCHALL {}", updates.len()))?;
                for update in &updates {
                    send(&mut writer, &proto::batchall_item(update))?;
                }
                let head = recv(&mut reader)?;
                if !head.starts_with("OK ") {
                    all_ok = false;
                    println!("{head}");
                    continue;
                }
                loop {
                    let reply = recv(&mut reader)?;
                    if let Some(rest) = reply.strip_prefix("ITEM ") {
                        let mut f = rest.splitn(3, ' ');
                        let (i, view, outcome) = (
                            f.next().unwrap_or_default(),
                            f.next().unwrap_or_default(),
                            f.next().unwrap_or_default(),
                        );
                        let human = i.parse::<usize>().map(|i| i + 1).unwrap_or(0);
                        println!("[{human}] {view}: {outcome}");
                    } else if let Some(stats) = reply.strip_prefix("END ") {
                        println!("--- {stats}");
                        break;
                    } else {
                        all_ok = false;
                        println!("{reply}");
                        break;
                    }
                }
            }
            "verify" => {
                arity(0)?;
                send(&mut writer, "CATALOG VERIFY")?;
                let reply = recv(&mut reader)?;
                all_ok &= !reply.starts_with("ERR");
                println!("{reply}");
            }
            "metrics" => {
                arity(0)?;
                send(&mut writer, "METRICS")?;
                let head = recv(&mut reader)?;
                match head.strip_prefix("OK ").and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => {
                        for _ in 0..n {
                            println!("{}", recv(&mut reader)?);
                        }
                    }
                    None => {
                        all_ok = false;
                        println!("{head}");
                    }
                }
            }
            "stats" | "ping" | "shutdown" => {
                arity(0)?;
                send(&mut writer, verb.to_uppercase().as_str())?;
                let reply = recv(&mut reader)?;
                all_ok &= !reply.starts_with("ERR");
                println!("{reply}");
            }
            other => {
                return Err(err_here(format!(
                    "unknown verb '{other}' (add/drop/list/verify/check/batch/checkall/\
                     batchall/stats/metrics/ping/shutdown)"
                )))
            }
        }
    }
    Ok(all_ok)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "help" => {
            print!("{HELP}");
            Ok(true)
        }
        "sql" => {
            let mut db = load_db(&args)?;
            let stmt = args.operand(0, "sql needs a statement")?;
            args.at_most(1)?;
            // With a catalog, schema-affecting DDL goes through the RESTRICT
            // guard; anything else skips catalog compilation entirely.
            let parsed = Parser::parse_stmt(stmt).map_err(|e| e.to_string())?;
            let out = match (is_schema_ddl(&parsed), args.catalog.as_deref()) {
                (true, Some(path)) => {
                    let mut catalog = build_catalog(&args, path, &db)?;
                    catalog.execute_guarded_stmt(&mut db, parsed).map_err(|e| e.to_string())?
                }
                _ => db.run(parsed).map_err(|e| e.to_string())?,
            };
            if let Some(rs) = out.result {
                print!("{}", rs.to_table());
            } else {
                println!("{} row(s) affected", out.affected);
            }
            for w in out.warnings {
                eprintln!("warning: {w}");
            }
            Ok(true)
        }
        "catalog" => {
            match args.operand(0, "catalog subcommand (add/list/drop/compact/verify)")? {
                // `compact`/`verify` operate on the durable --data-dir store
                // (no manifest, schema, or server needed); the manifest
                // subcommands keep requiring --catalog.
                "compact" => {
                    args.at_most(1)?;
                    let dir = data_dir_path(&args)?;
                    let mut store = CatalogStore::open(dir).map_err(|e| e.to_string())?;
                    let open_stats = store.stats();
                    if open_stats.truncated_bytes > 0 {
                        eprintln!(
                            "warning: truncated {} byte(s) of torn log tail",
                            open_stats.truncated_bytes
                        );
                    }
                    let c = store.compact().map_err(|e| e.to_string())?;
                    println!(
                        "compacted {dir}: {} record(s) -> {} (generation {})",
                        c.records_before, c.records_after, c.generation
                    );
                    Ok(true)
                }
                "verify" => {
                    args.at_most(1)?;
                    let dir = data_dir_path(&args)?;
                    let r = CatalogStore::verify(dir).map_err(|e| e.to_string())?;
                    println!(
                        "generation {}: {} snapshot record(s), {} log record(s), {} ddl record(s)",
                        r.generation, r.snapshot_records, r.log_records, r.ddl_records
                    );
                    for view in &r.views {
                        println!("view {view}");
                    }
                    if r.torn_bytes > 0 {
                        println!("torn tail: {} byte(s) (open would truncate them)", r.torn_bytes);
                    }
                    if r.stale_log {
                        println!(
                            "stale log from an interrupted compaction (open would discard it)"
                        );
                    }
                    println!("{}", if r.is_clean() { "clean" } else { "repairs pending" });
                    Ok(r.is_clean())
                }
                "add" => {
                    let path = catalog_path(&args)?;
                    let name = args.operand(1, "catalog add needs a view name")?;
                    let file = args.operand(2, "catalog add needs a view file")?;
                    args.at_most(3)?;
                    // The manifest is line-oriented `name=viewfile` with `#`
                    // comments; keep names representable in it.
                    if name.is_empty()
                        || name.contains(['=', '#'])
                        || name.chars().any(char::is_whitespace)
                    {
                        return Err(format!(
                            "view name '{name}' may not be empty or contain '=', '#', or whitespace"
                        ));
                    }
                    let db = load_db(&args)?;
                    let mut entries = load_manifest(path, true)?;
                    if entries.iter().any(|(n, _)| n == name) {
                        return Err(format!("view '{name}' is already registered in {path}"));
                    }
                    let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                    let filter =
                        UFilter::compile(&text, db.schema()).map_err(|e| format!("{file}: {e}"))?;
                    entries.push((name.to_string(), file.to_string()));
                    save_manifest(path, &entries)?;
                    println!(
                        "registered '{name}' ({file}); reads {{{}}}",
                        filter.asg.relations.join(", ")
                    );
                    Ok(true)
                }
                "list" => {
                    args.at_most(1)?;
                    let path = catalog_path(&args)?;
                    let db = load_db(&args)?;
                    let catalog = build_catalog(&args, path, &db)?;
                    for info in catalog.list() {
                        println!(
                            "{}\treads {{{}}}{}",
                            info.name,
                            info.relations.join(", "),
                            if info.cached { "\t(shared artifact)" } else { "" }
                        );
                    }
                    println!("{} view(s) registered", catalog.len());
                    Ok(true)
                }
                "drop" => {
                    let name = args.operand(1, "catalog drop needs a view name")?;
                    args.at_most(2)?;
                    let path = catalog_path(&args)?;
                    let mut entries = load_manifest(path, false)?;
                    let before = entries.len();
                    entries.retain(|(n, _)| n != name);
                    if entries.len() == before {
                        return Err(format!("no view named '{name}' in {path}"));
                    }
                    save_manifest(path, &entries)?;
                    println!("dropped '{name}'");
                    Ok(true)
                }
                other => {
                    Err(usage_err(&args.command, format!("unknown catalog subcommand {other}")))
                }
            }
        }
        "check-batch" => {
            let path = catalog_path(&args)?;
            let mut db = load_db(&args)?;
            let catalog = build_catalog(&args, path, &db)?;
            let file = args.operand(0, "check-batch needs an updates file")?;
            args.at_most(1)?;
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let stream = parse_batch_file(file, &text)?;
            let batch = catalog.check_batch_text(&stream, &mut db);
            let mut all_ok = true;
            // Outcomes print in the stable wire form (core::wire) — the
            // exact bytes a `ufilter client batch` session prints for the
            // same stream, so serve/check-batch runs diff cleanly.
            for item in &batch.items {
                for report in &item.reports {
                    println!(
                        "[{}] {}: {}",
                        item.index + 1,
                        item.view,
                        wire::encode_outcome(&report.outcome)
                    );
                    if !report.outcome.is_translatable() {
                        all_ok = false;
                    }
                }
            }
            let s = batch.stats;
            println!(
                "--- {} update(s), {} parse hit(s), {} probe hit(s) / {} miss(es), \
                 {} target group(s)",
                s.items, s.parse_hits, s.probe_hits, s.probe_misses, s.target_groups
            );
            Ok(all_ok)
        }
        "check-all" => {
            let path = catalog_path(&args)?;
            let mut db = load_db(&args)?;
            let catalog = build_catalog(&args, path, &db)?;
            let file = args.operand(0, "check-all needs an update file")?;
            args.at_most(1)?;
            let update = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let report = catalog.check_all(&update, &mut db);
            let mut all_ok = true;
            // Same `<view>: <wire-outcome>` shape a `ufilter client
            // checkall` session prints, so runs diff cleanly.
            for item in &report.items {
                for r in &item.reports {
                    println!("{}: {}", item.view, wire::encode_outcome(&r.outcome));
                    if !r.outcome.is_translatable() {
                        all_ok = false;
                    }
                }
            }
            let f = report.fanout;
            println!(
                "--- views={} candidates={} pruned={} (tags={} paths={} preds={}) fallbacks={}",
                f.views,
                f.candidates,
                f.pruned,
                f.pruned_tags,
                f.pruned_paths,
                f.pruned_preds,
                f.fallbacks
            );
            Ok(all_ok)
        }
        "serve" => {
            args.at_most(0)?;
            let mut db = load_db(&args)?;
            let workers = args.workers.unwrap_or(4);
            let config = UFilterConfig { mode: args.mode, strategy: args.strategy };
            // Shard count is a concurrency knob, not a correctness one:
            // 2x workers keeps shard write locks (catalog DDL/add/drop)
            // from serializing the read path.
            let mut catalog = ShardedCatalog::with_config(db.schema().clone(), config, workers * 2);
            // Recover the durable catalog first (replay, then attach so the
            // replayed records are not re-appended), then seed from the
            // manifest — skipping names recovery already registered, so a
            // restart with both --data-dir and --views never trips the
            // duplicate check.
            let mut recovered = None;
            if let Some(dir) = args.data_dir.as_deref() {
                let store = CatalogStore::open(dir).map_err(|e| format!("{dir}: {e}"))?;
                let stats = catalog
                    .replay(&mut db, store.records())
                    .map_err(|e| format!("{dir}: replay: {e}"))?;
                catalog.attach_store(Arc::new(Mutex::new(store)));
                recovered = Some(stats);
            }
            if let Some(path) = args.catalog.as_deref() {
                let registered: std::collections::HashSet<String> =
                    catalog.list().into_iter().map(|v| v.name).collect();
                for (name, file) in load_manifest(path, false)? {
                    if registered.contains(&name) {
                        continue; // already recovered from the data dir
                    }
                    let text =
                        std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
                    catalog.add(&name, &text).map_err(|e| e.to_string())?;
                }
            }
            let catalog = catalog;
            let listen = args.listen.as_deref().unwrap_or("127.0.0.1:0");
            let mut server = CheckServer::bind(listen, Arc::new(catalog), &db, workers)
                .map_err(|e| format!("{listen}: {e}"))?;
            server.set_slow_ms(args.slow_ms);
            if let Some(s) = recovered {
                println!(
                    "RECOVERED records={} adds={} drops={} ddl={} rehydrated={} recompiled={}",
                    s.records, s.adds, s.drops, s.ddl, s.rehydrated, s.recompiled
                );
            }
            // Scripts read this line to learn the resolved ephemeral port.
            println!("LISTENING {}", server.local_addr());
            server.run().map_err(|e| e.to_string())?;
            Ok(true)
        }
        "client" => {
            let addr = args.operand(0, "client needs a server address")?;
            let path = args.operand(1, "client needs a script file ('-' for stdin)")?;
            args.at_most(2)?;
            let script = if path == "-" {
                let mut s = String::new();
                std::io::stdin().read_to_string(&mut s).map_err(|e| format!("stdin: {e}"))?;
                s
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
            };
            let stream = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
            run_client(&script, stream)
        }
        "show-asg" => {
            args.at_most(0)?;
            let db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            print!("{}", filter.asg.describe());
            Ok(true)
        }
        "materialize" => {
            args.at_most(0)?;
            let db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            let doc = materialize(&db, filter.query()).map_err(|e| e.to_string())?;
            print!("{}", u_filter::xml::to_pretty_string(&doc, doc.root()));
            Ok(true)
        }
        cmd @ ("check" | "apply") => {
            let mut db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            let path = args.operand(0, "check/apply need an update file")?;
            args.at_most(1)?;
            let update = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let reports = if cmd == "apply" {
                filter.apply(&update, &mut db)
            } else {
                filter.check(&update, &mut db)
            };
            let mut all_ok = true;
            for (i, report) in reports.iter().enumerate() {
                if reports.len() > 1 {
                    println!("--- action {} ---", i + 1);
                }
                for (step, note) in &report.trace {
                    println!("[{step}] {note}");
                }
                println!("=> {}", report.outcome);
                if let CheckOutcome::Translatable { translation, .. } = &report.outcome {
                    for stmt in translation {
                        println!("SQL> {stmt}");
                    }
                } else {
                    all_ok = false;
                }
            }
            Ok(all_ok)
        }
        other => Err(format!("unknown command {other}\nusage: {USAGE_LINE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1), // update rejected
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
