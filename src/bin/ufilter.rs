//! `ufilter` — command-line driver for the U-Filter checker.
//!
//! ```text
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq check fixtures/u8.xq
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq apply fixtures/u13.xq
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq show-asg
//! ufilter --schema fixtures/book.sql --view fixtures/bookview.xq materialize
//! ufilter --schema fixtures/book.sql sql "SELECT * FROM book"
//! ```
//!
//! `--schema` takes a `;`-separated SQL script (DDL + data). `--view` takes
//! a view-query file. `--strategy internal|hybrid|outside` and
//! `--mode strict|refined` tune the pipeline.

use std::process::ExitCode;

use u_filter::xquery::materialize;
use u_filter::{CheckOutcome, StarMode, Strategy, UFilter, UFilterConfig};
use ufilter_rdb::Db;

struct Args {
    schema: Option<String>,
    view: Option<String>,
    strategy: Strategy,
    mode: StarMode,
    command: String,
    operand: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut out = Args {
        schema: None,
        view: None,
        strategy: Strategy::Outside,
        mode: StarMode::Refined,
        command: String::new(),
        operand: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--schema" => out.schema = Some(args.next().ok_or("--schema needs a file")?),
            "--view" => out.view = Some(args.next().ok_or("--view needs a file")?),
            "--strategy" => {
                out.strategy = match args.next().as_deref() {
                    Some("internal") => Strategy::Internal,
                    Some("hybrid") => Strategy::Hybrid,
                    Some("outside") => Strategy::Outside,
                    other => return Err(format!("unknown strategy {other:?}")),
                }
            }
            "--mode" => {
                out.mode = match args.next().as_deref() {
                    Some("strict") => StarMode::Strict,
                    Some("refined") => StarMode::Refined,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--help" | "-h" => {
                out.command = "help".into();
                return Ok(out);
            }
            cmd if out.command.is_empty() => out.command = cmd.to_string(),
            operand if out.operand.is_none() => out.operand = Some(operand.to_string()),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    if out.command.is_empty() {
        out.command = "help".into();
    }
    Ok(out)
}

const HELP: &str = "\
ufilter — XML view update translatability checker (U-Filter, ICDE 2006)

USAGE:
    ufilter --schema <script.sql> [--view <view.xq>] [options] <command> [operand]

COMMANDS:
    check <update.xq>    run the three-step check; print the trace + SQL
    apply <update.xq>    check and execute the translated update
    show-asg             print the view ASG with its STAR marks
    materialize          print the materialized XML view
    sql <statement>      run one SQL statement against the loaded schema
    help                 this message

OPTIONS:
    --strategy internal|hybrid|outside   update-point strategy (default outside)
    --mode strict|refined                Observation-2 handling (default refined)
";

fn load_db(args: &Args) -> Result<Db, String> {
    let Some(path) = &args.schema else {
        return Err("--schema <file> is required".into());
    };
    let script = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut db = Db::new();
    db.execute_script(&script).map_err(|e| format!("{path}: {e}"))?;
    Ok(db)
}

fn load_filter(args: &Args, db: &Db) -> Result<UFilter, String> {
    let Some(path) = &args.view else {
        return Err("--view <file> is required for this command".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    UFilter::compile(&text, db.schema())
        .map(|f| f.with_config(UFilterConfig { mode: args.mode, strategy: args.strategy }))
        .map_err(|e| format!("{path}: {e}"))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "help" => {
            print!("{HELP}");
            Ok(true)
        }
        "sql" => {
            let mut db = load_db(&args)?;
            let stmt = args.operand.as_deref().ok_or("sql needs a statement")?;
            let out = db.execute_sql(stmt).map_err(|e| e.to_string())?;
            if let Some(rs) = out.result {
                print!("{}", rs.to_table());
            } else {
                println!("{} row(s) affected", out.affected);
            }
            for w in out.warnings {
                eprintln!("warning: {w}");
            }
            Ok(true)
        }
        "show-asg" => {
            let db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            print!("{}", filter.asg.describe());
            Ok(true)
        }
        "materialize" => {
            let db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            let doc = materialize(&db, &filter.query).map_err(|e| e.to_string())?;
            print!("{}", u_filter::xml::to_pretty_string(&doc, doc.root()));
            Ok(true)
        }
        cmd @ ("check" | "apply") => {
            let mut db = load_db(&args)?;
            let filter = load_filter(&args, &db)?;
            let path = args.operand.as_deref().ok_or("check/apply need an update file")?;
            let update = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let reports = if cmd == "apply" {
                filter.apply(&update, &mut db)
            } else {
                filter.check(&update, &mut db)
            };
            let mut all_ok = true;
            for (i, report) in reports.iter().enumerate() {
                if reports.len() > 1 {
                    println!("--- action {} ---", i + 1);
                }
                for (step, note) in &report.trace {
                    println!("[{step}] {note}");
                }
                println!("=> {}", report.outcome);
                if let CheckOutcome::Translatable { translation, .. } = &report.outcome {
                    for stmt in translation {
                        println!("SQL> {stmt}");
                    }
                } else {
                    all_ok = false;
                }
            }
            Ok(all_ok)
        }
        other => Err(format!("unknown command {other}; try --help")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1), // update rejected
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
