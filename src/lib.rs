//! # u-filter — a lightweight XML view update checker
//!
//! Reproduction of *Wang, Rundensteiner, Mani: "U-Filter: A Lightweight XML
//! View Update Checker"* (ICDE 2006 / WPI-CS-TR-05-11).
//!
//! U-Filter answers, **before any translation is attempted**, whether an
//! update against a virtual XML view of a relational database can be mapped
//! to relational updates without view side effects. It layers three checks
//! of increasing cost: schema-level *update validation*, compile-time
//! *schema-driven translatability reasoning* (STAR), and run-time
//! *data-driven checking* with internal / hybrid / outside strategies.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`rdb`] — the in-memory relational engine substrate;
//! * [`xml`] — XML tree model, parser, default-view publisher;
//! * [`xquery`] — the view-query (FLWR subset) and update languages;
//! * [`asg`] — Annotated Schema Graphs and the closure algebra;
//! * [`core`] — the U-Filter pipeline itself;
//! * [`route`] — the shared relevance index fanning updates out to the
//!   candidate views they could affect;
//! * [`service`] — the concurrent check server (sharded catalog, worker
//!   pool, line-oriented wire protocol);
//! * [`tpch`] — the evaluation's data generator and views;
//! * [`usecases`] — the W3C use-case catalog (Fig. 12).
//!
//! ## Quick start
//!
//! ```
//! use u_filter::core::bookdemo;
//!
//! // Compile the paper's BookView over the Fig. 1 schema …
//! let filter = bookdemo::book_filter();
//! let mut db = bookdemo::book_db();
//!
//! // … and push updates through the three-step checker.
//! let ok = filter.check(bookdemo::U8, &mut db).remove(0);   // delete cheap books' reviews
//! assert!(ok.outcome.is_translatable());
//!
//! let bad = filter.check(bookdemo::U10, &mut db).remove(0); // delete a shared publisher
//! assert!(!bad.outcome.is_translatable());
//! ```

pub use ufilter_asg as asg;
pub use ufilter_core as core;
pub use ufilter_rdb as rdb;
pub use ufilter_route as route;
pub use ufilter_service as service;
pub use ufilter_tpch as tpch;
pub use ufilter_usecases as usecases;
pub use ufilter_xml as xml;
pub use ufilter_xquery as xquery;

pub use ufilter_core::{
    apply_and_verify, blind_apply, CheckOutcome, CheckReport, CheckStep, CompileError, Condition,
    InvalidReason, RectangleVerdict, StarMode, Strategy, UFilter, UFilterConfig,
};
