//! Crash-safety of the durable catalog (`ufilter_core::persist`): truncate
//! the log at **every byte boundary** of a randomized ADD/DROP/DDL schedule
//! and assert the recovered catalog is exactly the acknowledged prefix —
//! serving byte-identical wire outcomes to an in-memory oracle that applied
//! the same prefix of operations directly.
//!
//! The per-byte loop is cheap (open + prefix equality); the full replay +
//! wire battery runs once per *distinct* surviving record count, which is
//! sound because recovery is a deterministic function of the record list.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use u_filter::core::bookdemo;
use u_filter::core::catalog::ViewCatalog;
use u_filter::core::persist::{CatalogStore, LogRecord, HEADER_LEN};
use u_filter::core::wire::encode_outcome;
use ufilter_rdb::Db;

/// Deterministic schedule source (the repo convention: no `Math.random`-style
/// nondeterminism in tests — a failure must replay byte-for-byte).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One schedule operation. Each op maps 1:1 to one acknowledged log record,
/// so "first k records recovered" ⇔ "first k operations acknowledged".
#[derive(Clone)]
enum Op {
    Add { name: String, text: String },
    Drop { name: String },
    Ddl { sql: String },
}

/// A randomized but always-successful schedule: adds from the variant pool,
/// drops of live views, and guarded CREATE/DROP TABLE on scratch relations
/// no view reads.
fn schedule(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let pool = bookdemo::book_view_variants(6);
    let mut next_view = 0;
    let mut live: Vec<String> = Vec::new();
    let mut scratch: Vec<String> = Vec::new();
    let mut next_scratch = 0;
    let mut ops = Vec::with_capacity(len);
    while ops.len() < len {
        match rng.next() % 10 {
            // Weighted toward adds so the catalog grows.
            0..=4 => {
                if next_view < pool.len() {
                    let (name, text) = pool[next_view].clone();
                    next_view += 1;
                    live.push(name.clone());
                    ops.push(Op::Add { name, text });
                }
            }
            5..=6 => {
                if live.len() > 1 {
                    let name = live.remove((rng.next() % live.len() as u64) as usize);
                    ops.push(Op::Drop { name });
                }
            }
            7..=8 => {
                let name = format!("scratch_{next_scratch}");
                next_scratch += 1;
                scratch.push(name.clone());
                ops.push(Op::Ddl { sql: format!("CREATE TABLE {name} (id INTEGER)") });
            }
            _ => {
                if let Some(name) = scratch.pop() {
                    ops.push(Op::Ddl { sql: format!("DROP TABLE {name}") });
                }
            }
        }
    }
    ops
}

fn apply(catalog: &mut ViewCatalog, db: &mut Db, op: &Op) {
    match op {
        Op::Add { name, text } => {
            catalog.add(name, text).unwrap();
        }
        Op::Drop { name } => catalog.drop_view(name).unwrap(),
        Op::Ddl { sql } => {
            catalog.execute_guarded(db, sql).unwrap();
        }
    }
}

/// The in-memory oracle for a k-record prefix: a fresh catalog that applied
/// the first k operations directly, never touching disk.
fn oracle(ops: &[Op]) -> (ViewCatalog, Db) {
    let mut catalog = ViewCatalog::new(bookdemo::book_schema());
    let mut db = bookdemo::book_db();
    for op in ops {
        apply(&mut catalog, &mut db, op);
    }
    (catalog, db)
}

/// Everything the wire protocol can observe about a catalog: the LIST lines
/// and the fan-out outcomes of a battery of updates.
fn wire_fingerprint(catalog: &ViewCatalog, db: &mut Db) -> Vec<String> {
    let mut out: Vec<String> = catalog
        .list()
        .iter()
        .map(|v| format!("VIEW {} reads={} cached={}", v.name, v.relations.join(","), v.cached))
        .collect();
    for update in [bookdemo::U8, bookdemo::U10, bookdemo::U13, bookdemo::U2] {
        let report = catalog.check_all(update, db);
        for item in &report.items {
            for r in &item.reports {
                out.push(format!("ITEM {} {}", item.view, encode_outcome(&r.outcome)));
            }
        }
    }
    out
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ufilter-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run `ops` against a store-backed catalog in `dir`, returning the raw log
/// bytes the session left behind.
fn run_session(dir: &Path, ops: &[Op]) -> Vec<u8> {
    let mut catalog = ViewCatalog::new(bookdemo::book_schema());
    let mut db = bookdemo::book_db();
    catalog.attach_store(Arc::new(Mutex::new(CatalogStore::open(dir).unwrap())));
    for op in ops {
        apply(&mut catalog, &mut db, op);
    }
    std::fs::read(dir.join("catalog.log")).unwrap()
}

#[test]
fn kill_at_every_byte_recovers_the_acknowledged_prefix() {
    let dir = tmpdir("bytes");
    let ops = schedule(0x5eed_u64, 12);
    let log = run_session(&dir, &ops);

    // The uncut log recovers every record.
    let full = CatalogStore::open(&dir).unwrap();
    let all: Vec<LogRecord> = full.records().to_vec();
    assert_eq!(all.len(), ops.len(), "each op acknowledged exactly one record");
    drop(full);

    let crash_dir = tmpdir("bytes-crash");
    std::fs::create_dir_all(&crash_dir).unwrap();
    let crash_log = crash_dir.join("catalog.log");
    let mut prev_k = 0usize;
    for cut in HEADER_LEN..=log.len() {
        // Simulate a kill mid-append: only the first `cut` bytes reached
        // disk. (Rewritten from the pristine bytes each time — open()
        // repairs torn tails in place.)
        std::fs::write(&crash_log, &log[..cut]).unwrap();
        let store = CatalogStore::open(&crash_dir).unwrap();
        let k = store.records().len();
        assert!(k >= prev_k, "cut {cut}: valid prefix shrank ({prev_k} -> {k})");
        assert_eq!(store.records(), &all[..k], "cut {cut}: recovered records are not a prefix");

        // Every new prefix length: full recovery must match the in-memory
        // oracle byte-for-byte on the wire.
        if k != prev_k || cut == log.len() {
            let mut db = bookdemo::book_db();
            let mut recovered = ViewCatalog::new(bookdemo::book_schema());
            let stats = recovered.replay(&mut db, store.records()).unwrap();
            assert_eq!(stats.records, k);
            assert_eq!(
                stats.rehydrated + stats.recompiled,
                stats.adds,
                "every add was either rehydrated or recompiled"
            );
            let (oracle_cat, mut oracle_db) = oracle(&ops[..k]);
            assert_eq!(
                wire_fingerprint(&recovered, &mut db),
                wire_fingerprint(&oracle_cat, &mut oracle_db),
                "cut {cut} (k={k}): recovered catalog diverges from the oracle"
            );
        }
        prev_k = k;
    }
    assert_eq!(prev_k, all.len(), "the final cut recovers everything");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&crash_dir).unwrap();
}

#[test]
fn recovery_through_compaction_preserves_wire_outcomes() {
    let dir = tmpdir("compaction");
    let ops = schedule(0xc0ffee_u64, 10);
    let split = ops.len() / 2;

    // Session 1: half the schedule, a compaction, then the rest.
    let mut catalog = ViewCatalog::new(bookdemo::book_schema());
    let mut db = bookdemo::book_db();
    let store = Arc::new(Mutex::new(CatalogStore::open(&dir).unwrap()));
    catalog.attach_store(Arc::clone(&store));
    for op in &ops[..split] {
        apply(&mut catalog, &mut db, op);
    }
    store.lock().unwrap().compact().unwrap();
    for op in &ops[split..] {
        apply(&mut catalog, &mut db, op);
    }
    let live = wire_fingerprint(&catalog, &mut db);
    drop(catalog);
    drop(store);

    // Session 2: recover snapshot + log.
    let store = CatalogStore::open(&dir).unwrap();
    assert_eq!(store.generation(), 2);
    let mut db2 = bookdemo::book_db();
    let mut recovered = ViewCatalog::new(bookdemo::book_schema());
    recovered.replay(&mut db2, store.records()).unwrap();
    assert_eq!(wire_fingerprint(&recovered, &mut db2), live);

    // The oracle never saw the compaction at all — folding must not change
    // any observable outcome.
    let (oracle_cat, mut oracle_db) = oracle(&ops);
    assert_eq!(wire_fingerprint(&oracle_cat, &mut oracle_db), live);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stripped_artifacts_recompile_to_identical_outcomes() {
    let dir = tmpdir("stripped");
    let ops = schedule(0xbead_u64, 8);
    run_session(&dir, &ops);
    let store = CatalogStore::open(&dir).unwrap();

    // Replay once with artifacts, once with every artifact blanked (as if
    // written by a build that could not serialize them).
    let stripped: Vec<LogRecord> = store
        .records()
        .iter()
        .map(|r| match r {
            LogRecord::Add { name, view_text, deps, cached, artifact: _ } => LogRecord::Add {
                name: name.clone(),
                view_text: view_text.clone(),
                deps: deps.clone(),
                cached: *cached,
                artifact: Vec::new(),
            },
            other => other.clone(),
        })
        .collect();

    let mut db_a = bookdemo::book_db();
    let mut warm = ViewCatalog::new(bookdemo::book_schema());
    let warm_stats = warm.replay(&mut db_a, store.records()).unwrap();
    let mut db_b = bookdemo::book_db();
    let mut cold = ViewCatalog::new(bookdemo::book_schema());
    let cold_stats = cold.replay(&mut db_b, &stripped).unwrap();

    assert!(warm_stats.rehydrated > 0, "artifacts decoded on the warm path");
    assert!(cold_stats.recompiled > 0, "blank artifacts forced recompiles");
    assert_eq!(
        wire_fingerprint(&warm, &mut db_a),
        wire_fingerprint(&cold, &mut db_b),
        "rehydrated and recompiled catalogs must be indistinguishable"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
