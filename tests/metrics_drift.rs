//! Drift guard between the two observability surfaces.
//!
//! `STATS` is the byte-pinned wire reply; `METRICS` is the Prometheus
//! exposition. Both are fed from the same counters through the
//! [`STATS_FAMILIES`] table, and this test holds all three to each other:
//! the pinned key list below, the table's `stats_key` order, and the keys
//! a live server actually emits. Adding a counter to one surface without
//! the others fails here, not in a dashboard three weeks later.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use u_filter::core::bookdemo;
use u_filter::service::{CheckServer, ShardedCatalog, STATS_FAMILIES};

/// The `STATS` reply keys, in reply order, pinned. Changing this list is a
/// wire-protocol change: update `STATS_FAMILIES`, the server's `STATS`
/// arm, and `scripts/ci_service_smoke.sh` together.
const PINNED_STATS_KEYS: [&str; 28] = [
    "workers",
    "shards",
    "views",
    "connections",
    "requests",
    "errors",
    "jobs",
    "checked",
    "probe_hits",
    "probe_misses",
    "compile_hits",
    "persist_appends",
    "persist_syncs",
    "persist_compactions",
    "persist_replayed",
    "fanout_requests",
    "candidates",
    "pruned",
    "fallbacks",
    "trie_nodes",
    "trie_postings",
    "trie_bytes",
    "trie_inserts",
    "trie_removes",
    "independence_checked",
    "independence_independent",
    "independence_dependent",
    "independence_unknown",
];

#[test]
fn stats_families_table_matches_pinned_key_order() {
    let table_keys: Vec<&str> = STATS_FAMILIES.iter().map(|f| f.stats_key).collect();
    assert_eq!(table_keys, PINNED_STATS_KEYS, "STATS_FAMILIES drifted from the pinned key order");
    // Family names are unique and follow the Prometheus naming rule that
    // counters end in `_total`.
    for f in STATS_FAMILIES {
        assert!(f.family.starts_with("ufilter_"), "{} lacks the ufilter_ prefix", f.family);
        match f.kind {
            "counter" => {
                assert!(f.family.ends_with("_total"), "counter {} must end in _total", f.family)
            }
            "gauge" => {
                assert!(!f.family.ends_with("_total"), "gauge {} must not end in _total", f.family)
            }
            other => panic!("unknown kind {other} for {}", f.family),
        }
    }
    let mut names: Vec<&str> = STATS_FAMILIES.iter().map(|f| f.family).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), STATS_FAMILIES.len(), "duplicate family names");
}

/// One scripted line-protocol client over a real socket.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { reader, writer: stream }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        line.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

#[test]
fn live_stats_reply_and_metrics_exposition_carry_the_same_keys() {
    let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 4));
    catalog.add("books", bookdemo::BOOK_VIEW).expect("add view");
    let db = bookdemo::book_db();
    let server = CheckServer::bind("127.0.0.1:0", catalog, &db, 2).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut c = Client::connect(&addr);
    // Real traffic first, so the exposition reflects live counters.
    assert!(
        c.roundtrip(&u_filter::service::proto::check_request("books", bookdemo::U8))
            .starts_with("OK "),
        "check failed"
    );

    // Direction 1: the live STATS reply keys are exactly the pinned list.
    let stats = c.roundtrip("STATS");
    let body = stats.strip_prefix("OK ").expect("STATS replies OK");
    let reply_keys: Vec<&str> =
        body.split_whitespace().map(|kv| kv.split_once('=').expect("key=value").0).collect();
    assert_eq!(reply_keys, PINNED_STATS_KEYS, "live STATS reply drifted: {stats}");

    // Direction 2: every STATS key's family appears in the live METRICS
    // exposition as a typed, valued series.
    let head = c.roundtrip("METRICS");
    let n: usize = head.strip_prefix("OK ").expect("METRICS replies OK <n>").parse().expect("n");
    let lines: Vec<String> = (0..n).map(|_| c.recv()).collect();
    for f in STATS_FAMILIES {
        assert!(
            lines.iter().any(|l| *l == format!("# TYPE {} {}", f.family, f.kind)),
            "METRICS lacks a TYPE line for {}",
            f.family
        );
        assert!(
            lines.iter().any(|l| l.starts_with(&format!("{} ", f.family))),
            "METRICS lacks a value line for {}",
            f.family
        );
    }
    // The STATS-derived values agree between the two surfaces (scraped in
    // the same session with no concurrent traffic, so requests differ only
    // by the STATS request itself; views/workers are exact).
    let metric_value = |family: &str| -> f64 {
        lines
            .iter()
            .find(|l| l.starts_with(&format!("{family} ")))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no value for {family}"))
    };
    assert_eq!(metric_value("ufilter_workers"), 2.0);
    assert_eq!(metric_value("ufilter_views"), 1.0);
    assert!(metric_value("ufilter_requests_total") >= 2.0);
    // The independence stage rides the same Stage taxonomy as every other
    // pipeline span, so its summary series must be present too.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("ufilter_check_stage_duration_seconds{stage=\"independence\"")),
        "METRICS lacks the independence stage summary"
    );

    assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
    handle.join().expect("clean shutdown");
}
