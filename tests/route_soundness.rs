//! Differential soundness of catalog-wide routing (`ufilter-route`).
//!
//! The contract under test, over randomized TPC-H update streams and the
//! paper's book updates:
//!
//! 1. **Superset**: `relevant_views(u) ⊇ {v : brute-force check(v, u) is
//!    not statically irrelevant}` — the index never prunes a view the full
//!    pipeline would classify as anything but `Invalid` with an
//!    unknown-target / hierarchy-violation / predicate-outside-view
//!    reason.
//! 2. **Identity on candidates**: for every candidate view, `check_all`'s
//!    wire-encoded outcomes are byte-identical to the brute-force per-view
//!    loop's outcomes for that view.
//! 3. **Irrelevance of the pruned**: every pruned view, brute-force
//!    checked, really does come back statically irrelevant.

use u_filter::asg::build_view_asg;
use u_filter::core::catalog::{FanoutReport, ViewCatalog};
use u_filter::core::wire::encode_outcome;
use u_filter::core::{bookdemo, wire_outcome_is_irrelevant, ProbeCache};
use u_filter::route::{RelevanceIndex, TrieIndex};
use u_filter::tpch::{
    fanout_stream, generate, many_views, stream, stream_views, tpch_schema, Scale, StreamSpec,
};
use u_filter::xquery::{parse_update, parse_view_query};
use ufilter_rdb::{Db, DeletePolicy};

/// Wire lines of one fan-out report, keyed by (update, view).
fn wire_map(report: &FanoutReport) -> Vec<((usize, String), Vec<String>)> {
    report
        .items
        .iter()
        .map(|i| {
            (
                (i.update, i.view.clone()),
                i.reports.iter().map(|r| encode_outcome(&r.outcome)).collect(),
            )
        })
        .collect()
}

/// Hold the routing contract for every update in `updates` against
/// `catalog`: superset, identity on candidates, irrelevance of the pruned.
fn assert_sound(catalog: &ViewCatalog, db: &Db, updates: &[String]) {
    let refs: Vec<&str> = updates.iter().map(String::as_str).collect();
    let mut db_index = db.clone();
    let mut db_brute = db.clone();
    let indexed = catalog.check_all_batch_refs(&refs, &mut db_index, &mut ProbeCache::new());
    let brute = catalog.check_all_brute(&refs, &mut db_brute, &mut ProbeCache::new());
    assert_eq!(brute.fanout.pruned, 0);
    assert_eq!(brute.items.len(), updates.len() * catalog.len());

    let indexed_map = wire_map(&indexed);
    for (key, brute_lines) in wire_map(&brute) {
        let statically_irrelevant = brute_lines.iter().all(|l| wire_outcome_is_irrelevant(l));
        match indexed_map.iter().find(|(k, _)| *k == key) {
            Some((_, indexed_lines)) => {
                // Identity: candidate outcomes are byte-identical to the
                // brute-force per-view loop (the wire codec is the byte
                // format both the CLI and the service print).
                assert_eq!(
                    indexed_lines, &brute_lines,
                    "{key:?}: candidate outcome diverged\nupdate: {}",
                    updates[key.0]
                );
            }
            None => {
                // Superset/irrelevance: pruning is only legal when the
                // brute-force outcome is statically irrelevant.
                assert!(
                    statically_irrelevant,
                    "{key:?}: UNSOUND PRUNE — brute-force outcome {brute_lines:?}\nupdate: {}",
                    updates[key.0]
                );
            }
        }
    }
    // relevant_views agrees with the fan-out's candidate set, name-sorted.
    for (ui, text) in updates.iter().enumerate() {
        if let Ok(u) = ufilter_xquery::parse_update(text) {
            let relevant = catalog.relevant_views(&u);
            let mut sorted = relevant.clone();
            sorted.sort();
            assert_eq!(relevant, sorted, "relevant_views not name-sorted");
            let fanned: Vec<&String> =
                indexed_map.iter().filter(|((i, _), _)| *i == ui).map(|((_, v), _)| v).collect();
            assert_eq!(relevant.iter().collect::<Vec<_>>(), fanned);
        }
    }
}

#[test]
fn randomized_tpch_streams_route_soundly_over_a_many_view_catalog() {
    let scale = Scale::tiny();
    let db = generate(scale, 42, DeletePolicy::Cascade);
    let mut catalog = ViewCatalog::new(tpch_schema(DeletePolicy::Cascade));
    for (name, text) in many_views(24, scale) {
        catalog.add(&name, &text).expect("generated view compiles");
    }
    // The §7.2 evaluation views join the catalog too, so the classic
    // workload's updates have rich overlap with the partitions.
    for (name, text) in stream_views() {
        catalog.add(name, text).expect("evaluation view compiles");
    }
    for seed in [1, 2, 3] {
        let mut updates = fanout_stream(12, scale, seed);
        updates.extend(stream(StreamSpec::heavy(8), scale, seed).into_iter().map(|(_, u)| u));
        assert_sound(&catalog, &db, &updates);
    }
}

#[test]
fn fanout_actually_prunes_partitioned_catalogs() {
    let scale = Scale::tiny();
    let db = generate(scale, 42, DeletePolicy::Cascade);
    let mut catalog = ViewCatalog::new(tpch_schema(DeletePolicy::Cascade));
    for (name, text) in many_views(24, scale) {
        catalog.add(&name, &text).expect("generated view compiles");
    }
    let updates = fanout_stream(16, scale, 9);
    let refs: Vec<&str> = updates.iter().map(String::as_str).collect();
    let mut db = db.clone();
    let report = catalog.check_all_batch_refs(&refs, &mut db, &mut ProbeCache::new());
    let f = report.fanout;
    assert_eq!(f.fanout_requests, 16);
    assert_eq!(f.fallbacks, 0, "fan-out updates are all classifiable");
    assert!(
        f.candidates <= f.fanout_requests * 2,
        "partitioned catalog should route each update to ~1 view, got {f:?}"
    );
    assert!(f.pruned >= 16 * 20, "expected heavy pruning over 24 views, got {f:?}");
    // All three levels contribute on this workload.
    assert!(f.pruned_tags > 0, "{f:?}");
    assert!(f.pruned_paths > 0, "{f:?}");
    assert!(f.pruned_preds > 0, "{f:?}");
}

/// The aggregate/Distinct extension must not perturb routing soundness:
/// views with deduplicated or aggregated regions stay candidates for every
/// update that could reach them (their untranslatable `non-injective`
/// outcomes are *not* statically irrelevant, so pruning one would be
/// unsound), and their candidate outcomes stay byte-identical between the
/// indexed and brute-force paths.
#[test]
fn aggregate_and_distinct_views_route_soundly() {
    let mut catalog = ViewCatalog::new(bookdemo::book_schema());
    catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
    catalog
        .add(
            "stats",
            r#"<Stats> <n_books> count(document("d")/book/row) </n_books>,
<top_price> max(document("d")/book/row/price) </top_price> </Stats>"#,
        )
        .expect("aggregate view compiles");
    catalog
        .add(
            "dedup",
            r#"<Dedup> FOR $b IN distinct(document("d")/book/row)
RETURN { <book> $b/title, $b/price </book> } </Dedup>"#,
        )
        .expect("distinct view compiles");
    catalog
        .add(
            "gated",
            r#"<Gated> FOR $r IN document("d")/review/row
WHERE count(document("d")/review/row) > 1
RETURN { <review> $r/reviewid </review> } </Gated>"#,
        )
        .expect("aggregate-gated view compiles");
    let db = bookdemo::book_db();

    let book_delete = r#"FOR $b IN document("V.xml")/book UPDATE $b { DELETE $b }"#.to_string();
    let updates: Vec<String> = vec![
        // <book> exists in "books" and "dedup": both must be candidates;
        // "dedup" classifies non-injective, "books" runs the classic path.
        book_delete.clone(),
        // Target an aggregate-bearing element directly.
        r#"FOR $n IN document("V.xml")/n_books UPDATE $n { DELETE $n }"#.to_string(),
        // Target the aggregate-gated region.
        r#"FOR $r IN document("V.xml")/review UPDATE $r { DELETE $r }"#.to_string(),
        // Predicate inside a Distinct region.
        r#"FOR $b IN document("V.xml")/book
WHERE $b/price/text() = 45.00
UPDATE $b { DELETE $b }"#
            .to_string(),
        // Insert into the deduplicated region.
        r#"FOR $root IN document("V.xml")
UPDATE $root { INSERT <book><title>T</title><price>9.99</price></book> }"#
            .to_string(),
    ];
    assert_sound(&catalog, &db, &updates);

    // The pinning half of the contract: the Distinct view really is a
    // candidate for the <book> delete, and its candidate outcome is the
    // new untranslatable non-injective wire code — i.e. routing delivered
    // the update to the view whose conservative classification must see it.
    let u = ufilter_xquery::parse_update(&book_delete).unwrap();
    let relevant = catalog.relevant_views(&u);
    assert!(relevant.contains(&"books".to_string()), "{relevant:?}");
    assert!(relevant.contains(&"dedup".to_string()), "{relevant:?}");
    let mut db2 = db.clone();
    let report = catalog.check_all(&book_delete, &mut db2);
    let dedup_item = report.items.iter().find(|i| i.view == "dedup").expect("dedup is a candidate");
    let line = encode_outcome(&dedup_item.reports[0].outcome);
    assert!(line.starts_with("untranslatable non-injective "), "{line}");
    assert!(!wire_outcome_is_irrelevant(&line), "non-injective outcomes are never prunable");
}

/// Route every parseable update through both indexes and demand the full
/// [`u_filter::route::Route`] — candidates, per-level pruning counters and
/// the fallback flag — is identical. The trie may *compute* pruning
/// differently (shared nodes, interval stabs), but it must never *decide*
/// differently.
fn assert_indexes_agree(trie: &TrieIndex, linear: &RelevanceIndex, updates: &[String], ctx: &str) {
    for text in updates {
        let Ok(u) = parse_update(text) else { continue };
        assert_eq!(
            trie.route(&u),
            linear.route(&u),
            "trie and linear walk diverged ({ctx})\nupdate: {text}"
        );
    }
}

/// Differential harness over the two index implementations: the shared
/// path trie (production) against the per-view linear walk (oracle), on
/// randomized TPC-H streams with mid-stream add/drop churn. Signature
/// level only — no UFilter compilation — so the catalog can be large.
#[test]
fn trie_and_linear_walk_agree_on_tpch_streams_with_churn() {
    let scale = Scale::tiny();
    let schema = tpch_schema(DeletePolicy::Cascade);
    let views: Vec<(String, ufilter_asg::ViewAsg)> = many_views(60, scale)
        .into_iter()
        .map(|(name, text)| {
            let q = parse_view_query(&text).expect("generated view parses");
            (name, build_view_asg(&q, &schema).expect("generated view builds"))
        })
        .collect();
    let mut trie = TrieIndex::new();
    let mut linear = RelevanceIndex::new();
    for (name, asg) in &views {
        trie.insert(name, asg);
        linear.insert(name, asg);
    }

    for seed in [11, 12, 13] {
        let mut updates = fanout_stream(20, scale, seed);
        updates.extend(stream(StreamSpec::heavy(6), scale, seed).into_iter().map(|(_, u)| u));
        assert_indexes_agree(&trie, &linear, &updates, "full catalog");

        // Mid-stream churn: drop every third view from both indexes, route
        // the same stream, then re-insert and route again — the trie's
        // incremental remove (node free cascade, postings compaction) must
        // land it in the same state as the rebuilt-from-scratch oracle.
        for (name, _) in views.iter().step_by(3) {
            trie.remove(name);
            linear.remove(name);
        }
        assert_indexes_agree(&trie, &linear, &updates, "after drop churn");
        for (name, asg) in views.iter().step_by(3) {
            trie.insert(name, asg);
            linear.insert(name, asg);
        }
        assert_indexes_agree(&trie, &linear, &updates, "after re-add churn");
    }
}

/// The same differential over fuzz-generated plans: grammar-random views
/// and updates (shapes far outside the TPC-H families), with per-plan
/// drop-half/re-add churn.
#[test]
fn trie_and_linear_walk_agree_on_fuzz_streams_with_churn() {
    let mut routed = 0usize;
    for seed in 0..60u64 {
        let plan = ufilter_fuzz::Plan::generate(seed).raw();
        let mut db = Db::new();
        if db.execute_script(&plan.schema_sql).is_err() {
            continue;
        }
        let schema = db.schema().clone();
        let mut trie = TrieIndex::new();
        let mut linear = RelevanceIndex::new();
        let mut built = Vec::new();
        for (name, text) in &plan.views {
            let Ok(q) = parse_view_query(text) else { continue };
            let Ok(asg) = build_view_asg(&q, &schema) else { continue };
            trie.insert(name, &asg);
            linear.insert(name, &asg);
            built.push((name.clone(), asg));
        }
        if built.is_empty() {
            continue;
        }
        let ctx = format!("fuzz seed {seed}");
        assert_indexes_agree(&trie, &linear, &plan.updates, &ctx);
        routed += plan.updates.len();

        // Churn: drop the first half, route, re-add, route.
        let half = built.len().div_ceil(2);
        for (name, _) in &built[..half] {
            trie.remove(name);
            linear.remove(name);
        }
        assert_indexes_agree(&trie, &linear, &plan.updates, &format!("{ctx}, half dropped"));
        for (name, asg) in &built[..half] {
            trie.insert(name, asg);
            linear.insert(name, asg);
        }
        assert_indexes_agree(&trie, &linear, &plan.updates, &format!("{ctx}, re-added"));
    }
    assert!(routed >= 100, "fuzz sweep routed too few updates to mean anything: {routed}");
}

#[test]
fn book_updates_route_soundly_including_edge_shapes() {
    let mut catalog = ViewCatalog::new(bookdemo::book_schema());
    catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
    for (name, text) in bookdemo::book_view_variants(8) {
        catalog.add(&name, &text).expect("book variant compiles");
    }
    let db = bookdemo::book_db();
    let mut updates: Vec<String> =
        bookdemo::all_updates().into_iter().map(|(_, u)| u.to_string()).collect();
    updates.extend([
        // Unparsable text: every view must report the same malformed line.
        "this is not an update".to_string(),
        // Correlation predicate: resolver rejects it for every view — the
        // index must fall back, never prune.
        r#"FOR $a IN document("V.xml")/book, $b IN document("V.xml")/book
WHERE $a/bookid = $b/bookid
UPDATE $a { DELETE $a/review }"#
            .to_string(),
        // Replace splits into delete + insert.
        r#"FOR $b IN document("V.xml")/book
UPDATE $b { REPLACE $b/title WITH <title>New Title</title> }"#
            .to_string(),
        // Unknown tag everywhere: candidates may legally be empty.
        r#"FOR $z IN document("V.xml")/zebra UPDATE $z { DELETE $z/stripe }"#.to_string(),
    ]);
    assert_sound(&catalog, &db, &updates);
}
