//! Cross-crate integration tests: the full stack from DDL text through view
//! compilation, update checking, translation, execution and rectangle-rule
//! verification.

use u_filter::core::bookdemo;
use u_filter::xquery::{apply_update, materialize};
use u_filter::{
    apply_and_verify, blind_apply, CheckOutcome, RectangleVerdict, StarMode, Strategy, UFilter,
    UFilterConfig,
};

#[test]
fn full_stack_u13_produces_paper_u1_sql() {
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let report = filter.check(bookdemo::U13, &mut db).remove(0);
    let CheckOutcome::Translatable { translation, .. } = report.outcome else {
        panic!("u13 must be translatable");
    };
    let sql: Vec<String> = translation.iter().map(|s| s.to_string()).collect();
    // §6.1's U1 = INSERT INTO review VALUES "98003", "001", "easy read and useful"
    assert_eq!(sql.len(), 1);
    assert!(sql[0].contains("INSERT INTO review"));
    assert!(sql[0].contains("'98003'"));
    assert!(sql[0].contains("'001'"));
    assert!(sql[0].contains("'Easy read and useful.'"));
}

#[test]
fn all_strategies_satisfy_rectangle_rule_on_accepted_updates() {
    for strategy in [Strategy::Outside, Strategy::Hybrid, Strategy::Internal] {
        for (name, update) in bookdemo::all_updates() {
            // The internal strategy's relational view only supports the
            // standard shapes; skip replace-style composites it can't map.
            let filter = bookdemo::book_filter()
                .with_config(UFilterConfig { mode: StarMode::Refined, strategy });
            let mut db = bookdemo::book_db();
            let Ok((accepted, verdict)) = apply_and_verify(&filter, update, &mut db) else {
                continue;
            };
            if accepted {
                assert_eq!(
                    verdict,
                    Some(RectangleVerdict::Holds),
                    "{name} under {strategy:?} violated the rectangle rule"
                );
            }
        }
    }
}

#[test]
fn replace_is_delete_plus_insert() {
    // REPLACE a review with a new one: both actions must check and the
    // final view must show the replacement.
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let replace = r#"
FOR $book IN document("BookView.xml")/book, $review IN $book/review
WHERE $review/reviewid/text() = "002"
UPDATE $book {
REPLACE $review WITH
<review><reviewid>009</reviewid><comment>Rewritten.</comment></review>}"#;
    let reports = filter.apply(replace, &mut db);
    assert_eq!(reports.len(), 2, "replace resolves to delete + insert");
    assert!(reports.iter().all(|r| r.outcome.is_translatable()), "{:?}", reports[0].outcome);
    let rs = db.query_sql("SELECT reviewid FROM review WHERE bookid = '98001'").unwrap();
    let mut ids: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
    ids.sort();
    assert_eq!(ids, vec!["001", "009"]);
}

#[test]
fn multi_action_update_block() {
    // One UPDATE block carrying two actions.
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let two_inserts = r#"
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book {
INSERT <review><reviewid>010</reviewid><comment>A</comment></review>,
INSERT <review><reviewid>011</reviewid><comment>B</comment></review>}"#;
    let reports = filter.apply(two_inserts, &mut db);
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().all(|r| r.outcome.is_translatable()));
    assert_eq!(db.row_count("review"), 4);
}

#[test]
fn view_update_view_roundtrip_via_documents() {
    // Materialize → apply update on the document → compare against the
    // engine-side path, u8 end to end.
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let u = filter.parse(bookdemo::U8).unwrap();
    let mut expected = materialize(&db, filter.query()).unwrap();
    apply_update(&mut expected, &u).unwrap();

    let report = filter.apply(bookdemo::U8, &mut db).remove(0);
    assert!(report.outcome.is_translatable());
    let regenerated = materialize(&db, filter.query()).unwrap();
    assert!(expected.subtree_eq_unordered(expected.root(), &regenerated, regenerated.root()));
}

#[test]
fn blind_baseline_commits_exactly_when_ufilter_accepts_deletes() {
    // On the book database, the blind baseline's verdict (rolled back or
    // not) must agree with U-Filter's for the delete updates — U-Filter
    // just reaches it without touching data.
    let filter = bookdemo::book_filter();
    for (name, update) in bookdemo::all_updates() {
        if !update.contains("DELETE") {
            continue;
        }
        let mut db1 = bookdemo::book_db();
        let report = filter.check(update, &mut db1).remove(0);
        // Skip updates rejected before translation exists (invalid or
        // context-missing): the blind runner cannot even translate some.
        let ufilter_accepts = report.outcome.is_translatable();
        let mut db2 = bookdemo::book_db();
        let Ok(blind) = blind_apply(&filter, update, &mut db2) else {
            continue;
        };
        if ufilter_accepts {
            assert!(!blind.rolled_back, "{name}: blind rolled back an update U-Filter accepts");
        }
    }
}

#[test]
fn default_view_round_trips_through_xml() {
    // DB → default XML view → parse(serialize) → structurally identical.
    let db = bookdemo::book_db();
    let doc = u_filter::xml::default_view(&db);
    let text = u_filter::xml::to_pretty_string(&doc, doc.root());
    let reparsed = u_filter::xml::parse(&text).unwrap();
    assert!(doc.subtree_eq(doc.root(), &reparsed, reparsed.root()));
    assert_eq!(doc.select(doc.root(), &["book", "row"]).len(), 3);
}

#[test]
fn compile_rejects_views_with_relative_sources() {
    let err = UFilter::compile(
        "<V> FOR $b IN document(\"d\")/book/row RETURN { \
           FOR $r IN $b/review RETURN { <x> $r/comment </x> } } </V>",
        &bookdemo::book_schema(),
    )
    .err()
    .expect("relative sources are outside the subset");
    assert!(err.to_string().contains("subset"), "{err}");
}

#[test]
fn checking_is_idempotent() {
    // Running check() twice (with its TAB materializations) must not change
    // classifications.
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    for (name, update) in bookdemo::all_updates() {
        let a = filter.check(update, &mut db).remove(0).outcome.label();
        let b = filter.check(update, &mut db).remove(0).outcome.label();
        assert_eq!(a, b, "{name}: classification changed on re-check");
    }
}

#[test]
fn value_delete_translates_to_set_null() {
    // Deleting a nullable value with no view predicate over it (comment)
    // is valid and translates to SET NULL.
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let u = r#"
FOR $book IN document("BookView.xml")/book, $review IN $book/review
WHERE $review/reviewid/text() = "001"
UPDATE $review { DELETE $review/comment }"#;
    let report = filter.apply(u, &mut db).remove(0);
    assert!(report.outcome.is_translatable(), "{}", report.outcome);
    let rs = db.query_sql("SELECT comment FROM review WHERE reviewid = '001'").unwrap();
    assert!(rs.rows[0][0].is_null());
}

#[test]
fn value_delete_under_view_predicate_rejected() {
    // Deleting <price> would nullify the view's `price < 50` predicate and
    // silently drop the whole book element — a side effect STAR catches.
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let u = r#"
FOR $book IN document("BookView.xml")/book
WHERE $book/bookid/text() = "98001"
UPDATE $book { DELETE $book/price }"#;
    let report = filter.check(u, &mut db).remove(0);
    assert!(!report.outcome.is_translatable(), "{}", report.outcome);
}
