//! Grammar-based differential fuzzing with a blind execute–recompute
//! oracle (see `docs/FUZZING.md`).
//!
//! Every generated (view, update) pair runs through all four check
//! surfaces — direct [`UFilter::check`], `ViewCatalog::check_batch_text`,
//! `check_all` routing, and a served `CHECK` over TCP — and the wire
//! lines must be byte-identical. Accepted translatable updates must then
//! satisfy the paper's Definition 1 rectangle (execute–recompute) via
//! `apply_and_verify`; the oracle is *blind* — it never looks at the
//! checker's reasoning, only at observable outcomes.
//!
//! `UFILTER_FUZZ_CASES` sets the minimum number of cases (default 120
//! locally; CI pins 500). Any failure prints a seed plus a minimized,
//! replayable corpus rendering.

use ufilter_fuzz::{cases_from_env, corpus, run_many, run_raw, OracleOptions, Plan, Surface};

const BASE_SEED: u64 = 0x000F_0220_2600;

#[test]
fn differential_oracle_finds_no_divergence() {
    let cases = cases_from_env(120);
    match run_many(BASE_SEED, cases, &OracleOptions::default()) {
        Ok(stats) => {
            // The sweep must exercise every outcome class, or the
            // generators have silently collapsed.
            assert!(stats.cases >= cases, "covered {} < {cases} cases", stats.cases);
            assert!(stats.translatable > 0, "no translatable outcomes: {stats:?}");
            assert!(stats.untranslatable > 0, "no untranslatable outcomes: {stats:?}");
            assert!(stats.invalid > 0, "no invalid outcomes: {stats:?}");
            assert!(stats.rectangles > 0, "no rectangles verified: {stats:?}");
        }
        Err(fail) => {
            panic!("divergence: {}\nminimized corpus case:\n{}", fail.divergence, fail.corpus)
        }
    }
}

/// Corrupt one surface's wire line and the oracle must notice, shrink the
/// plan to a minimal counterexample, and that counterexample must replay —
/// both from its raw text and by regenerating the plan from its seed.
#[test]
fn injected_divergence_is_caught_shrunk_and_replayable() {
    fn corrupt(surface: Surface, line: &str) -> Option<String> {
        if matches!(surface, Surface::Batch) && line.starts_with("translatable") {
            Some(format!("{line}X"))
        } else {
            None
        }
    }
    let opts = OracleOptions { mutate: Some(corrupt), ..OracleOptions::default() };

    let fail = run_many(BASE_SEED, 50, &opts).expect_err("corrupted surface must diverge");
    assert_eq!(fail.divergence.kind, "surface-mismatch", "{}", fail.divergence);

    // Shrinking kept it reproducible and small.
    assert_eq!(fail.minimized.views.len(), 1, "not minimal: {} views", fail.minimized.views.len());
    assert_eq!(
        fail.minimized.updates.len(),
        1,
        "not minimal: {} updates",
        fail.minimized.updates.len()
    );

    // Replay 1: the raw minimized plan still fails the same way.
    let div = run_raw(&fail.minimized, &opts).expect_err("minimized plan must still diverge");
    assert_eq!(div.kind, fail.divergence.kind);

    // Replay 2: the corpus rendering parses back and fails the same way.
    let parsed = corpus::parse(&fail.corpus).expect("corpus case parses");
    let div = run_raw(&parsed, &opts).expect_err("corpus replay must still diverge");
    assert_eq!(div.kind, fail.divergence.kind);

    // And without the corruption, the same minimized plan is clean.
    run_raw(&fail.minimized, &OracleOptions::default())
        .expect("minimized plan is clean without the injected corruption");
}

/// Checked-in minimized counterexamples replay deterministically. Each
/// `.case` file pins a once-broken behaviour (see the `#` notes inside).
#[test]
fn corpus_fixtures_replay_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/fuzz_corpus");
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .expect("fixtures/fuzz_corpus exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no .case files in {dir}");
    for path in names {
        let text = std::fs::read_to_string(&path).expect("case readable");
        let plan = corpus::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad case file: {e}", path.display()));
        run_raw(&plan, &OracleOptions::default())
            .unwrap_or_else(|d| panic!("{}: replay diverged: {d}", path.display()));
        // Seed replay: regenerating the plan from its recorded seed must
        // also be clean (the corpus seed is the generator seed).
        let regen = Plan::generate(plan.seed);
        run_raw(&regen.raw(), &OracleOptions::default()).unwrap_or_else(|d| {
            panic!("{}: seed {} replay diverged: {d}", path.display(), plan.seed)
        });
    }
}
