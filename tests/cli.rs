//! Integration tests for the `ufilter` CLI binary, driven through the
//! fixtures/ files.

use std::process::Command;

fn ufilter(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_ufilter"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

const BASE: [&str; 4] = ["--schema", "fixtures/book.sql", "--view", "fixtures/bookview.xq"];

fn with_base(rest: &[&str]) -> Vec<&'static str> {
    // Leak is fine in tests; keeps helper signatures simple.
    let mut v: Vec<&'static str> = BASE.to_vec();
    for r in rest {
        v.push(Box::leak(r.to_string().into_boxed_str()));
    }
    v
}

#[test]
fn check_accepts_u8_with_trace_and_sql() {
    let (stdout, _, code) = ufilter(&with_base(&["check", "fixtures/u8.xq"]));
    assert_eq!(code, Some(0));
    assert!(stdout.contains("[update validation] valid"), "{stdout}");
    assert!(stdout.contains("(clean|s-d∧s-i)"), "{stdout}");
    assert!(stdout.contains("SQL> DELETE FROM review"), "{stdout}");
}

#[test]
fn check_rejects_u10_with_exit_1() {
    let (stdout, _, code) = ufilter(&with_base(&["check", "fixtures/u10.xq"]));
    assert_eq!(code, Some(1));
    assert!(stdout.contains("unsafe-delete"), "{stdout}");
}

#[test]
fn apply_u13_inserts_and_reports() {
    let (stdout, _, code) = ufilter(&with_base(&["apply", "fixtures/u13.xq"]));
    assert_eq!(code, Some(0));
    assert!(stdout.contains("INSERT INTO review"), "{stdout}");
    assert!(stdout.contains("'98003'"), "{stdout}");
}

#[test]
fn show_asg_prints_star_marks() {
    let (stdout, _, code) = ufilter(&with_base(&["show-asg"]));
    assert_eq!(code, Some(0));
    assert!(stdout.contains("(dirty|s-d∧u-i)"), "{stdout}");
    assert!(stdout.contains("UCB={book,publisher}"), "{stdout}");
}

#[test]
fn materialize_prints_fig3b_view() {
    let (stdout, _, code) = ufilter(&with_base(&["materialize"]));
    assert_eq!(code, Some(0));
    assert!(stdout.contains("<BookView>"), "{stdout}");
    assert!(stdout.contains("<bookid>98001</bookid>"), "{stdout}");
    assert!(stdout.contains("Data on the Web"), "{stdout}");
    assert!(!stdout.contains("Programming in Unix"), "out-of-view book leaked: {stdout}");
}

#[test]
fn sql_command_queries_the_loaded_schema() {
    let (stdout, _, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "sql",
        "SELECT title FROM book WHERE price < 40.00",
    ]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("TCP/IP Illustrated"), "{stdout}");
}

#[test]
fn strict_mode_flag_changes_u4_step() {
    // In strict mode a book insert dies at STAR before any data access.
    let insert = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT
<book><bookid>98009</bookid><title>T</title><price>20.00</price>
<publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname></publisher>
</book> }"#;
    std::fs::write(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/strict_test_update.xq"),
        insert,
    )
    .unwrap();
    let (stdout, _, code) =
        ufilter(&with_base(&["--mode", "strict", "check", "target/strict_test_update.xq"]));
    assert_eq!(code, Some(1));
    assert!(stdout.contains("unsafe-insert"), "{stdout}");
    // Refined mode accepts it (publisher A01 exists).
    let (stdout, _, code) =
        ufilter(&with_base(&["--mode", "refined", "check", "target/strict_test_update.xq"]));
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn check_batch_reports_stream_outcomes_and_stats() {
    let (stdout, _, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/views.cat",
        "check-batch",
        "fixtures/batch.ubatch",
    ]);
    // u10 in the stream is untranslatable, so the batch exits 1.
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("[1] books: translatable"), "{stdout}");
    assert!(stdout.contains("[2] books: untranslatable"), "{stdout}");
    assert!(stdout.contains("[3] books: translatable"), "{stdout}");
    assert!(stdout.contains("3 update(s)"), "{stdout}");
    assert!(stdout.contains("target group(s)"), "{stdout}");
}

/// `--` lines that are not block headers are comments, not update text.
#[test]
fn check_batch_ignores_comment_lines() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let batch = root.join("target/cli_comments.ubatch");
    let text = format!(
        "-- a leading comment
-- view: books
{}
-- end of stream
",
        std::fs::read_to_string(root.join("fixtures/u8.xq")).unwrap()
    );
    std::fs::write(&batch, text).unwrap();
    let (stdout, _, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/views.cat",
        "check-batch",
        batch.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("[1] books: translatable"), "{stdout}");
    assert!(stdout.contains("1 update(s)"), "{stdout}");
}

/// A typo'd --catalog path must be an error, not an empty catalog that
/// silently disables the DDL guard or reports every view as unknown.
#[test]
fn missing_catalog_manifest_is_an_error() {
    let (_, stderr, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/no_such.cat",
        "sql",
        "DROP TABLE review",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("no_such.cat"), "{stderr}");

    let (_, stderr, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/no_such.cat",
        "check-batch",
        "fixtures/batch.ubatch",
    ]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("no_such.cat"), "{stderr}");
}

/// Names that would corrupt the line-oriented manifest are rejected.
#[test]
fn catalog_add_rejects_unrepresentable_names() {
    let cat = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/cli_badname.cat");
    let _ = std::fs::remove_file(&cat);
    let cat = cat.to_str().unwrap();
    for bad in ["#books", "a=b", "two words"] {
        let (_, stderr, code) = ufilter(&[
            "--schema",
            "fixtures/book.sql",
            "--catalog",
            cat,
            "catalog",
            "add",
            bad,
            "fixtures/bookview.xq",
        ]);
        assert_eq!(code, Some(2), "{bad}: {stderr}");
        assert!(stderr.contains("may not"), "{bad}: {stderr}");
    }
}

/// Misspelled options are an error again, not silently-ignored operands.
#[test]
fn unknown_option_is_rejected() {
    let (_, stderr, code) =
        ufilter(&with_base(&["check", "fixtures/u8.xq", "--strateg", "internal"]));
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown option --strateg"), "{stderr}");
}

#[test]
fn catalog_add_list_drop_roundtrip() {
    let cat = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target/cli_roundtrip.cat");
    let _ = std::fs::remove_file(&cat);
    let cat = cat.to_str().unwrap();

    let (stdout, _, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        cat,
        "catalog",
        "add",
        "books",
        "fixtures/bookview.xq",
    ]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("registered 'books'"), "{stdout}");
    assert!(stdout.contains("book, publisher, review"), "{stdout}");

    // Duplicate registration is rejected.
    let (_, stderr, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        cat,
        "catalog",
        "add",
        "books",
        "fixtures/bookview.xq",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("already registered"), "{stderr}");

    let (stdout, _, code) =
        ufilter(&["--schema", "fixtures/book.sql", "--catalog", cat, "catalog", "list"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("1 view(s) registered"), "{stdout}");

    let (stdout, _, code) =
        ufilter(&["--schema", "fixtures/book.sql", "--catalog", cat, "catalog", "drop", "books"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("dropped 'books'"), "{stdout}");

    let (stdout, _, code) =
        ufilter(&["--schema", "fixtures/book.sql", "--catalog", cat, "catalog", "list"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("0 view(s) registered"), "{stdout}");
}

#[test]
fn ddl_on_catalog_dependency_is_restricted() {
    let (_, stderr, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/views.cat",
        "sql",
        "DROP TABLE review",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("view(s) books depend on it"), "{stderr}");
    // Without the catalog, the same DDL goes through.
    let (stdout, _, code) = ufilter(&["--schema", "fixtures/book.sql", "sql", "DROP TABLE review"]);
    assert_eq!(code, Some(0), "{stdout}");
}

#[test]
fn missing_files_give_exit_2() {
    let (_, stderr, code) = ufilter(&["--schema", "no/such/file.sql", "sql", "SELECT 1 FROM t"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("error:"), "{stderr}");
}

#[test]
fn missing_update_file_gives_exit_2() {
    let (_, stderr, code) = ufilter(&with_base(&["check", "no/such/update.xq"]));
    assert_eq!(code, Some(2));
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("no/such/update.xq"), "error names the file: {stderr}");
}

#[test]
fn unknown_strategy_gives_exit_2() {
    let (_, stderr, code) =
        ufilter(&with_base(&["--strategy", "telepathy", "check", "fixtures/u8.xq"]));
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown strategy"), "{stderr}");
}

/// Every subcommand — old and new — rejects wrong arity with exit code 2
/// and a usage line on stderr.
#[test]
fn wrong_arity_gives_exit_2_with_usage() {
    let cases: &[&[&str]] = &[
        // Missing operands.
        &["--schema", "fixtures/book.sql", "--view", "fixtures/bookview.xq", "check"],
        &["--schema", "fixtures/book.sql", "--view", "fixtures/bookview.xq", "apply"],
        &["--schema", "fixtures/book.sql", "sql"],
        &["--schema", "fixtures/book.sql", "--catalog", "fixtures/views.cat", "catalog"],
        &["--schema", "fixtures/book.sql", "--catalog", "fixtures/views.cat", "catalog", "add"],
        &["--schema", "fixtures/book.sql", "--catalog", "fixtures/views.cat", "check-batch"],
        &["client"],
        &["client", "127.0.0.1:9"],
        // Trailing junk.
        &[
            "--schema",
            "fixtures/book.sql",
            "--view",
            "fixtures/bookview.xq",
            "check",
            "fixtures/u8.xq",
            "extra",
        ],
        &["--schema", "fixtures/book.sql", "--view", "fixtures/bookview.xq", "show-asg", "extra"],
        &["--schema", "fixtures/book.sql", "sql", "SELECT 1 FROM book", "extra"],
        &[
            "--schema",
            "fixtures/book.sql",
            "--catalog",
            "fixtures/views.cat",
            "catalog",
            "list",
            "extra",
        ],
        &[
            "--schema",
            "fixtures/book.sql",
            "--catalog",
            "fixtures/views.cat",
            "check-batch",
            "fixtures/batch.ubatch",
            "extra",
        ],
        &["--schema", "fixtures/book.sql", "serve", "extra"],
        &["client", "127.0.0.1:9", "script", "extra"],
        // Unknown catalog subcommand.
        &["--schema", "fixtures/book.sql", "--catalog", "fixtures/views.cat", "catalog", "nuke"],
        // check-all arity.
        &["--schema", "fixtures/book.sql", "--catalog", "fixtures/views_many.cat", "check-all"],
        &[
            "--schema",
            "fixtures/book.sql",
            "--catalog",
            "fixtures/views_many.cat",
            "check-all",
            "fixtures/u8.xq",
            "extra",
        ],
    ];
    for args in cases {
        let (_, stderr, code) = ufilter(args);
        assert_eq!(code, Some(2), "{args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?} lacks a usage line: {stderr}");
        assert!(stderr.contains("error:"), "{args:?}: {stderr}");
    }
}

/// Unknown options are rejected with usage for old and new subcommands
/// alike, and option values are validated.
#[test]
fn unknown_options_and_bad_values_give_usage() {
    let cases: &[&[&str]] = &[
        &["--schema", "fixtures/book.sql", "--bogus", "serve"],
        &["--workers", "serve"], // swallows "serve" as the count
        &["--schema", "fixtures/book.sql", "--workers", "zero", "serve"],
        &["--schema", "fixtures/book.sql", "--workers", "0", "serve"],
        &["--schema", "fixtures/book.sql", "--slow-ms", "soon", "serve"],
        &["--schema", "fixtures/book.sql", "--slow-ms", "-1", "serve"],
        &["--slow-ms"],
        &["--listen"],
        &["--views"],
        &["--schema", "fixtures/book.sql", "--view", "fixtures/bookview.xq", "check", "--later"],
    ];
    for args in cases {
        let (_, stderr, code) = ufilter(args);
        assert_eq!(code, Some(2), "{args:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{args:?} lacks a usage line: {stderr}");
    }
}

/// `check-all` fans one update out over the many-view manifest: candidate
/// views in name order, decodable wire outcomes, and a pruning trailer
/// showing the index dropped irrelevant views.
#[test]
fn check_all_fans_out_with_pruning_stats() {
    let (stdout, _, code) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/views_many.cat",
        "check-all",
        "fixtures/u8.xq",
    ]);
    // Some candidates are data-context-untranslatable, so the fan-out
    // exits 1 (same semantics as check-batch).
    assert_eq!(code, Some(1), "{stdout}");
    let outcome_lines: Vec<&str> = stdout.lines().filter(|l| !l.starts_with("---")).collect();
    // Candidates print in name order and every outcome decodes.
    let views: Vec<&str> =
        outcome_lines.iter().map(|l| l.split_once(": ").expect("view: outcome").0).collect();
    let mut sorted = views.clone();
    sorted.sort();
    assert_eq!(views, sorted, "{stdout}");
    assert!(views.contains(&"books"), "{stdout}");
    for line in &outcome_lines {
        let (_, outcome) = line.split_once(": ").unwrap();
        u_filter::core::wire::decode_outcome(outcome).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    // The trailer reports real pruning: pubs_*/reviews_all lack the book
    // tag, and high price partitions contradict `price < 40`.
    let trailer = stdout.lines().last().unwrap();
    assert!(trailer.starts_with("--- views=26 "), "{trailer}");
    assert!(trailer.contains("pruned=7 (tags=3 paths=0 preds=4)"), "{trailer}");
    assert!(trailer.contains("fallbacks=0"), "{trailer}");
    assert_eq!(outcome_lines.len(), 26 - 7, "{stdout}");
}

/// The publisher-flavoured update routes to the publisher views only —
/// the book partitions are pruned wholesale.
#[test]
fn check_all_routes_publisher_updates_away_from_book_partitions() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let upd = root.join("target/cli_pub_update.xq");
    std::fs::write(
        &upd,
        "FOR $p IN document(\"V.xml\")/publisher\n\
         WHERE $p/pubid/text() = \"A01\"\n\
         UPDATE $p { DELETE $p }\n",
    )
    .unwrap();
    let (stdout, _, _) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/views_many.cat",
        "check-all",
        upd.to_str().unwrap(),
    ]);
    let views: Vec<&str> = stdout
        .lines()
        .filter(|l| !l.starts_with("---"))
        .map(|l| l.split_once(": ").expect("view: outcome").0)
        .collect();
    assert_eq!(views, ["books", "pubs_all", "pubs_ids"], "{stdout}");
}

/// The batch output satellite: `check-batch` prints outcomes in the stable
/// wire form, which round-trips through the core decoder.
#[test]
fn check_batch_output_is_decodable_wire_form() {
    let (stdout, _, _) = ufilter(&[
        "--schema",
        "fixtures/book.sql",
        "--catalog",
        "fixtures/views.cat",
        "check-batch",
        "fixtures/batch.ubatch",
    ]);
    let mut decoded = 0;
    for line in stdout.lines().filter(|l| l.starts_with('[')) {
        let (_, outcome) = line.split_once(": ").expect("'[i] view: outcome' shape");
        u_filter::core::wire::decode_outcome(outcome).unwrap_or_else(|e| panic!("{line}: {e}"));
        decoded += 1;
    }
    assert_eq!(decoded, 3, "{stdout}");
}
