//! End-to-end tests for `ufilter serve` / `ufilter client`: spawn the real
//! binary as a server on an ephemeral loopback port, drive it with scripted
//! client sessions, and hold the concurrent server to the single-threaded
//! `check-batch` output byte for byte.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn bin() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ufilter"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

/// A running `ufilter serve` child that is killed on drop (so a failing
/// test never leaks a listener).
struct Serve {
    child: Child,
    addr: String,
}

impl Serve {
    /// Spawn `ufilter serve` on an ephemeral port and wait for its
    /// `LISTENING <addr>` line.
    fn spawn(workers: &str) -> Serve {
        Serve::spawn_with("fixtures/views.cat", workers)
    }

    /// [`spawn`](Serve::spawn) with an explicit view manifest.
    fn spawn_with(manifest: &str, workers: &str) -> Serve {
        let mut child = bin()
            .args([
                "--schema",
                "fixtures/book.sql",
                "--views",
                manifest,
                "--listen",
                "127.0.0.1:0",
                "--workers",
                workers,
                "serve",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.take().expect("piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("serve prints LISTENING");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string();
        Serve { child, addr }
    }

    /// Run a client script against this server; returns (stdout, exit code).
    fn client(&self, script: &str) -> (String, Option<i32>) {
        use std::io::Write;
        let mut child = bin()
            .args(["client", &self.addr, "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("client spawns");
        child.stdin.take().expect("piped").write_all(script.as_bytes()).expect("script written");
        let out = child.wait_with_output().expect("client exits");
        assert!(out.stderr.is_empty(), "client stderr: {}", String::from_utf8_lossy(&out.stderr));
        (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code())
    }

    /// Send `shutdown` and wait for the server to exit cleanly.
    fn shutdown(mut self) {
        let (_, code) = self.client("shutdown\n");
        assert_eq!(code, Some(0));
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exit status: {status:?}");
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The acceptance property: a 4-worker server produces byte-identical
/// check outcomes to the single-threaded `check-batch` CLI on the same
/// stream.
#[test]
fn serve_4_workers_matches_check_batch_byte_for_byte() {
    let (batch_out, batch_code) = {
        let out = bin()
            .args([
                "--schema",
                "fixtures/book.sql",
                "--catalog",
                "fixtures/views.cat",
                "check-batch",
                "fixtures/batch.ubatch",
            ])
            .output()
            .expect("check-batch runs");
        (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code())
    };
    assert_eq!(batch_code, Some(1), "stream contains an untranslatable update");
    let batch_lines: Vec<&str> = batch_out.lines().filter(|l| l.starts_with('[')).collect();
    assert_eq!(batch_lines.len(), 3, "{batch_out}");

    let serve = Serve::spawn("4");
    let (client_out, client_code) = serve.client("batch fixtures/batch.ubatch\n");
    assert_eq!(client_code, Some(0), "{client_out}");
    let client_lines: Vec<&str> = client_out.lines().filter(|l| l.starts_with('[')).collect();
    assert_eq!(client_lines, batch_lines, "serve outcomes diverge from check-batch");
    serve.shutdown();
}

/// The fan-out acceptance property: a 4-worker server's `checkall` reply
/// is byte-identical to the single-threaded `check-all` CLI over the same
/// 26-view manifest.
#[test]
fn serve_checkall_matches_check_all_byte_for_byte() {
    let (cli_out, cli_code) = {
        let out = bin()
            .args([
                "--schema",
                "fixtures/book.sql",
                "--catalog",
                "fixtures/views_many.cat",
                "check-all",
                "fixtures/u8.xq",
            ])
            .output()
            .expect("check-all runs");
        (String::from_utf8_lossy(&out.stdout).into_owned(), out.status.code())
    };
    assert_eq!(cli_code, Some(1), "some candidates are untranslatable");
    let cli_lines: Vec<&str> = cli_out.lines().filter(|l| !l.starts_with("---")).collect();
    assert!(cli_lines.len() > 10, "{cli_out}");

    let serve = Serve::spawn_with("fixtures/views_many.cat", "4");
    let (client_out, code) = serve.client("checkall fixtures/u8.xq\n");
    assert_eq!(code, Some(0), "{client_out}");
    let client_lines: Vec<&str> = client_out.lines().filter(|l| !l.starts_with("---")).collect();
    assert_eq!(client_lines, cli_lines, "serve fan-out diverges from check-all");
    assert!(
        client_out.lines().last().unwrap().starts_with("--- views=26 candidates=19 pruned=7"),
        "{client_out}"
    );
    serve.shutdown();
}

/// `batchall` fans a '-- update'-separated stream out and prints
/// per-update candidate outcomes.
#[test]
fn client_batchall_roundtrip() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let uall = root.join("target/service_cli.uall");
    let text = format!(
        "-- update\n{}\n-- update\n{}\n",
        std::fs::read_to_string(root.join("fixtures/u8.xq")).unwrap().trim(),
        std::fs::read_to_string(root.join("fixtures/u10.xq")).unwrap().trim(),
    );
    std::fs::write(&uall, text).unwrap();
    let serve = Serve::spawn("2");
    let (out, code) = serve.client("batchall target/service_cli.uall\n");
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("[1] books: translatable"), "{out}");
    assert!(out.contains("[2] books: untranslatable"), "{out}");
    assert!(out.contains("--- items=2 fanout_requests=2 candidates=2"), "{out}");
    serve.shutdown();
}

#[test]
fn scripted_session_checks_catalog_and_stats() {
    let serve = Serve::spawn("2");
    let script = "\
# full scripted round trip
ping
list
check books fixtures/u8.xq
check books fixtures/u10.xq
add books2 fixtures/bookview.xq
list
drop books2
stats
";
    let (out, code) = serve.client(script);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("OK pong"), "{out}");
    assert!(out.contains("VIEW books reads=book,publisher,review"), "{out}");
    assert!(out.contains("books: translatable"), "{out}");
    assert!(out.contains("books: untranslatable"), "{out}");
    assert!(out.contains("OK added books2"), "{out}");
    assert!(out.contains("VIEW books2"), "{out}");
    assert!(out.contains("OK dropped books2"), "{out}");
    assert!(out.contains("OK workers=2"), "{out}");
    assert!(!out.contains("ERR"), "no ERR reply expected: {out}");
    serve.shutdown();
}

/// `client metrics` prints the server's Prometheus exposition: typed
/// families for every STATS counter plus latency summaries with non-zero
/// counts once traffic has flowed.
#[test]
fn client_metrics_prints_prometheus_exposition() {
    let serve = Serve::spawn("2");
    let (out, code) = serve.client(
        "check books fixtures/u8.xq\n\
         checkall fixtures/u8.xq\n\
         metrics\n",
    );
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("# TYPE ufilter_requests_total counter"), "{out}");
    assert!(out.contains("# TYPE ufilter_request_duration_seconds summary"), "{out}");
    assert!(out.contains("ufilter_workers 2"), "{out}");
    // The check + checkall traffic left real samples behind.
    for prefix in [
        "ufilter_request_duration_seconds_count{verb=\"check\"}",
        "ufilter_check_stage_duration_seconds_count{stage=\"star\"}",
        "ufilter_route_candidates_count",
    ] {
        let line = out
            .lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing {prefix}: {out}"));
        let count: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(count >= 1.0, "{line}");
    }
    serve.shutdown();
}

/// `serve --slow-ms 0` logs every request as a single-line SLOW record on
/// stderr, carrying a 16-hex trace id, the wire verb, and the duration.
#[test]
fn slow_ms_zero_logs_slow_lines_with_trace_ids() {
    let mut child = bin()
        .args([
            "--schema",
            "fixtures/book.sql",
            "--views",
            "fixtures/views.cat",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--slow-ms",
            "0",
            "serve",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("serve prints LISTENING");
    let addr = line.trim().strip_prefix("LISTENING ").expect("LISTENING banner").to_string();

    let mut serve = Serve { child, addr };
    let (out, code) = serve.client("check books fixtures/u8.xq\nping\nshutdown\n");
    assert_eq!(code, Some(0), "{out}");
    let status = serve.child.wait().expect("serve exits");
    assert!(status.success(), "serve exit status: {status:?}");

    let mut stderr = String::new();
    {
        use std::io::Read;
        let mut pipe = serve.child.stderr.take().expect("piped");
        pipe.read_to_string(&mut stderr).expect("stderr readable");
    }
    let slow: Vec<&str> = stderr.lines().filter(|l| l.starts_with("SLOW ")).collect();
    // Every verb crosses a 0ms threshold — the slow log is a diagnostic
    // surface and covers even SHUTDOWN (unlike the metrics histograms).
    assert!(slow.len() >= 3, "expected >=3 SLOW lines: {stderr}");
    assert!(slow.iter().any(|l| l.contains("verb=check")), "{stderr}");
    assert!(slow.iter().any(|l| l.contains("verb=ping")), "{stderr}");
    assert!(slow.iter().any(|l| l.contains("verb=shutdown")), "{stderr}");
    for l in &slow {
        let trace = l
            .split_whitespace()
            .find_map(|w| w.strip_prefix("trace="))
            .unwrap_or_else(|| panic!("no trace id: {l}"));
        assert_eq!(trace.len(), 16, "{l}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()), "{l}");
        assert!(l.contains("dur_us="), "{l}");
        assert!(l.contains("request="), "{l}");
    }
}

#[test]
fn client_surfaces_server_errors_with_exit_1() {
    let serve = Serve::spawn("1");
    // Dropping an unknown view is a server-side ERR; the client must
    // propagate it as exit code 1 (scripted CI sessions rely on this).
    let (out, code) = serve.client("drop no_such_view\n");
    assert_eq!(code, Some(1), "{out}");
    assert!(out.contains("ERR"), "{out}");
    serve.shutdown();
}

#[test]
fn client_against_dead_server_is_exit_2() {
    let out = bin()
        .args(["client", "127.0.0.1:1", "-"])
        .stdin(Stdio::null())
        .output()
        .expect("client runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn serve_rejects_bad_manifest_with_exit_2() {
    let out = bin()
        .args(["--schema", "fixtures/book.sql", "--views", "no/such.cat", "serve"])
        .output()
        .expect("serve runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no/such.cat"));
}
