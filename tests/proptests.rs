//! Property tests over the full pipeline: randomized base data and
//! randomized updates against BookView must satisfy the paper's core
//! guarantees — every *accepted* update's translation is side-effect-free
//! (Definition 1), every *rejected* update leaves the database untouched,
//! and classification is deterministic.

use proptest::prelude::*;
use u_filter::core::bookdemo;
use u_filter::{
    apply_and_verify, RectangleVerdict, StarMode, Strategy as PointStrategy, UFilterConfig,
};
use ufilter_rdb::{Db, Value};

/// Random book database over the Fig. 1 schema: publishers, books, reviews
/// with randomized prices/years so view membership varies.
#[derive(Debug, Clone)]
struct Data {
    publishers: Vec<(String, String)>,
    books: Vec<(String, String, usize, f64, i64)>, // id, title, pub idx, price, year
    reviews: Vec<(usize, String, String)>,         // book idx, reviewid, comment
}

fn data_strategy() -> impl Strategy<Value = Data> {
    let publishers = prop::collection::vec(("[A-Z][0-9]{2}", "[A-Za-z ]{3,12}"), 1..4);
    publishers.prop_flat_map(|pubs| {
        let n_pubs = pubs.len();
        let books = prop::collection::vec(
            ("9[0-9]{4}", "[A-Za-z ]{3,16}", 0..n_pubs, 10.0f64..80.0, 1980i64..2006),
            0..5,
        );
        (Just(pubs), books).prop_flat_map(|(pubs, books)| {
            let n_books = books.len();
            let reviews = if n_books == 0 {
                prop::collection::vec((0..1usize, "[0-9]{3}", "[a-z ]{3,10}"), 0..1).boxed()
            } else {
                prop::collection::vec((0..n_books, "[0-9]{3}", "[a-z ]{3,10}"), 0..6).boxed()
            };
            (Just(pubs), Just(books), reviews).prop_map(|(publishers, books, reviews)| Data {
                publishers,
                books,
                reviews,
            })
        })
    })
}

fn load(data: &Data) -> Db {
    let mut db = Db::new();
    for stmt in bookdemo::ddl("CASCADE") {
        db.execute_sql(&stmt).unwrap();
    }
    let mut seen_pub = Vec::new();
    for (i, (id, name)) in data.publishers.iter().enumerate() {
        if seen_pub.contains(id) {
            continue;
        }
        seen_pub.push(id.clone());
        // pubname is UNIQUE: suffix with the index.
        let _ = db.insert(
            "publisher",
            vec![vec![Value::str(id.clone()), Value::str(format!("{name} {i}"))]],
        );
    }
    let mut seen_book = Vec::new();
    for (id, title, p, price, year) in &data.books {
        if seen_book.contains(id) || *p >= seen_pub.len() {
            continue;
        }
        seen_book.push(id.clone());
        let _ = db.insert(
            "book",
            vec![vec![
                Value::str(id.clone()),
                Value::str(title.clone()),
                Value::str(seen_pub[*p].clone()),
                Value::Double(*price),
                Value::Date(*year),
            ]],
        );
    }
    let mut seen_rev: Vec<(String, String)> = Vec::new();
    for (b, rid, comment) in &data.reviews {
        if *b >= seen_book.len() {
            continue;
        }
        let key = (seen_book[*b].clone(), rid.clone());
        if seen_rev.contains(&key) {
            continue;
        }
        seen_rev.push(key.clone());
        let _ = db.insert(
            "review",
            vec![vec![
                Value::str(key.0),
                Value::str(key.1),
                Value::str(comment.clone()),
                Value::Null,
            ]],
        );
    }
    db
}

/// A randomized update against BookView.
fn update_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Delete reviews of books under a random price bound.
        (5.0f64..90.0).prop_map(|p| format!(
            r#"FOR $book IN document("V.xml")/book
               WHERE $book/price < {p:.2}
               UPDATE $book {{ DELETE $book/review }}"#
        )),
        // Delete books above a bound.
        (5.0f64..90.0).prop_map(|p| format!(
            r#"FOR $root IN document("V.xml"), $book IN $root/book
               WHERE $book/price > {p:.2}
               UPDATE $root {{ DELETE $book }}"#
        )),
        // Insert a review into a book by id (may or may not exist).
        ("9[0-9]{4}", "[0-9]{3}").prop_map(|(b, r)| format!(
            r#"FOR $book IN document("V.xml")/book
               WHERE $book/bookid/text() = "{b}"
               UPDATE $book {{
               INSERT <review><reviewid>{r}</reviewid><comment>pp</comment></review> }}"#
        )),
        // Insert a new book under an existing or absent publisher.
        ("9[0-9]{4}", "[A-Z][0-9]{2}", 1.0f64..99.0).prop_map(|(b, p, price)| format!(
            r#"FOR $root IN document("V.xml")
               UPDATE $root {{
               INSERT <book><bookid>{b}</bookid><title>Gen</title><price>{price:.2}</price>
               <publisher><pubid>{p}</pubid><pubname>Whatever</pubname></publisher>
               </book> }}"#
        )),
        // Delete the publisher of some book (always untranslatable).
        Just(
            r#"FOR $book IN document("V.xml")/book
               UPDATE $book { DELETE $book/publisher }"#
                .to_string()
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accepted_updates_are_side_effect_free(
        data in data_strategy(),
        update in update_strategy(),
    ) {
        let filter = bookdemo::book_filter();
        let mut db = load(&data);
        // An Err means the update is malformed for this data shape: fine.
        if let Ok((accepted, verdict)) = apply_and_verify(&filter, &update, &mut db) {
            if accepted {
                prop_assert_eq!(
                    verdict,
                    Some(RectangleVerdict::Holds),
                    "accepted update violated the rectangle rule: {}",
                    update
                );
            }
        }
    }

    #[test]
    fn rejected_updates_do_not_mutate(
        data in data_strategy(),
        update in update_strategy(),
    ) {
        let filter = bookdemo::book_filter();
        let mut db = load(&data);
        let before = db.dump();
        let reports = filter.check(&update, &mut db);
        if !reports.iter().all(|r| r.outcome.is_translatable()) {
            for t in ["TAB_book", "TAB_publisher", "TAB_review", "TAB_BookView"] {
                let _ = db.drop_table(t);
            }
            prop_assert_eq!(db.dump(), before);
        }
    }

    #[test]
    fn classification_is_deterministic_and_mode_consistent(
        data in data_strategy(),
        update in update_strategy(),
    ) {
        // Same update, same data → same label; and Strict never accepts
        // something Refined rejects.
        let mut db = load(&data);
        let refined = bookdemo::book_filter()
            .with_config(UFilterConfig { mode: StarMode::Refined, strategy: PointStrategy::Outside });
        let strict = bookdemo::book_filter()
            .with_config(UFilterConfig { mode: StarMode::Strict, strategy: PointStrategy::Outside });
        let a = refined.check(&update, &mut db).remove(0).outcome.is_translatable();
        let b = refined.check(&update, &mut db).remove(0).outcome.is_translatable();
        prop_assert_eq!(a, b);
        let s = strict.check(&update, &mut db).remove(0).outcome.is_translatable();
        if s {
            prop_assert!(a, "strict accepted what refined rejected: {}", update);
        }
    }

    #[test]
    fn hybrid_and_outside_agree(
        data in data_strategy(),
        update in update_strategy(),
    ) {
        let mut results = Vec::new();
        for strategy in [PointStrategy::Outside, PointStrategy::Hybrid] {
            let filter = bookdemo::book_filter()
                .with_config(UFilterConfig { mode: StarMode::Refined, strategy });
            let mut db = load(&data);
            let reports = filter.apply(&update, &mut db);
            results.push((
                reports.iter().all(|r| r.outcome.is_translatable()),
                db.dump(),
            ));
        }
        prop_assert_eq!(results[0].0, results[1].0, "strategies disagree on {}", update);
        if results[0].0 {
            // Accepted by both: same final state (modulo TAB tables, which
            // dump() excludes only if dropped — drop them).
            let (a, b) = (&results[0].1, &results[1].1);
            let strip = |d: &std::collections::BTreeMap<String, Vec<ufilter_rdb::Row>>| {
                d.iter()
                    .filter(|(k, _)| !k.starts_with("TAB_"))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect::<Vec<_>>()
            };
            prop_assert_eq!(strip(a), strip(b));
        }
    }

    #[test]
    fn wire_escape_roundtrips_arbitrary_strings(
        // The full ASCII-printable range (covers every escaped character:
        // space, comma, %) plus control characters and non-ASCII blocks —
        // Latin-1 letters, CJK, and an astral-plane emoji range — so the
        // codec's UTF-8 handling is exercised, not just its ASCII core.
        s in "[ -~\t\n\ré-ÿ中-龥😀-😄]{0,32}",
    ) {
        let escaped = u_filter::core::wire::escape(&s);
        prop_assert!(
            !escaped.contains([' ', '\t', '\n', '\r', ',']),
            "escape left a separator in {escaped:?}"
        );
        prop_assert_eq!(u_filter::core::wire::unescape(&escaped).unwrap(), s);
    }
}
