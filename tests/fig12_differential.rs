//! Differential pinning of the Fig. 12 aggregate/Distinct extension.
//!
//! Every view the extended subset newly includes (see
//! `ufilter_usecases::subset_views`) must:
//!
//! 1. **compile** end-to-end (parse → ASG → STAR marking) and
//!    **materialize** against sample data without panicking;
//! 2. **check** a sample update stream without panicking, classifying
//!    updates that reach deduplicated/aggregated regions as untranslatable
//!    with the `non-injective` step code (never `ERR`, never a panic);
//! 3. produce **byte-identical wire-encoded outcomes** between the
//!    `check-batch` engine (`ViewCatalog::check_batch_text`) and the served
//!    `BATCH` path (a real `CheckServer` over TCP).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use u_filter::core::catalog::ViewCatalog;
use u_filter::core::wire::{encode_outcome, encode_outcomes};
use u_filter::core::{CheckOutcome, CheckStep};
use u_filter::service::{proto, CheckServer, ShardedCatalog};
use u_filter::usecases::{
    independence_updates, subset_data_sql, subset_schema_sql, subset_updates, subset_views,
};
use ufilter_rdb::Db;

fn subset_db() -> Db {
    let mut db = Db::new();
    db.execute_script(subset_schema_sql()).expect("subset schema DDL");
    for stmt in subset_data_sql() {
        db.execute_sql(stmt).expect("subset data row");
    }
    db
}

fn subset_catalog(db: &Db) -> ViewCatalog {
    let mut catalog = ViewCatalog::new(db.schema().clone());
    for (name, text) in subset_views() {
        catalog.add(name, text).unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
    }
    catalog
}

fn stream() -> Vec<(String, String)> {
    // Original pinned stream first (indexes 0..=8 are asserted below),
    // then the independence-analysis flips — appended, so every
    // previously-pinned outcome keeps its index and its bytes.
    subset_updates()
        .iter()
        .chain(independence_updates())
        .map(|(v, u)| (v.to_string(), u.to_string()))
        .collect()
}

#[test]
fn every_newly_included_view_compiles_and_materializes() {
    let db = subset_db();
    let catalog = subset_catalog(&db);
    assert_eq!(catalog.len(), subset_views().len());
    for (name, _) in subset_views() {
        let f = catalog.get(name).expect("registered");
        // The evaluator must handle Distinct sources and aggregate values.
        let doc = u_filter::xquery::materialize(&db, f.query())
            .unwrap_or_else(|e| panic!("{name} failed to materialize: {e}"));
        let _ = doc;
    }
}

#[test]
fn sample_stream_classifies_without_panicking() {
    let db = subset_db();
    let catalog = subset_catalog(&db);
    let mut db = db.clone();
    let report = catalog.check_batch_text(&stream(), &mut db);
    assert_eq!(report.items.len(), subset_updates().len() + independence_updates().len());

    let step_of = |i: usize| match &report.items[i].reports[0].outcome {
        CheckOutcome::Untranslatable { step, .. } => Some(*step),
        _ => None,
    };
    // Updates reaching Distinct regions (items 0–2), aggregate elements
    // (3), aggregate-fed row regions (4), aggregate-gated regions (5) and
    // aggregate-containing subtrees (6) are all untranslatable with the new
    // step code — a precise reason, not a compile-time refusal.
    for i in 0..=6 {
        assert_eq!(
            step_of(i),
            Some(CheckStep::NonInjective),
            "item {i} ({}): {:?}",
            report.items[i].view,
            report.items[i].reports[0].outcome
        );
    }
    // Statically irrelevant shapes keep their classic Step-1 classes.
    assert!(report.items[7].reports[0].outcome.is_invalid(), "unknown target stays invalid");
    assert!(report.items[8].reports[0].outcome.is_invalid(), "hierarchy violation stays invalid");
}

/// The README precision column: each `independence_updates()` entry is a
/// use-case update the blunt Step-1½ footprint check rejects that the
/// independence analysis proves safe. The flip itself is visible in the
/// trace — the `NonInjective` entry records both the blunt rejection
/// reason and the overriding independence note — so this pins
/// rejected→accepted per update, not just final acceptance.
#[test]
fn independence_updates_flip_on_the_use_cases() {
    let db = subset_db();
    let catalog = subset_catalog(&db);
    for (view, update) in independence_updates() {
        let filter = catalog.get(view).expect("use-case view registered");
        let mut cdb = db.clone();
        let reports = filter.check(update, &mut cdb);
        assert!(!reports.is_empty(), "{view}: update produced no reports");
        for r in &reports {
            assert!(
                r.outcome.is_translatable(),
                "{view}: expected a flip to translatable, got {:?}",
                r.outcome
            );
            let flip = r.trace.iter().any(|(step, note)| {
                *step == CheckStep::NonInjective && note.contains("independence:")
            });
            assert!(
                flip,
                "{view}: accepted without passing through the blunt gate — \
                 not a precision win; trace: {:?}",
                r.trace
            );
        }
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("server accepts");
        Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("server replies");
        line.trim_end().to_string()
    }
}

#[test]
fn served_batch_is_byte_identical_to_check_batch() {
    let db = subset_db();

    // Library side: the check-batch engine.
    let catalog = subset_catalog(&db);
    let mut lib_db = db.clone();
    let lib = catalog.check_batch_text(&stream(), &mut lib_db);
    let mut expected: Vec<String> = Vec::new();
    for item in &lib.items {
        for r in &item.reports {
            expected.push(format!(
                "ITEM {} {} {}",
                item.index,
                item.view,
                encode_outcome(&r.outcome)
            ));
        }
    }

    // Served side: a real CheckServer, 2 workers, same views and data.
    let sharded = Arc::new(ShardedCatalog::new(db.schema().clone(), 4));
    for (name, text) in subset_views() {
        sharded.add(name, text).unwrap();
    }
    let server = CheckServer::bind("127.0.0.1:0", sharded, &db, 2).expect("binds");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    let mut c = Client::connect(addr);

    // Per-item CHECK replies must equal the library's tab-joined outcomes.
    let stream = stream();
    let mut saw_non_injective = false;
    for (i, (view, update)) in stream.iter().enumerate() {
        c.send(&proto::check_request(view, update));
        let reply = c.recv();
        let lib_line = encode_outcomes(
            &lib.items[i].reports.iter().map(|r| r.outcome.clone()).collect::<Vec<_>>(),
        );
        assert_eq!(reply, format!("OK {lib_line}"), "CHECK {view} diverged");
        if reply.contains("untranslatable non-injective") {
            saw_non_injective = true;
        }
    }
    assert!(saw_non_injective, "no CHECK surfaced the non-injective wire code");

    // BATCH: the full stream in one request, byte-identical ITEM lines.
    c.send(&format!("BATCH {}", stream.len()));
    for (view, update) in &stream {
        c.send(&proto::batch_item(view, update));
    }
    let head = c.recv();
    assert_eq!(head, format!("OK {}", stream.len()), "{head}");
    let mut got: Vec<String> = Vec::new();
    loop {
        let line = c.recv();
        if line.starts_with("END ") {
            break;
        }
        got.push(line);
    }
    assert_eq!(got, expected, "served BATCH diverged from check-batch");

    c.send("SHUTDOWN");
    let _ = c.recv();
    handle.join().expect("server thread");
}
