//! Overhead self-check: the instrumented check pipeline must stay within a
//! small factor of the same pipeline with metrics disabled.
//!
//! This test lives in its own integration binary because it toggles the
//! process-global metrics enable flag — sharing a process with other tests
//! would let a disabled window swallow their samples.

use std::time::Instant;

use u_filter::core::{bookdemo, obs};

/// Run `iters` checks per batch, `batches` times, and return the fastest
/// batch in nanoseconds — min-of-batches filters scheduler noise the way
/// a mean cannot.
fn min_batch_nanos(batches: u32, iters: u32, f: &mut impl FnMut()) -> u128 {
    (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one batch")
}

#[test]
fn instrumented_pipeline_stays_within_a_small_factor_of_disabled() {
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let run = |db: &mut _| {
        let reports = filter.check(bookdemo::U8, db);
        assert!(reports[0].outcome.is_translatable());
    };

    // Warm up caches and code paths before either timed window.
    for _ in 0..20 {
        run(&mut db);
    }

    obs::set_enabled(true);
    let enabled = min_batch_nanos(5, 30, &mut || run(&mut db));
    obs::set_enabled(false);
    let disabled = min_batch_nanos(5, 30, &mut || run(&mut db));
    obs::set_enabled(true);

    // A span is four relaxed atomic adds plus one Instant read — orders of
    // magnitude below a single pipeline stage. The 3x factor plus absolute
    // slack keeps this meaningful without being flaky on loaded CI boxes.
    let budget = disabled.saturating_mul(3) + 2_000_000; // +2ms absolute
    assert!(
        enabled <= budget,
        "metrics overhead too high: enabled={enabled}ns disabled={disabled}ns budget={budget}ns"
    );
}
