//! Acceptance stream for the static query–update independence analysis.
//!
//! A seeded stream of ≥2000 updates biased at aggregate/Distinct views
//! (`gen_view::generate_aggregated` + `gen_update::generate_biased`).
//! Every update the blunt Step-1½ non-injective gate rejects is
//! re-examined by the independence analysis; this test pins the criterion
//! that **at least 25% of those blunt rejections flip to accepted**, and
//! that every accepted update still satisfies the paper's Definition 1
//! rectangle — zero oracle mismatches. A second phase replays biased
//! plans through the full four-surface differential oracle so the flipped
//! outcomes are also byte-identical across CLI-style direct checks,
//! `check_batch_text`, `check_all` routing and a served `CHECK`.
//!
//! Blunt rejections and flips are observed through the process-global
//! independence counters, which is why this file holds a single `#[test]`:
//! a parallel test in the same binary would pollute the per-update deltas.

use ufilter_core::{apply_and_verify, independence, RectangleVerdict, ViewCatalog};
use ufilter_fuzz::gen_schema::GenSchema;
use ufilter_fuzz::{gen_update, gen_view, run_raw, FuzzRng, OracleOptions, RawPlan};
use ufilter_rdb::Db;

const BASE_SEED: u64 = 0x001D_0806_2600;
const MIN_UPDATES: usize = 2000;
const UPDATES_PER_PLAN: usize = 16;

#[test]
fn biased_stream_flips_a_quarter_of_blunt_rejections_with_zero_mismatches() {
    let mut total = 0usize;
    let mut blunt_rejected = 0usize;
    let mut flipped = 0usize;
    let mut accepted = 0usize;
    let mut seed = BASE_SEED;

    while total < MIN_UPDATES {
        let plan_seed = seed;
        seed += 1;
        let mut rng = FuzzRng::new(plan_seed);
        let mut schema_rng = rng.fork();
        let mut view_rng = rng.fork();
        let mut upd_rng = rng.fork();

        let gschema = GenSchema::generate(&mut schema_rng);
        let mut db = Db::new();
        db.execute_script(&gschema.sql()).expect("generated schema applies");
        let view = gen_view::generate_aggregated(&mut view_rng, &gschema, 0);
        let mut catalog = ViewCatalog::new(db.schema().clone());
        catalog.add("v0", &view.text()).unwrap_or_else(|e| {
            panic!("seed {plan_seed}: biased view rejected: {e}\n{}", view.text())
        });
        let filter = catalog.get("v0").expect("registered view resolves");

        for _ in 0..UPDATES_PER_PLAN {
            let upd = gen_update::generate_biased(&mut upd_rng, &gschema, &view);
            let text = upd.text();
            total += 1;

            let before = independence::stats();
            let mut cdb = db.clone();
            let reports = filter.check(&text, &mut cdb);
            let after = independence::stats();
            // The analysis runs exactly on blunt-rejected actions, so a
            // moving `checked` counter marks a previously-rejected update.
            let was_blunt_rejected = after.checked > before.checked;
            if was_blunt_rejected {
                blunt_rejected += 1;
            }

            let ok = !reports.is_empty() && reports.iter().all(|r| r.outcome.is_translatable());
            if !ok {
                continue;
            }
            accepted += 1;
            if was_blunt_rejected {
                flipped += 1;
            }
            // Ground truth for every acceptance: the Definition 1
            // rectangle (execute–recompute) must hold.
            let mut adb = db.clone();
            match apply_and_verify(filter, &text, &mut adb) {
                Ok((true, Some(RectangleVerdict::Holds))) => {}
                other => panic!(
                    "oracle mismatch at seed {plan_seed} [{}]: {other:?}\nview:\n{}\nupdate:\n{text}",
                    upd.label,
                    view.text(),
                ),
            }
        }
    }

    assert!(total >= MIN_UPDATES, "stream too short: {total}");
    assert!(
        blunt_rejected * 4 >= total,
        "bias collapsed: only {blunt_rejected}/{total} updates hit the blunt gate"
    );
    assert!(accepted > 0, "no accepted updates at all");
    assert!(
        flipped * 4 >= blunt_rejected,
        "flip rate below 25%: {flipped}/{blunt_rejected} blunt rejections accepted \
         ({accepted} accepted of {total} total)"
    );

    // Phase 2: the flipped outcomes must also be byte-identical across all
    // four check surfaces (direct, batch, fan-out, TCP) and re-verify the
    // rectangle inside the oracle's own harness.
    for s in 0..12u64 {
        let plan_seed = BASE_SEED ^ (0xB1A5_0000 + s);
        let mut rng = FuzzRng::new(plan_seed);
        let mut schema_rng = rng.fork();
        let mut view_rng = rng.fork();
        let mut upd_rng = rng.fork();
        let gschema = GenSchema::generate(&mut schema_rng);
        let views: Vec<gen_view::GenView> = (0..if view_rng.chance(0.4) { 2 } else { 1 })
            .map(|i| gen_view::generate_aggregated(&mut view_rng, &gschema, i))
            .collect();
        let updates: Vec<String> = (0..6)
            .map(|_| {
                let v = upd_rng.index(views.len());
                gen_update::generate_biased(&mut upd_rng, &gschema, &views[v]).text()
            })
            .collect();
        let raw = RawPlan {
            seed: plan_seed,
            schema_sql: gschema.sql(),
            views: views.iter().map(|v| (v.name.clone(), v.text())).collect(),
            updates,
        };
        run_raw(&raw, &OracleOptions::default())
            .unwrap_or_else(|d| panic!("biased plan diverged across surfaces: {d}"));
    }
}
