//! Warm-restart routing (`ufilter-core::persist` × `ufilter-route`).
//!
//! The contract under test: replaying a persisted many-view catalog
//! populates the shared path-trie routing index **straight from the
//! artifact preludes** — `decode_artifact_header` yields each view's
//! routing signature without decoding (or recompiling) a single ASG — and
//! the warm catalog routes byte-identically to the catalog that compiled
//! every view from source. Routing itself must never force hydration:
//! candidate selection is a pure signature-index operation.

use std::sync::{Arc, Mutex};

use u_filter::core::catalog::ViewCatalog;
use u_filter::core::CatalogStore;
use u_filter::tpch::{fanout_stream, many_views, tpch_schema, Scale};
use ufilter_rdb::{Db, DeletePolicy};

/// Views in the persisted catalog. Large enough that a linear rebuild
/// would dominate restart cost; small enough for a debug-mode test run.
const N: usize = 10_000;

#[test]
fn warm_restart_populates_the_trie_without_decoding_any_asg() {
    let scale = Scale::tiny();
    let schema = tpch_schema(DeletePolicy::Cascade);
    let dir = std::env::temp_dir().join(format!("ufilter-persist-route-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Build and persist the catalog the slow way: every view compiled from
    // source, every Add record carrying its full serialized artifact.
    let mut cold = ViewCatalog::new(schema.clone());
    cold.attach_store(Arc::new(Mutex::new(CatalogStore::open(&dir).expect("store opens"))));
    for (name, text) in many_views(N, scale) {
        cold.add(&name, &text).expect("generated view compiles");
    }
    assert_eq!(cold.len(), N);
    assert_eq!(cold.hydrated_count(), N, "compiled-from-source views are all hydrated");
    let cold_stats = cold.index_stats();
    assert!(cold_stats.nodes > 0 && cold_stats.postings > 0, "{cold_stats:?}");

    // Warm restart: replay the recovered records into a fresh catalog.
    let store = CatalogStore::open(&dir).expect("store reopens");
    let mut db = Db::new(); // no DDL records, so replay never touches it
    let mut warm = ViewCatalog::new(schema);
    let stats = warm.replay(&mut db, store.records()).expect("replay succeeds");
    assert_eq!(stats.adds, N);
    assert_eq!(stats.rehydrated, N, "every view rehydrates from its artifact prelude");
    assert_eq!(stats.recompiled, 0, "no view falls back to a recompile");

    // The pin: replay populated the routing index without decoding any ASG.
    assert_eq!(warm.len(), N);
    assert_eq!(warm.hydrated_count(), 0, "replay decoded an ASG it should have deferred");
    let warm_stats = warm.index_stats();
    assert_eq!(warm_stats.nodes, cold_stats.nodes, "trie shape differs after warm restart");
    assert_eq!(warm_stats.postings, cold_stats.postings);

    // Routing a realistic update stream over the warm catalog: candidates
    // identical to the fully-compiled catalog, and still zero hydrations —
    // relevance is decided from the trie alone.
    for text in fanout_stream(50, scale, 7) {
        let u = ufilter_xquery::parse_update(&text).expect("fan-out update parses");
        let warm_route = warm.route_update(&u);
        let cold_route = cold.route_update(&u);
        assert_eq!(
            warm_route.candidates, cold_route.candidates,
            "warm and cold catalogs route differently\nupdate: {text}"
        );
        assert!(!warm_route.fallback, "fan-out updates are classifiable");
    }
    assert_eq!(warm.hydrated_count(), 0, "routing forced a hydration");

    let _ = std::fs::remove_dir_all(&dir);
}
