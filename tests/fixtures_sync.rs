//! The fixtures/ files are the CLI-facing copies of `ufilter_core::bookdemo`
//! (the paper's Fig. 1 database and Fig. 3/10 queries). These tests pin the
//! two representations together so neither can drift silently.

use std::path::Path;

use u_filter::core::bookdemo;
use ufilter_rdb::Db;

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn book_sql_builds_the_bookdemo_database() {
    let mut db = Db::new();
    db.execute_script(&fixture("fixtures/book.sql")).expect("fixture script runs");
    assert_eq!(db.dump(), bookdemo::book_db().dump(), "fixtures/book.sql drifted from bookdemo");
}

#[test]
fn batch_fixture_is_the_update_fixtures_concatenated() {
    let expected = ["fixtures/u8.xq", "fixtures/u10.xq", "fixtures/u13.xq"]
        .map(|rel| format!("-- view: books\n{}", fixture(rel).trim()))
        .join("\n\n");
    assert_eq!(
        fixture("fixtures/batch.ubatch").trim(),
        expected.trim(),
        "fixtures/batch.ubatch drifted from the u8/u10/u13 fixtures"
    );
}

/// The many-view manifest (fan-out CLI and service tests): `books` plus the
/// 25 generated book-schema variants of `bookdemo::book_view_variants`.
/// Regenerate after changing the generator with
/// `UFILTER_REGEN_FIXTURES=1 cargo test --test fixtures_sync`.
#[test]
fn views_many_fixture_matches_the_generator() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let variants = bookdemo::book_view_variants(25);
    let mut manifest = String::from(
        "# ufilter view catalog: name=viewfile (generated; see tests/fixtures_sync.rs)\n\
         books=fixtures/bookview.xq\n",
    );
    let mut files: Vec<(String, String)> = Vec::new();
    for (name, text) in &variants {
        let rel = format!("fixtures/views_many/{name}.xq");
        manifest.push_str(&format!("{name}={rel}\n"));
        files.push((rel, format!("{}\n", text.trim())));
    }
    if std::env::var_os("UFILTER_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(root.join("fixtures/views_many")).unwrap();
        std::fs::write(root.join("fixtures/views_many.cat"), &manifest).unwrap();
        for (rel, text) in &files {
            std::fs::write(root.join(rel), text).unwrap();
        }
        return;
    }
    assert_eq!(
        fixture("fixtures/views_many.cat"),
        manifest,
        "fixtures/views_many.cat drifted from book_view_variants(25)"
    );
    for (rel, text) in &files {
        assert_eq!(&fixture(rel), text, "{rel} drifted from book_view_variants(25)");
    }
}

/// Pin the on-disk persistence format (`ufilter_core::persist`): a fixed
/// catalog session — two adds, guarded DDL, a drop, a compaction, one more
/// add — must produce byte-identical `catalog.snap`/`catalog.log` files to
/// the committed fixtures. The codec is deterministic (sorted marking maps,
/// canonical view text), so a byte diff means the format changed: bump
/// `FORMAT_VERSION`/`ARTIFACT_VERSION`, update `docs/PERSISTENCE.md`, and
/// regenerate with `UFILTER_REGEN_FIXTURES=1 cargo test --test fixtures_sync`.
#[test]
fn persistence_fixture_bytes_are_format_stable() {
    use std::sync::{Arc, Mutex};
    use u_filter::core::catalog::ViewCatalog;
    use u_filter::core::persist::CatalogStore;

    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = std::env::temp_dir().join(format!("ufilter-fixture-gen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut catalog = ViewCatalog::new(bookdemo::book_schema());
    let mut db = bookdemo::book_db();
    let store = Arc::new(Mutex::new(CatalogStore::open(&dir).unwrap()));
    catalog.attach_store(Arc::clone(&store));
    catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
    catalog.add("stats", bookdemo::BOOK_STATS_VIEW).unwrap();
    catalog.execute_guarded(&mut db, "CREATE TABLE pinned (id INTEGER)").unwrap();
    catalog.drop_view("stats").unwrap();
    store.lock().unwrap().compact().unwrap(); // snapshot gen 2: books + ddl
    catalog.add("reviews", bookdemo::REVIEWS_ALL).unwrap(); // lands in the fresh log
    drop(catalog);
    drop(store);

    let generated_snap = std::fs::read(dir.join("catalog.snap")).unwrap();
    let generated_log = std::fs::read(dir.join("catalog.log")).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    if std::env::var_os("UFILTER_REGEN_FIXTURES").is_some() {
        std::fs::write(root.join("fixtures/catalog.snap"), &generated_snap).unwrap();
        std::fs::write(root.join("fixtures/catalog.log"), &generated_log).unwrap();
        return;
    }
    let read = |rel: &str| {
        let path = root.join(rel);
        std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
    };
    assert_eq!(read("fixtures/catalog.snap"), generated_snap, "catalog.snap format drifted");
    assert_eq!(read("fixtures/catalog.log"), generated_log, "catalog.log format drifted");

    // And the committed bytes still open + replay to the expected catalog
    // (copied to a scratch dir — open() may repair files in place, and a
    // fixture must never be mutated by a test).
    let scratch = std::env::temp_dir().join(format!("ufilter-fixture-open-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    std::fs::write(scratch.join("catalog.snap"), read("fixtures/catalog.snap")).unwrap();
    std::fs::write(scratch.join("catalog.log"), read("fixtures/catalog.log")).unwrap();
    let store = CatalogStore::open(&scratch).unwrap();
    assert_eq!(store.generation(), 2);
    assert_eq!(store.stats().truncated_bytes, 0, "fixture has no torn tail");
    let mut db = bookdemo::book_db();
    let mut recovered = ViewCatalog::new(bookdemo::book_schema());
    let stats = recovered.replay(&mut db, store.records()).unwrap();
    assert_eq!(stats.rehydrated, 2, "both surviving views rehydrate from their artifacts");
    let names: Vec<String> = recovered.list().into_iter().map(|v| v.name).collect();
    assert_eq!(names, ["books", "reviews"]);
    assert!(db.schema().table("pinned").is_some(), "fixture DDL replays");
    std::fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn view_and_update_fixtures_match_bookdemo_constants() {
    for (rel, constant) in [
        ("fixtures/bookview.xq", bookdemo::BOOK_VIEW),
        ("fixtures/bookstats.xq", bookdemo::BOOK_STATS_VIEW),
        ("fixtures/u8.xq", bookdemo::U8),
        ("fixtures/u10.xq", bookdemo::U10),
        ("fixtures/u13.xq", bookdemo::U13),
        ("fixtures/u_agg.xq", bookdemo::U_AGG),
    ] {
        assert_eq!(fixture(rel).trim(), constant.trim(), "{rel} drifted from bookdemo");
    }
}
