//! The fixtures/ files are the CLI-facing copies of `ufilter_core::bookdemo`
//! (the paper's Fig. 1 database and Fig. 3/10 queries). These tests pin the
//! two representations together so neither can drift silently.

use std::path::Path;

use u_filter::core::bookdemo;
use ufilter_rdb::Db;

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn book_sql_builds_the_bookdemo_database() {
    let mut db = Db::new();
    db.execute_script(&fixture("fixtures/book.sql")).expect("fixture script runs");
    assert_eq!(db.dump(), bookdemo::book_db().dump(), "fixtures/book.sql drifted from bookdemo");
}

#[test]
fn batch_fixture_is_the_update_fixtures_concatenated() {
    let expected = ["fixtures/u8.xq", "fixtures/u10.xq", "fixtures/u13.xq"]
        .map(|rel| format!("-- view: books\n{}", fixture(rel).trim()))
        .join("\n\n");
    assert_eq!(
        fixture("fixtures/batch.ubatch").trim(),
        expected.trim(),
        "fixtures/batch.ubatch drifted from the u8/u10/u13 fixtures"
    );
}

#[test]
fn view_and_update_fixtures_match_bookdemo_constants() {
    for (rel, constant) in [
        ("fixtures/bookview.xq", bookdemo::BOOK_VIEW),
        ("fixtures/u8.xq", bookdemo::U8),
        ("fixtures/u10.xq", bookdemo::U10),
        ("fixtures/u13.xq", bookdemo::U13),
    ] {
        assert_eq!(fixture(rel).trim(), constant.trim(), "{rel} drifted from bookdemo");
    }
}
