//! The fixtures/ files are the CLI-facing copies of `ufilter_core::bookdemo`
//! (the paper's Fig. 1 database and Fig. 3/10 queries). These tests pin the
//! two representations together so neither can drift silently.

use std::path::Path;

use u_filter::core::bookdemo;
use ufilter_rdb::Db;

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn book_sql_builds_the_bookdemo_database() {
    let mut db = Db::new();
    db.execute_script(&fixture("fixtures/book.sql")).expect("fixture script runs");
    assert_eq!(db.dump(), bookdemo::book_db().dump(), "fixtures/book.sql drifted from bookdemo");
}

#[test]
fn batch_fixture_is_the_update_fixtures_concatenated() {
    let expected = ["fixtures/u8.xq", "fixtures/u10.xq", "fixtures/u13.xq"]
        .map(|rel| format!("-- view: books\n{}", fixture(rel).trim()))
        .join("\n\n");
    assert_eq!(
        fixture("fixtures/batch.ubatch").trim(),
        expected.trim(),
        "fixtures/batch.ubatch drifted from the u8/u10/u13 fixtures"
    );
}

/// The many-view manifest (fan-out CLI and service tests): `books` plus the
/// 25 generated book-schema variants of `bookdemo::book_view_variants`.
/// Regenerate after changing the generator with
/// `UFILTER_REGEN_FIXTURES=1 cargo test --test fixtures_sync`.
#[test]
fn views_many_fixture_matches_the_generator() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let variants = bookdemo::book_view_variants(25);
    let mut manifest = String::from(
        "# ufilter view catalog: name=viewfile (generated; see tests/fixtures_sync.rs)\n\
         books=fixtures/bookview.xq\n",
    );
    let mut files: Vec<(String, String)> = Vec::new();
    for (name, text) in &variants {
        let rel = format!("fixtures/views_many/{name}.xq");
        manifest.push_str(&format!("{name}={rel}\n"));
        files.push((rel, format!("{}\n", text.trim())));
    }
    if std::env::var_os("UFILTER_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(root.join("fixtures/views_many")).unwrap();
        std::fs::write(root.join("fixtures/views_many.cat"), &manifest).unwrap();
        for (rel, text) in &files {
            std::fs::write(root.join(rel), text).unwrap();
        }
        return;
    }
    assert_eq!(
        fixture("fixtures/views_many.cat"),
        manifest,
        "fixtures/views_many.cat drifted from book_view_variants(25)"
    );
    for (rel, text) in &files {
        assert_eq!(&fixture(rel), text, "{rel} drifted from book_view_variants(25)");
    }
}

#[test]
fn view_and_update_fixtures_match_bookdemo_constants() {
    for (rel, constant) in [
        ("fixtures/bookview.xq", bookdemo::BOOK_VIEW),
        ("fixtures/bookstats.xq", bookdemo::BOOK_STATS_VIEW),
        ("fixtures/u8.xq", bookdemo::U8),
        ("fixtures/u10.xq", bookdemo::U10),
        ("fixtures/u13.xq", bookdemo::U13),
        ("fixtures/u_agg.xq", bookdemo::U_AGG),
    ] {
        assert_eq!(fixture(rel).trim(), constant.trim(), "{rel} drifted from bookdemo");
    }
}
