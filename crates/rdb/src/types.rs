//! Runtime values and column data types.
//!
//! The engine is dynamically typed at the storage layer: every cell holds a
//! [`Value`]. Column declarations carry a [`DataType`] that inserts are
//! validated against (the paper's *domain constraints*, §3.1).

use std::cmp::Ordering;
use std::fmt;

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float (`DOUBLE` in the paper's DDL).
    Double,
    /// UTF-8 string (`VARCHAR2` in the paper's DDL).
    Str,
    /// Calendar date, stored as days; parsed from `YYYY-MM-DD` or a year.
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Null` is a first-class member with SQL semantics: comparisons against
/// `Null` yield "unknown", which predicate evaluation treats as `false`.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Str(String),
    /// Days since an arbitrary epoch; ordering is chronological.
    Date(i64),
    Bool(bool),
}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The [`DataType`] this value inhabits, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this value can be stored in a column of type `ty`.
    ///
    /// Ints are accepted by `Double` and `Date` columns (widening), matching
    /// the loose literals of the paper's examples (`year > 1990`).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Double | DataType::Date)
                | (Value::Double(_), DataType::Double)
                | (Value::Str(_), DataType::Str)
                | (Value::Date(_), DataType::Date)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Coerce into the representation used by a column of type `ty`.
    pub fn coerce(self, ty: DataType) -> Value {
        match (self, ty) {
            (Value::Int(i), DataType::Double) => Value::Double(i as f64),
            (Value::Int(i), DataType::Date) => Value::Date(i),
            (v, _) => v,
        }
    }

    /// Numeric view used by arithmetic and numeric comparison.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// Three-valued SQL comparison. `None` means *unknown* (a `Null` was
    /// involved or the values are incomparable).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Equality under SQL semantics (`Null = x` is unknown → `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Render the value the way the default XML view prints text nodes.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Double(d) => {
                if d.fract() == 0.0 && d.abs() < 1e15 {
                    format!("{d:.2}")
                } else {
                    d.to_string()
                }
            }
            Value::Str(s) => s.clone(),
            Value::Date(d) => d.to_string(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// Parse a text node back into a value of declared type `ty`
    /// (used when an XML update supplies element text for a column).
    pub fn parse_as(text: &str, ty: DataType) -> Option<Value> {
        let t = text.trim();
        if t.is_empty() {
            return Some(Value::Null);
        }
        match ty {
            DataType::Int => t.parse().ok().map(Value::Int),
            DataType::Double => t.parse().ok().map(Value::Double),
            DataType::Str => Some(Value::Str(t.to_string())),
            DataType::Date => t.parse().ok().map(Value::Date),
            DataType::Bool => t.parse().ok().map(Value::Bool),
        }
    }
}

impl PartialEq for Value {
    /// Structural equality: used by storage, indexes and tests.
    /// Unlike [`Value::sql_eq`], `Null == Null` here.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Double(b)) | (Value::Double(b), Value::Int(a)) => {
                *a as f64 == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Ints and integral doubles must hash alike because they compare
            // equal (see PartialEq above).
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            // SQL string literal form; embedded quotes double themselves.
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            other => f.write_str(&other.render()),
        }
    }
}

/// Total ordering for sorting (Null first, then by type tag, then value).
/// Used by ordered indexes; distinct from three-valued SQL comparison.
pub fn total_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Double(_) | Value::Date(_) => 2,
            Value::Str(_) => 3,
        }
    }
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => match (rank(a), rank(b)) {
            (ra, rb) if ra != rb => ra.cmp(&rb),
            _ => a.sql_cmp(b).unwrap_or_else(|| format!("{a}").cmp(&format!("{b}"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.5)), Some(Ordering::Less));
    }

    #[test]
    fn string_compare_is_lexicographic() {
        assert_eq!(Value::str("abc").sql_cmp(&Value::str("abd")), Some(Ordering::Less));
    }

    #[test]
    fn conformance_and_coercion() {
        assert!(Value::Int(5).conforms_to(DataType::Double));
        assert!(!Value::str("x").conforms_to(DataType::Int));
        assert_eq!(Value::Int(5).coerce(DataType::Double), Value::Double(5.0));
        assert!(Value::Null.conforms_to(DataType::Int));
    }

    #[test]
    fn render_round_trip() {
        let v = Value::Double(37.0);
        assert_eq!(v.render(), "37.00");
        assert_eq!(Value::parse_as("37.00", DataType::Double), Some(Value::Double(37.0)));
        assert_eq!(Value::parse_as("  ", DataType::Int), Some(Value::Null));
        assert_eq!(Value::parse_as("1997", DataType::Date), Some(Value::Date(1997)));
    }

    #[test]
    fn int_double_hash_consistency() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Int(3));
        assert!(s.contains(&Value::Double(3.0)));
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        assert_eq!(total_cmp(&Value::Null, &Value::Int(0)), Ordering::Less);
        assert_eq!(total_cmp(&Value::Int(1), &Value::str("a")), Ordering::Less);
    }
}
