//! Undo logging and rollback.
//!
//! Fig. 14's baseline is exactly this machinery: a blindly-translated update
//! executes, the view side effect is detected afterwards, and "the database
//! would have to be recovered for example by rolling back. This would be
//! rather time consuming" (§1). The undo log records physical changes
//! (insert/delete/update with before-images); rollback replays them in
//! reverse. Statement-level atomicity uses the same records: a failed
//! statement undoes its own partial work even outside a transaction.

use crate::storage::{Row, RowId};

/// One physical change, with enough information to invert it.
#[derive(Debug, Clone)]
pub enum Undo {
    /// A row was inserted; undo by deleting it.
    Insert { table: String, rid: RowId },
    /// A row was deleted; undo by restoring the exact image at its slot.
    Delete { table: String, rid: RowId, row: Row },
    /// A row was overwritten; undo by restoring the before-image.
    Update { table: String, rid: RowId, old: Row },
}

/// An append-only log of [`Undo`] records for the active transaction.
#[derive(Debug, Default, Clone)]
pub struct UndoLog {
    records: Vec<Undo>,
}

impl UndoLog {
    pub fn new() -> UndoLog {
        UndoLog::default()
    }

    pub fn push(&mut self, u: Undo) {
        self.records.push(u);
    }

    pub fn extend(&mut self, us: Vec<Undo>) {
        self.records.extend(us);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drain records in reverse (application order for rollback).
    pub fn drain_reverse(&mut self) -> impl Iterator<Item = Undo> + '_ {
        std::mem::take(&mut self.records).into_iter().rev()
    }
}
