//! Scalar expressions: the predicate language shared by SQL `WHERE` clauses,
//! CHECK constraints, view-query predicates, and probe queries.
//!
//! The paper's predicates have the shape `a θ b` with
//! `θ ∈ {=, ≠, <, ≤, >, ≥}` where `b` is a literal (*non-correlation
//! predicate*) or another attribute (*correlation predicate*) — §3.1. The
//! expression type here is a superset: conjunction, disjunction, negation,
//! `IS NULL`, and `IN (subquery)` (needed by the translated updates of
//! §6.2.2, e.g. `U3`).

use std::fmt;

use crate::error::{RdbError, Result};
use crate::types::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A qualified column reference `table.column`.
///
/// Within CHECK constraints the `table` qualifier names the owning relation;
/// in query plans it names the range variable's relation (or alias).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColRef {
    pub table: String,
    pub column: String,
}

impl ColRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> ColRef {
        ColRef { table: table.into(), column: column.into() }
    }

    pub fn matches(&self, table: &str, column: &str) -> bool {
        self.table.eq_ignore_ascii_case(table) && self.column.eq_ignore_ascii_case(column)
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.table.is_empty() {
            f.write_str(&self.column)
        } else {
            write!(f, "{}.{}", self.table, self.column)
        }
    }
}

/// Scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column(ColRef),
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, …)` — subqueries are pre-evaluated into this form
    /// by the executor before row-at-a-time evaluation.
    InSet {
        expr: Box<Expr>,
        set: Vec<Value>,
        negated: bool,
    },
    /// `expr IN (SELECT …)`, as in the translated update `U3` of §6.2.2.
    /// The executor resolves this into [`Expr::InSet`] before evaluation.
    InSubquery {
        expr: Box<Expr>,
        query: Box<crate::sql::ast::Select>,
        negated: bool,
    },
}

impl Expr {
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Expr {
        Expr::Column(ColRef::new(table, column))
    }

    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    pub fn eq(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, l, r)
    }

    pub fn ne(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, l, r)
    }

    pub fn lt(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, l, r)
    }

    pub fn le(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, l, r)
    }

    pub fn gt(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, l, r)
    }

    pub fn ge(l: Expr, r: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, l, r)
    }

    /// Conjunction that flattens nested `And`s and drops trivial `TRUE`s.
    pub fn and(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::And(inner) => out.extend(inner),
                Expr::Literal(Value::Bool(true)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::Literal(Value::Bool(true)),
            1 => out.pop().unwrap(),
            _ => Expr::And(out),
        }
    }

    /// All column references occurring in the expression.
    pub fn columns(&self) -> Vec<&ColRef> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColRef)) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(c) => f(c),
            Expr::Cmp { lhs, rhs, .. } => {
                lhs.visit_columns(f);
                rhs.visit_columns(f);
            }
            Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| e.visit_columns(f)),
            Expr::Not(e) => e.visit_columns(f),
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::InSet { expr, .. } => expr.visit_columns(f),
            // Subquery internals reference their own scope; only the outer
            // operand contributes columns to the enclosing query.
            Expr::InSubquery { expr, .. } => expr.visit_columns(f),
        }
    }

    /// Split a conjunctive expression into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(es) => es.iter().flat_map(|e| e.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// Rewrite every column reference with `f` (used to re-qualify CHECK
    /// constraints onto probe-query range variables).
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> ColRef) -> Expr {
        match self {
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Column(c) => Expr::Column(f(c)),
            Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
                op: *op,
                lhs: Box::new(lhs.map_columns(f)),
                rhs: Box::new(rhs.map_columns(f)),
            },
            Expr::And(es) => Expr::And(es.iter().map(|e| e.map_columns(f)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|e| e.map_columns(f)).collect()),
            Expr::Not(e) => Expr::Not(Box::new(e.map_columns(f))),
            Expr::IsNull { expr, negated } => {
                Expr::IsNull { expr: Box::new(expr.map_columns(f)), negated: *negated }
            }
            Expr::InSet { expr, set, negated } => Expr::InSet {
                expr: Box::new(expr.map_columns(f)),
                set: set.clone(),
                negated: *negated,
            },
            Expr::InSubquery { expr, query, negated } => Expr::InSubquery {
                expr: Box::new(expr.map_columns(f)),
                query: query.clone(),
                negated: *negated,
            },
        }
    }

    /// Evaluate against a row, resolving columns through `resolve`.
    ///
    /// Three-valued logic: comparisons involving NULL evaluate to NULL,
    /// which [`Expr::eval_predicate`] maps to `false`.
    pub fn eval(&self, resolve: &dyn Fn(&ColRef) -> Result<Value>) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column(c) => resolve(c),
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(resolve)?;
                let r = rhs.eval(resolve)?;
                Ok(match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.eval(ord)),
                })
            }
            Expr::And(es) => {
                let mut saw_null = false;
                for e in es {
                    match e.eval(resolve)? {
                        Value::Bool(false) => return Ok(Value::Bool(false)),
                        Value::Bool(true) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(RdbError::Semantic(format!(
                                "AND operand is not boolean: {other}"
                            )))
                        }
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(true) })
            }
            Expr::Or(es) => {
                let mut saw_null = false;
                for e in es {
                    match e.eval(resolve)? {
                        Value::Bool(true) => return Ok(Value::Bool(true)),
                        Value::Bool(false) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(RdbError::Semantic(format!(
                                "OR operand is not boolean: {other}"
                            )))
                        }
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(false) })
            }
            Expr::Not(e) => Ok(match e.eval(resolve)? {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                other => {
                    return Err(RdbError::Semantic(format!("NOT operand is not boolean: {other}")))
                }
            }),
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(resolve)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InSet { expr, set, negated } => {
                let v = expr.eval(resolve)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = set.iter().any(|s| v.sql_eq(s) == Some(true));
                Ok(Value::Bool(found != *negated))
            }
            Expr::InSubquery { .. } => Err(RdbError::Semantic(
                "IN (SELECT …) must be resolved by the executor before evaluation".into(),
            )),
        }
    }

    /// Evaluate as a WHERE predicate: NULL (unknown) counts as `false`.
    pub fn eval_predicate(&self, resolve: &dyn Fn(&ColRef) -> Result<Value>) -> Result<bool> {
        Ok(matches!(self.eval(resolve)?, Value::Bool(true)))
    }

    /// Is this an equality between two column references
    /// (a *correlation predicate*, §3.1)? Returns the pair if so.
    pub fn as_column_equality(&self) -> Option<(&ColRef, &ColRef)> {
        if let Expr::Cmp { op: CmpOp::Eq, lhs, rhs } = self {
            if let (Expr::Column(l), Expr::Column(r)) = (lhs.as_ref(), rhs.as_ref()) {
                return Some((l, r));
            }
        }
        None
    }

    /// Is this a `column θ literal` predicate (a *non-correlation
    /// predicate*)? Returns `(col, op, literal)` normalised so the column is
    /// on the left.
    pub fn as_column_literal(&self) -> Option<(&ColRef, CmpOp, &Value)> {
        if let Expr::Cmp { op, lhs, rhs } = self {
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => return Some((c, *op, v)),
                (Expr::Literal(v), Expr::Column(c)) => return Some((c, op.flip(), v)),
                _ => {}
            }
        }
        None
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Expr::And(es) => {
                let parts: Vec<String> = es.iter().map(|e| format!("({e})")).collect();
                f.write_str(&parts.join(" AND "))
            }
            Expr::Or(es) => {
                let parts: Vec<String> = es.iter().map(|e| format!("({e})")).collect();
                f.write_str(&parts.join(" OR "))
            }
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InSet { expr, set, negated } => {
                let items: Vec<String> = set.iter().map(|v| v.to_string()).collect();
                write!(f, "{expr} {}IN ({})", if *negated { "NOT " } else { "" }, items.join(", "))
            }
            Expr::InSubquery { expr, query, negated } => {
                write!(f, "{expr} {}IN ({query})", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [((&'a str, &'a str), Value)]) -> impl Fn(&ColRef) -> Result<Value> + 'a {
        move |c: &ColRef| {
            pairs.iter().find(|((t, col), _)| c.matches(t, col)).map(|(_, v)| v.clone()).ok_or_else(
                || RdbError::NoSuchColumn { table: c.table.clone(), column: c.column.clone() },
            )
        }
    }

    #[test]
    fn comparison_and_conjunction() {
        let e = Expr::and([
            Expr::lt(Expr::col("book", "price"), Expr::lit(Value::Double(50.0))),
            Expr::gt(Expr::col("book", "year"), Expr::lit(Value::Int(1990))),
        ]);
        let bind =
            [(("book", "price"), Value::Double(37.0)), (("book", "year"), Value::Date(1997))];
        assert!(e.eval_predicate(&env(&bind)).unwrap());
        let bind2 =
            [(("book", "price"), Value::Double(55.0)), (("book", "year"), Value::Date(1997))];
        assert!(!e.eval_predicate(&env(&bind2)).unwrap());
    }

    #[test]
    fn null_makes_predicates_false() {
        let e = Expr::eq(Expr::col("t", "a"), Expr::lit(Value::Int(1)));
        let bind = [(("t", "a"), Value::Null)];
        assert!(!e.eval_predicate(&env(&bind)).unwrap());
        // ... but IS NULL sees it.
        let isnull = Expr::IsNull { expr: Box::new(Expr::col("t", "a")), negated: false };
        assert!(isnull.eval_predicate(&env(&bind)).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let unknown = Expr::eq(Expr::col("t", "a"), Expr::lit(Value::Int(1)));
        let bind = [(("t", "a"), Value::Null)];
        // unknown OR true = true
        let or = Expr::Or(vec![unknown.clone(), Expr::lit(Value::Bool(true))]);
        assert_eq!(or.eval(&env(&bind)).unwrap(), Value::Bool(true));
        // unknown AND false = false
        let and = Expr::And(vec![unknown, Expr::lit(Value::Bool(false))]);
        assert_eq!(and.eval(&env(&bind)).unwrap(), Value::Bool(false));
    }

    #[test]
    fn classify_predicates() {
        let corr = Expr::eq(Expr::col("book", "pubid"), Expr::col("publisher", "pubid"));
        assert!(corr.as_column_equality().is_some());
        assert!(corr.as_column_literal().is_none());

        let noncorr = Expr::lt(Expr::lit(Value::Double(50.0)), Expr::col("book", "price"));
        let (c, op, v) = noncorr.as_column_literal().unwrap();
        assert!(c.matches("book", "price"));
        assert_eq!(op, CmpOp::Gt); // flipped so the column is on the left
        assert_eq!(*v, Value::Double(50.0));
    }

    #[test]
    fn in_set_membership() {
        let e = Expr::InSet {
            expr: Box::new(Expr::col("r", "bookid")),
            set: vec![Value::str("98001"), Value::str("98003")],
            negated: false,
        };
        let bind = [(("r", "bookid"), Value::str("98003"))];
        assert!(e.eval_predicate(&env(&bind)).unwrap());
        let bind = [(("r", "bookid"), Value::str("98002"))];
        assert!(!e.eval_predicate(&env(&bind)).unwrap());
    }

    #[test]
    fn and_flattening() {
        let e = Expr::and([
            Expr::and([Expr::lit(Value::Bool(true))]),
            Expr::eq(Expr::col("t", "a"), Expr::lit(Value::Int(1))),
        ]);
        // single conjunct collapses
        assert!(matches!(e, Expr::Cmp { .. }));
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::And(vec![
            Expr::eq(Expr::col("t", "a"), Expr::lit(Value::Int(1))),
            Expr::And(vec![
                Expr::eq(Expr::col("t", "b"), Expr::lit(Value::Int(2))),
                Expr::eq(Expr::col("t", "c"), Expr::lit(Value::Int(3))),
            ]),
        ]);
        assert_eq!(e.conjuncts().len(), 3);
    }
}
