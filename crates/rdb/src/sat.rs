//! Conjunctive-predicate satisfiability over `column θ literal` atoms.
//!
//! Step 1 of U-Filter (§4, delete check (i)) must decide whether the
//! non-correlation predicates of a user update "overlap" with the check
//! annotations captured in the view ASG: `u5` deletes reviews of books with
//! `price > 50.00` while the view only contains books with `price < 50.00`,
//! so the conjunction `price > 50 ∧ price < 50` is unsatisfiable and the
//! update is invalid.
//!
//! The solver handles, per column: an equality pin, disequalities, and an
//! interval; columns are independent, so a conjunction is satisfiable iff
//! every per-column domain is non-empty. Atoms outside this fragment
//! (disjunctions, correlations) are treated conservatively as satisfiable.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::expr::{CmpOp, ColRef, Expr};
use crate::types::{DataType, Value};

/// One endpoint of an interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Bound {
    pub value: Value,
    pub inclusive: bool,
}

/// The set of values a single column may take under a conjunction of atoms.
#[derive(Debug, Clone, Default)]
pub struct Domain {
    pub eq: Option<Value>,
    pub ne: Vec<Value>,
    pub lower: Option<Bound>,
    pub upper: Option<Bound>,
    contradiction: bool,
}

impl Domain {
    /// Reassemble a domain from previously extracted parts. Persistence
    /// support: a domain round-tripped through an external encoding must
    /// preserve the (otherwise private) contradiction flag, not re-derive
    /// it — `constrain` records contradictions incrementally and the parts
    /// alone cannot distinguish `price = 1 AND price = 2` from an
    /// untightened pin.
    pub fn from_parts(
        eq: Option<Value>,
        ne: Vec<Value>,
        lower: Option<Bound>,
        upper: Option<Bound>,
        contradiction: bool,
    ) -> Domain {
        Domain { eq, ne, lower, upper, contradiction }
    }

    /// Whether a contradiction has been recorded (`price = 1 AND price = 2`,
    /// or any comparison against a NULL literal).
    pub fn is_contradiction(&self) -> bool {
        self.contradiction
    }

    /// Add one atom `col op v` to the domain.
    pub fn constrain(&mut self, op: CmpOp, v: &Value) {
        if self.contradiction || v.is_null() {
            // Predicates on NULL literals never hold; treat as contradiction.
            if v.is_null() {
                self.contradiction = true;
            }
            return;
        }
        match op {
            CmpOp::Eq => match &self.eq {
                Some(prev) if prev.sql_eq(v) != Some(true) => self.contradiction = true,
                _ => self.eq = Some(v.clone()),
            },
            CmpOp::Ne => self.ne.push(v.clone()),
            CmpOp::Lt => self.tighten_upper(Bound { value: v.clone(), inclusive: false }),
            CmpOp::Le => self.tighten_upper(Bound { value: v.clone(), inclusive: true }),
            CmpOp::Gt => self.tighten_lower(Bound { value: v.clone(), inclusive: false }),
            CmpOp::Ge => self.tighten_lower(Bound { value: v.clone(), inclusive: true }),
        }
    }

    fn tighten_lower(&mut self, b: Bound) {
        let replace = match &self.lower {
            None => true,
            Some(cur) => match b.value.sql_cmp(&cur.value) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => !b.inclusive && cur.inclusive,
                _ => false,
            },
        };
        if replace {
            self.lower = Some(b);
        }
    }

    fn tighten_upper(&mut self, b: Bound) {
        let replace = match &self.upper {
            None => true,
            Some(cur) => match b.value.sql_cmp(&cur.value) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => !b.inclusive && cur.inclusive,
                _ => false,
            },
        };
        if replace {
            self.upper = Some(b);
        }
    }

    /// Does `v` satisfy every constraint collected so far?
    pub fn contains(&self, v: &Value) -> bool {
        if self.contradiction || v.is_null() {
            return false;
        }
        if let Some(eq) = &self.eq {
            if eq.sql_eq(v) != Some(true) {
                return false;
            }
        }
        if self.ne.iter().any(|n| n.sql_eq(v) == Some(true)) {
            return false;
        }
        if let Some(lo) = &self.lower {
            match v.sql_cmp(&lo.value) {
                Some(Ordering::Greater) => {}
                Some(Ordering::Equal) if lo.inclusive => {}
                _ => return false,
            }
        }
        if let Some(hi) = &self.upper {
            match v.sql_cmp(&hi.value) {
                Some(Ordering::Less) => {}
                Some(Ordering::Equal) if hi.inclusive => {}
                _ => return false,
            }
        }
        true
    }

    /// Is the domain non-empty?
    ///
    /// `hint` sharpens the test for integral types: `x > 1 ∧ x < 2` is empty
    /// over `Int`/`Date` but not over `Double`.
    pub fn satisfiable(&self, hint: Option<DataType>) -> bool {
        if self.contradiction {
            return false;
        }
        if let Some(eq) = &self.eq {
            return self.contains(eq);
        }
        if let (Some(lo), Some(hi)) = (&self.lower, &self.upper) {
            match lo.value.sql_cmp(&hi.value) {
                None => return true, // incomparable types: be conservative
                Some(Ordering::Greater) => return false,
                Some(Ordering::Equal) => {
                    if !(lo.inclusive && hi.inclusive) {
                        return false;
                    }
                    // Pinned to one point; check disequalities.
                    return self.contains(&lo.value);
                }
                Some(Ordering::Less) => {
                    if matches!(hint, Some(DataType::Int | DataType::Date)) {
                        if let (Some(a), Some(b)) = (int_of(&lo.value), int_of(&hi.value)) {
                            let min = if lo.inclusive { a } else { a + 1 };
                            let max = if hi.inclusive { b } else { b - 1 };
                            if min > max {
                                return false;
                            }
                            // A finite integer interval can be exhausted by ≠.
                            let width = (max - min + 1) as usize;
                            if width <= self.ne.len() + 1 {
                                return (min..=max).any(|i| self.contains(&Value::Int(i)));
                            }
                        }
                    }
                }
            }
        }
        // Open or wide interval: finitely many ≠ cannot exhaust it.
        true
    }
}

impl Domain {
    /// Exhibit a value satisfying every constraint, if one is easy to find.
    ///
    /// Used by the translation engine to fill columns the view does not
    /// project but its predicates range over: the paper's own translated
    /// insert `U2` invents `year = 1994` to satisfy `year > 1990`.
    pub fn witness(&self, hint: Option<DataType>) -> Option<Value> {
        if self.contradiction {
            return None;
        }
        let mut candidates: Vec<Value> = Vec::new();
        if let Some(eq) = &self.eq {
            candidates.push(eq.clone());
        }
        let integral = matches!(hint, Some(DataType::Int | DataType::Date));
        for b in [&self.lower, &self.upper].into_iter().flatten() {
            candidates.push(b.value.clone());
            if let Some(i) = int_of(&b.value) {
                candidates.push(if integral {
                    Value::Int(i + 1)
                } else {
                    Value::Double(i as f64 + 1.0)
                });
                candidates.push(if integral {
                    Value::Int(i - 1)
                } else {
                    Value::Double(i as f64 - 1.0)
                });
            }
            if let Value::Double(d) = &b.value {
                candidates.push(Value::Double(d + 1.0));
                candidates.push(Value::Double(d - 1.0));
            }
            if let Value::Str(s) = &b.value {
                candidates.push(Value::Str(format!("{s}a")));
            }
        }
        // Wholly unconstrained-but-for-≠ domains: try small defaults.
        candidates.push(Value::Int(1));
        candidates.push(Value::Double(1.0));
        candidates.push(Value::str("a"));
        let mut typed: Vec<Value> = Vec::new();
        for c in candidates {
            let c = match hint {
                Some(ty) if c.conforms_to(ty) => c.coerce(ty),
                Some(_) => continue,
                None => c,
            };
            typed.push(c);
        }
        typed.into_iter().find(|c| self.contains(c))
    }
}

fn int_of(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) | Value::Date(i) => Some(*i),
        Value::Double(d) if d.fract() == 0.0 => Some(*d as i64),
        _ => None,
    }
}

/// A conjunction of atoms grouped per column.
#[derive(Debug, Clone, Default)]
pub struct Conjunction {
    domains: HashMap<(String, String), Domain>,
    /// Type hints per column, fed by the caller from the schema.
    hints: HashMap<(String, String), DataType>,
}

impl Conjunction {
    pub fn new() -> Conjunction {
        Conjunction::default()
    }

    fn key(c: &ColRef) -> (String, String) {
        (c.table.to_ascii_lowercase(), c.column.to_ascii_lowercase())
    }

    pub fn hint(&mut self, col: &ColRef, ty: DataType) {
        self.hints.insert(Self::key(col), ty);
    }

    pub fn add_atom(&mut self, col: &ColRef, op: CmpOp, v: &Value) {
        self.domains.entry(Self::key(col)).or_default().constrain(op, v);
    }

    /// Fold every recognisable `column θ literal` conjunct of `e` into the
    /// conjunction. Unrecognised conjuncts are skipped (conservative).
    pub fn add_expr(&mut self, e: &Expr) {
        for c in e.conjuncts() {
            if let Some((col, op, v)) = c.as_column_literal() {
                self.add_atom(col, op, v);
            }
        }
    }

    pub fn domain(&self, col: &ColRef) -> Option<&Domain> {
        self.domains.get(&Self::key(col))
    }

    /// Is the whole conjunction satisfiable?
    pub fn satisfiable(&self) -> bool {
        self.domains.iter().all(|(k, d)| d.satisfiable(self.hints.get(k).copied()))
    }
}

/// Convenience: are `a ∧ b` jointly satisfiable over the `col θ lit` fragment?
pub fn overlap(a: &Expr, b: &Expr) -> bool {
    let mut c = Conjunction::new();
    c.add_expr(a);
    c.add_expr(b);
    c.satisfiable()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn price() -> ColRef {
        ColRef::new("book", "price")
    }

    #[test]
    fn u5_style_contradiction() {
        // view: price < 50 AND price > 0 ; update: price > 50  → empty
        let view = Expr::and([
            Expr::lt(Expr::col("book", "price"), Expr::lit(Value::Double(50.0))),
            Expr::gt(Expr::col("book", "price"), Expr::lit(Value::Double(0.0))),
        ]);
        let upd = Expr::gt(Expr::col("book", "price"), Expr::lit(Value::Double(50.0)));
        assert!(!overlap(&view, &upd));
    }

    #[test]
    fn u8_style_overlap() {
        // view: price < 50 ; update: price < 40 → satisfiable
        let view = Expr::lt(Expr::col("book", "price"), Expr::lit(Value::Double(50.0)));
        let upd = Expr::lt(Expr::col("book", "price"), Expr::lit(Value::Double(40.0)));
        assert!(overlap(&view, &upd));
    }

    #[test]
    fn equality_pin_respects_range() {
        let mut c = Conjunction::new();
        c.add_atom(&price(), CmpOp::Lt, &Value::Double(50.0));
        c.add_atom(&price(), CmpOp::Eq, &Value::Double(48.0));
        assert!(c.satisfiable());
        c.add_atom(&price(), CmpOp::Eq, &Value::Double(52.0));
        assert!(!c.satisfiable());
    }

    #[test]
    fn boundary_exclusivity() {
        let mut c = Conjunction::new();
        c.add_atom(&price(), CmpOp::Ge, &Value::Double(50.0));
        c.add_atom(&price(), CmpOp::Le, &Value::Double(50.0));
        assert!(c.satisfiable()); // pinned to exactly 50
        c.add_atom(&price(), CmpOp::Ne, &Value::Double(50.0));
        assert!(!c.satisfiable());
    }

    #[test]
    fn integral_gap_detection() {
        let year = ColRef::new("book", "year");
        let mut c = Conjunction::new();
        c.hint(&year, DataType::Date);
        c.add_atom(&year, CmpOp::Gt, &Value::Int(1990));
        c.add_atom(&year, CmpOp::Lt, &Value::Int(1991));
        assert!(!c.satisfiable());
        // Over doubles the same bounds are satisfiable.
        let mut d = Conjunction::new();
        d.add_atom(&price(), CmpOp::Gt, &Value::Double(1990.0));
        d.add_atom(&price(), CmpOp::Lt, &Value::Double(1991.0));
        assert!(d.satisfiable());
    }

    #[test]
    fn string_ranges() {
        let t = ColRef::new("book", "title");
        let mut c = Conjunction::new();
        c.add_atom(&t, CmpOp::Eq, &Value::str("Data on the Web"));
        c.add_atom(&t, CmpOp::Ne, &Value::str("Data on the Web"));
        assert!(!c.satisfiable());
    }

    #[test]
    fn independent_columns() {
        let mut c = Conjunction::new();
        c.add_atom(&price(), CmpOp::Lt, &Value::Double(50.0));
        c.add_atom(&ColRef::new("book", "year"), CmpOp::Gt, &Value::Int(1990));
        assert!(c.satisfiable());
    }

    #[test]
    fn contains_checks_point_membership() {
        let mut d = Domain::default();
        d.constrain(CmpOp::Gt, &Value::Double(0.0));
        d.constrain(CmpOp::Lt, &Value::Double(50.0));
        assert!(d.contains(&Value::Double(37.0)));
        assert!(!d.contains(&Value::Double(0.0)));
        assert!(!d.contains(&Value::Double(50.0)));
        assert!(!d.contains(&Value::Null));
    }
}
