//! Secondary indexes: hash (point lookups) and ordered (range scans).
//!
//! §7.2 attributes the hybrid strategy's win on `Vbush` to Oracle's indices
//! over primary and foreign keys, which the translated updates' join
//! conditions exploit, while the outside strategy joins over a materialized
//! probe result *without* indexes. The engine therefore maintains indexes on
//! primary keys, UNIQUE columns, and foreign-key columns — and deliberately
//! builds none on materialized temp tables.

use std::collections::{BTreeMap, HashMap};

use crate::storage::RowId;
use crate::types::{total_cmp, Value};

/// Composite key as stored in an index.
pub type IndexKey = Vec<Value>;

/// Kind of index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    Hash,
    Ordered,
}

/// A secondary index over one or more columns of a table.
#[derive(Debug, Clone)]
pub struct Index {
    pub name: String,
    /// Column positions within the owning table's row layout.
    pub columns: Vec<usize>,
    pub unique: bool,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Hash(HashMap<IndexKey, Vec<RowId>>),
    Ordered(BTreeMap<OrdKey, Vec<RowId>>),
}

/// BTreeMap key wrapper imposing the engine's total order on values.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OrdKey(IndexKey);

impl PartialOrd for OrdKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let mut it_a = self.0.iter();
        let mut it_b = other.0.iter();
        loop {
            match (it_a.next(), it_b.next()) {
                (None, None) => return std::cmp::Ordering::Equal,
                (None, Some(_)) => return std::cmp::Ordering::Less,
                (Some(_), None) => return std::cmp::Ordering::Greater,
                (Some(a), Some(b)) => match total_cmp(a, b) {
                    std::cmp::Ordering::Equal => continue,
                    non_eq => return non_eq,
                },
            }
        }
    }
}

impl Index {
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Index {
        let repr = match kind {
            IndexKind::Hash => Repr::Hash(HashMap::new()),
            IndexKind::Ordered => Repr::Ordered(BTreeMap::new()),
        };
        Index { name: name.into(), columns, unique, repr }
    }

    pub fn kind(&self) -> IndexKind {
        match self.repr {
            Repr::Hash(_) => IndexKind::Hash,
            Repr::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        self.columns.iter().map(|&i| row[i].clone()).collect()
    }

    /// Keys containing NULL are not indexed for uniqueness purposes
    /// (SQL semantics: NULLs never collide).
    fn is_null_key(key: &[Value]) -> bool {
        key.iter().any(Value::is_null)
    }

    /// Insert; returns `false` if a unique conflict exists (entry not added).
    pub fn insert(&mut self, key: IndexKey, rid: RowId) -> bool {
        if self.unique && !Self::is_null_key(&key) && !self.lookup(&key).is_empty() {
            return false;
        }
        match &mut self.repr {
            Repr::Hash(m) => m.entry(key).or_default().push(rid),
            Repr::Ordered(m) => m.entry(OrdKey(key)).or_default().push(rid),
        }
        true
    }

    pub fn remove(&mut self, key: &IndexKey, rid: RowId) {
        match &mut self.repr {
            Repr::Hash(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|r| *r != rid);
                    if v.is_empty() {
                        m.remove(key);
                    }
                }
            }
            Repr::Ordered(m) => {
                let k = OrdKey(key.clone());
                if let Some(v) = m.get_mut(&k) {
                    v.retain(|r| *r != rid);
                    if v.is_empty() {
                        m.remove(&k);
                    }
                }
            }
        }
    }

    /// RowIds matching an exact key.
    pub fn lookup(&self, key: &IndexKey) -> Vec<RowId> {
        match &self.repr {
            Repr::Hash(m) => m.get(key).cloned().unwrap_or_default(),
            Repr::Ordered(m) => m.get(&OrdKey(key.clone())).cloned().unwrap_or_default(),
        }
    }

    /// Would inserting `key` violate uniqueness?
    pub fn conflicts(&self, key: &IndexKey) -> bool {
        self.unique && !Self::is_null_key(key) && !self.lookup(key).is_empty()
    }

    /// Number of distinct keys (cardinality estimate for the planner).
    pub fn distinct_keys(&self) -> usize {
        match &self.repr {
            Repr::Hash(m) => m.len(),
            Repr::Ordered(m) => m.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> IndexKey {
        vec![Value::str(s)]
    }

    #[test]
    fn hash_point_lookup() {
        let mut ix = Index::new("pk", vec![0], true, IndexKind::Hash);
        assert!(ix.insert(k("a"), RowId(0)));
        assert!(ix.insert(k("b"), RowId(1)));
        assert_eq!(ix.lookup(&k("a")), vec![RowId(0)]);
        assert_eq!(ix.lookup(&k("z")), Vec::<RowId>::new());
    }

    #[test]
    fn unique_conflict_detected() {
        let mut ix = Index::new("pk", vec![0], true, IndexKind::Hash);
        assert!(ix.insert(k("a"), RowId(0)));
        assert!(ix.conflicts(&k("a")));
        assert!(!ix.insert(k("a"), RowId(1)));
        assert_eq!(ix.lookup(&k("a")), vec![RowId(0)]);
    }

    #[test]
    fn null_keys_never_conflict() {
        let mut ix = Index::new("u", vec![0], true, IndexKind::Hash);
        assert!(ix.insert(vec![Value::Null], RowId(0)));
        assert!(ix.insert(vec![Value::Null], RowId(1)));
        assert!(!ix.conflicts(&vec![Value::Null]));
    }

    #[test]
    fn non_unique_allows_duplicates() {
        let mut ix = Index::new("fk", vec![0], false, IndexKind::Hash);
        assert!(ix.insert(k("a"), RowId(0)));
        assert!(ix.insert(k("a"), RowId(1)));
        let mut got = ix.lookup(&k("a"));
        got.sort();
        assert_eq!(got, vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn remove_clears_entry() {
        let mut ix = Index::new("fk", vec![0], false, IndexKind::Hash);
        ix.insert(k("a"), RowId(0));
        ix.insert(k("a"), RowId(1));
        ix.remove(&k("a"), RowId(0));
        assert_eq!(ix.lookup(&k("a")), vec![RowId(1)]);
        ix.remove(&k("a"), RowId(1));
        assert_eq!(ix.distinct_keys(), 0);
    }

    #[test]
    fn ordered_index_total_order() {
        let mut ix = Index::new("ord", vec![0], false, IndexKind::Ordered);
        ix.insert(vec![Value::Int(5)], RowId(0));
        ix.insert(vec![Value::Int(3)], RowId(1));
        ix.insert(vec![Value::Int(3)], RowId(2));
        assert_eq!(ix.lookup(&vec![Value::Int(3)]).len(), 2);
        assert_eq!(ix.kind(), IndexKind::Ordered);
    }

    #[test]
    fn composite_keys() {
        let mut ix = Index::new("pk", vec![0, 1], true, IndexKind::Hash);
        assert!(ix.insert(vec![Value::str("98001"), Value::str("001")], RowId(0)));
        assert!(ix.insert(vec![Value::str("98001"), Value::str("002")], RowId(1)));
        assert!(ix.conflicts(&vec![Value::str("98001"), Value::str("001")]));
    }
}
