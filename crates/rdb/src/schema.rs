//! Relational schema: tables, columns, and the constraint classes of §3.1.
//!
//! The paper divides relational constraints into *local* (affect one tuple of
//! one relation: domain, NOT NULL, CHECK) and *global* (span relations:
//! foreign keys). Both classes are declared here; enforcement lives in
//! the DML layer of `crate::db`, and the ASG builders read this catalog to annotate leaf
//! nodes and derive the base ASG.

use crate::expr::Expr;
use crate::types::DataType;

/// What happens to referencing rows when a referenced row is deleted.
///
/// §5.1.2 fixes *delete cascade* as the pre-selected policy for base-ASG
/// closures but notes other policies only change the closure definition;
/// §7.3 observes the protein-sequence domain prefers `SET NULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeletePolicy {
    #[default]
    Cascade,
    SetNull,
    Restrict,
}

/// A column declaration.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub not_null: bool,
    /// Single-column UNIQUE (the paper marks `publisher.pubname UNIQUE NOT NULL`).
    pub unique: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column { name: name.into(), ty, not_null: false, unique: false }
    }

    pub fn not_null(mut self) -> Column {
        self.not_null = true;
        self
    }

    pub fn unique(mut self) -> Column {
        self.unique = true;
        self
    }
}

/// A named CHECK constraint over one relation (a *local* constraint).
#[derive(Debug, Clone)]
pub struct CheckConstraint {
    pub name: String,
    /// Boolean expression over the columns of the owning table.
    pub expr: Expr,
}

/// A foreign key from `table.columns` to `ref_table.ref_columns`
/// (a *global* constraint).
#[derive(Debug, Clone)]
pub struct ForeignKey {
    pub name: String,
    pub columns: Vec<String>,
    pub ref_table: String,
    pub ref_columns: Vec<String>,
    pub on_delete: DeletePolicy,
}

/// Schema of one relation.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Primary key column names (possibly composite, e.g. `review(bookid, reviewid)`).
    pub primary_key: Vec<String>,
    pub checks: Vec<CheckConstraint>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            checks: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    pub fn column(mut self, col: Column) -> TableSchema {
        self.columns.push(col);
        self
    }

    pub fn primary_key<S: Into<String>>(
        mut self,
        cols: impl IntoIterator<Item = S>,
    ) -> TableSchema {
        self.primary_key = cols.into_iter().map(Into::into).collect();
        self
    }

    pub fn check(mut self, name: impl Into<String>, expr: Expr) -> TableSchema {
        self.checks.push(CheckConstraint { name: name.into(), expr });
        self
    }

    pub fn foreign_key(
        mut self,
        name: impl Into<String>,
        columns: Vec<&str>,
        ref_table: &str,
        ref_columns: Vec<&str>,
        on_delete: DeletePolicy,
    ) -> TableSchema {
        self.foreign_keys.push(ForeignKey {
            name: name.into(),
            columns: columns.into_iter().map(String::from).collect(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_columns.into_iter().map(String::from).collect(),
            on_delete,
        });
        self
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column_named(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Is `col` the entire primary key or declared single-column UNIQUE?
    ///
    /// This is the *unique identifier* test that Rule 1's proper-Join
    /// definition relies on (§5.1.1).
    pub fn is_unique_identifier(&self, col: &str) -> bool {
        (self.primary_key.len() == 1 && self.primary_key[0].eq_ignore_ascii_case(col))
            || self.column_named(col).is_some_and(|c| c.unique)
    }

    /// Is `col` part of the primary key?
    pub fn in_primary_key(&self, col: &str) -> bool {
        self.primary_key.iter().any(|c| c.eq_ignore_ascii_case(col))
    }

    /// NOT NULL in the ASG sense: declared NOT NULL or part of the key.
    /// (The paper marks `publisher.pubid` NOT NULL "since it is the key".)
    pub fn is_not_null(&self, col: &str) -> bool {
        self.column_named(col).is_some_and(|c| c.not_null) || self.in_primary_key(col)
    }
}

/// Schema of the whole database `{(R1..Rn), F}` (§2).
#[derive(Debug, Clone, Default)]
pub struct DatabaseSchema {
    pub tables: Vec<TableSchema>,
}

impl DatabaseSchema {
    pub fn new() -> DatabaseSchema {
        DatabaseSchema::default()
    }

    pub fn add(&mut self, table: TableSchema) {
        self.tables.push(table);
    }

    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// All foreign keys, paired with the owning table name.
    pub fn foreign_keys(&self) -> impl Iterator<Item = (&str, &ForeignKey)> {
        self.tables.iter().flat_map(|t| t.foreign_keys.iter().map(move |fk| (t.name.as_str(), fk)))
    }

    /// Relations that reference `target` directly through a foreign key.
    pub fn direct_referrers(&self, target: &str) -> Vec<&str> {
        self.foreign_keys()
            .filter(|(_, fk)| fk.ref_table.eq_ignore_ascii_case(target))
            .map(|(owner, _)| owner)
            .collect()
    }

    /// Relations whose rows are *removed* when a `target` row is deleted:
    /// referrers through CASCADE foreign keys only (SET NULL and RESTRICT
    /// leave referencing rows in place).
    pub fn cascading_referrers(&self, target: &str) -> Vec<&str> {
        self.foreign_keys()
            .filter(|(_, fk)| {
                fk.ref_table.eq_ignore_ascii_case(target) && fk.on_delete == DeletePolicy::Cascade
            })
            .map(|(owner, _)| owner)
            .collect()
    }

    /// `extend(R)` of §5.1.1: `{R} ∪ {S | S →FK+ R}` — every relation whose
    /// content a deletion of `R` rows can remove, restricted to `universe`
    /// when provided (the paper restricts to `rel(DEF_V)`).
    ///
    /// Policy-aware per the paper's footnote that the update policy adjusts
    /// the closure definitions: propagation follows CASCADE foreign keys;
    /// under SET NULL / RESTRICT the referencing rows survive a parent
    /// delete, so they do not extend the deletion's footprint (§7.3's PSD
    /// domain relies on this).
    pub fn extend(&self, target: &str, universe: Option<&[String]>) -> Vec<String> {
        let in_universe =
            |name: &str| universe.is_none_or(|u| u.iter().any(|x| x.eq_ignore_ascii_case(name)));
        let mut out: Vec<String> = Vec::new();
        if in_universe(target) {
            out.push(target.to_string());
        }
        let mut frontier = vec![target.to_string()];
        while let Some(cur) = frontier.pop() {
            for r in self.cascading_referrers(&cur) {
                if !out.iter().any(|x| x.eq_ignore_ascii_case(r)) && in_universe(r) {
                    out.push(r.to_string());
                    frontier.push(r.to_string());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::types::Value;

    /// The book database of Fig. 1.
    pub fn book_schema() -> DatabaseSchema {
        let mut db = DatabaseSchema::new();
        db.add(
            TableSchema::new("publisher")
                .column(Column::new("pubid", DataType::Str))
                .column(Column::new("pubname", DataType::Str).not_null().unique())
                .primary_key(["pubid"]),
        );
        db.add(
            TableSchema::new("book")
                .column(Column::new("bookid", DataType::Str))
                .column(Column::new("title", DataType::Str).not_null())
                .column(Column::new("pubid", DataType::Str))
                .column(Column::new("price", DataType::Double))
                .column(Column::new("year", DataType::Date))
                .primary_key(["bookid"])
                .check(
                    "price_positive",
                    Expr::gt(Expr::col("book", "price"), Expr::lit(Value::Double(0.0))),
                )
                .foreign_key(
                    "BookFK",
                    vec!["pubid"],
                    "publisher",
                    vec!["pubid"],
                    DeletePolicy::Cascade,
                ),
        );
        db.add(
            TableSchema::new("review")
                .column(Column::new("bookid", DataType::Str))
                .column(Column::new("reviewid", DataType::Str))
                .column(Column::new("comment", DataType::Str))
                .column(Column::new("reviewer", DataType::Str))
                .primary_key(["bookid", "reviewid"])
                .foreign_key(
                    "ReviewFK",
                    vec!["bookid"],
                    "book",
                    vec!["bookid"],
                    DeletePolicy::Cascade,
                ),
        );
        db
    }

    #[test]
    fn unique_identifier_detection() {
        let db = book_schema();
        let publisher = db.table("publisher").unwrap();
        assert!(publisher.is_unique_identifier("pubid"));
        assert!(publisher.is_unique_identifier("pubname")); // declared UNIQUE
        let review = db.table("review").unwrap();
        // Composite key members are not single-column unique identifiers.
        assert!(!review.is_unique_identifier("bookid"));
        assert!(review.in_primary_key("bookid"));
    }

    #[test]
    fn key_columns_are_not_null() {
        let db = book_schema();
        assert!(db.table("publisher").unwrap().is_not_null("pubid"));
        assert!(db.table("book").unwrap().is_not_null("title"));
        assert!(!db.table("book").unwrap().is_not_null("price"));
    }

    #[test]
    fn extend_follows_fk_chains_transitively() {
        let db = book_schema();
        let mut ext = db.extend("publisher", None);
        ext.sort();
        assert_eq!(ext, vec!["book", "publisher", "review"]);
        assert_eq!(db.extend("review", None), vec!["review"]);
        let mut ext_book = db.extend("book", None);
        ext_book.sort();
        assert_eq!(ext_book, vec!["book", "review"]);
    }

    #[test]
    fn extend_respects_universe() {
        let db = book_schema();
        let uni = vec!["publisher".to_string(), "book".to_string()];
        let mut ext = db.extend("publisher", Some(&uni));
        ext.sort();
        assert_eq!(ext, vec!["book", "publisher"]);
    }

    #[test]
    fn case_insensitive_lookup() {
        let db = book_schema();
        assert!(db.table("PUBLISHER").is_some());
        assert!(db.table("book").unwrap().column_index("TITLE").is_some());
    }
}
