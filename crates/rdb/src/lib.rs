//! # ufilter-rdb — the relational substrate of the U-Filter reproduction
//!
//! An in-memory relational engine built from scratch, covering exactly what
//! the paper's evaluation exercises on Oracle 10g:
//!
//! * schemas with primary keys, UNIQUE, NOT NULL, CHECK and foreign keys
//!   with per-constraint delete policies (CASCADE / SET NULL / RESTRICT);
//! * a SQL subset (SELECT with comma joins, explicit `[LEFT] JOIN … ON`,
//!   `IN (SELECT …)`; INSERT / DELETE / UPDATE; `CREATE TABLE/VIEW`);
//! * a planner choosing index nested-loop joins over key/FK indexes, hash
//!   joins, or nested loops — the index-vs-no-index gap drives Fig. 16;
//! * undo-log transactions with rollback — the cost baseline of Fig. 14;
//! * updatable LEFT JOIN views for the *internal* strategy of §6.2.1;
//! * probe-result materialization (`TAB_…` tables, §6.1) without indexes.
//!
//! ```
//! use ufilter_rdb::{Db, Value};
//!
//! let mut db = Db::new();
//! db.execute_sql(
//!     "CREATE TABLE publisher(pubid VARCHAR2(10), pubname VARCHAR2(100) UNIQUE NOT NULL, \
//!      CONSTRAINTS PubPK PRIMARYKEY (pubid))",
//! ).unwrap();
//! db.execute_sql("INSERT INTO publisher VALUES ('A01', 'McGraw-Hill Inc.')").unwrap();
//! let rs = db.query_sql("SELECT pubname FROM publisher WHERE pubid = 'A01'").unwrap();
//! assert_eq!(rs.rows[0][0], Value::str("McGraw-Hill Inc."));
//! ```

pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod sat;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod txn;
pub mod types;
pub mod view;

pub use db::{Db, DbSnapshot, ExecOutcome, ExecStats, PlannerConfig, TableData};
pub use error::{RdbError, Result, Warning};
pub use exec::ResultSet;
pub use expr::{CmpOp, ColRef, Expr};
pub use schema::{CheckConstraint, Column, DatabaseSchema, DeletePolicy, ForeignKey, TableSchema};
pub use sql::ast::{
    CreateView, Delete, FromItem, Insert, JoinKind, Select, SelectItem, Stmt, TableRef, Update,
};
pub use sql::parser::Parser;
pub use storage::{Row, RowId};
pub use types::{DataType, Value};
