//! Hand-rolled SQL lexer.

use crate::error::{RdbError, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Bare identifier or keyword (kept verbatim; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// `'…'` or `"…"` string literal.
    Str(String),
    Int(i64),
    Float(f64),
    /// Punctuation / operator.
    Sym(&'static str),
    Eof,
}

impl Tok {
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

pub fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(RdbError::Parse("unterminated string".into())),
                        Some(&ch) if ch == quote => {
                            // doubled quote escapes itself
                            if bytes.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    if bytes[i] == '.' {
                        // `98001.` followed by non-digit would be odd SQL; accept digits only.
                        if !bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| RdbError::Parse(format!("bad number {text}: {e}")))?;
                    out.push(Tok::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| RdbError::Parse(format!("bad number {text}: {e}")))?;
                    out.push(Tok::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Sym("<>"));
                i += 2;
            }
            '=' => {
                out.push(Tok::Sym("="));
                i += 1;
            }
            '(' | ')' | ',' | '.' | '*' | ';' => {
                let sym = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    _ => ";",
                };
                out.push(Tok::Sym(sym));
                i += 1;
            }
            '-' => {
                out.push(Tok::Sym("-"));
                i += 1;
            }
            other => {
                return Err(RdbError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_select() {
        let toks = lex("SELECT bookid FROM book WHERE price < 50.00").unwrap();
        assert!(matches!(&toks[0], Tok::Ident(s) if s == "SELECT"));
        assert!(toks.iter().any(|t| matches!(t, Tok::Float(f) if *f == 50.0)));
        assert_eq!(toks.last(), Some(&Tok::Eof));
    }

    #[test]
    fn lex_strings_with_both_quotes() {
        let toks = lex(r#"WHERE title = "Data on the Web" AND x = 'don''t'"#).unwrap();
        assert!(toks.iter().any(|t| matches!(t, Tok::Str(s) if s == "Data on the Web")));
        assert!(toks.iter().any(|t| matches!(t, Tok::Str(s) if s == "don't")));
    }

    #[test]
    fn lex_operators() {
        let toks = lex("a <> b != c <= d >= e").unwrap();
        let syms: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<>", "<>", "<=", ">="]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT a -- trailing comment\nFROM t").unwrap();
        assert_eq!(toks.len(), 5); // SELECT a FROM t EOF
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }
}
