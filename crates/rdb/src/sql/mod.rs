pub mod ast;
pub mod lexer;
pub mod parser;
