//! Recursive-descent SQL parser for the subset in [`super::ast`].

use crate::error::{RdbError, Result};
use crate::expr::{CmpOp, Expr};
use crate::schema::{Column, DeletePolicy, TableSchema};
use crate::sql::ast::*;
use crate::sql::lexer::{lex, Tok};
use crate::types::{DataType, Value};

pub struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    pub fn new(input: &str) -> Result<Parser> {
        Ok(Parser { toks: lex(input)?, pos: 0 })
    }

    /// Parse a full statement (trailing `;` allowed).
    pub fn parse_stmt(input: &str) -> Result<Stmt> {
        let mut p = Parser::new(input)?;
        let stmt = p.stmt()?;
        p.eat_sym(";");
        p.expect_eof()?;
        Ok(stmt)
    }

    /// Parse a `SELECT` on its own.
    pub fn parse_select(input: &str) -> Result<Select> {
        match Parser::parse_stmt(input)? {
            Stmt::Select(s) => Ok(s),
            other => Err(RdbError::Parse(format!("expected SELECT, got {other}"))),
        }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(RdbError::Parse(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(RdbError::Parse(format!("expected '{sym}', found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(RdbError::Parse(format!("trailing tokens from {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(RdbError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if self.eat_kw("EXPLAIN") {
            Ok(Stmt::Explain(self.select()?))
        } else if self.peek().is_kw("SELECT") {
            Ok(Stmt::Select(self.select()?))
        } else if self.eat_kw("INSERT") {
            self.insert()
        } else if self.eat_kw("DELETE") {
            self.delete()
        } else if self.eat_kw("UPDATE") {
            self.update()
        } else if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                self.create_table()
            } else if self.eat_kw("VIEW") {
                self.create_view()
            } else {
                Err(RdbError::Parse("expected TABLE or VIEW after CREATE".into()))
            }
        } else if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            Ok(Stmt::DropTable(self.ident()?))
        } else if self.eat_kw("BEGIN") {
            Ok(Stmt::Begin)
        } else if self.eat_kw("COMMIT") {
            Ok(Stmt::Commit)
        } else if self.eat_kw("ROLLBACK") {
            Ok(Stmt::Rollback)
        } else {
            Err(RdbError::Parse(format!("unexpected start of statement: {:?}", self.peek())))
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = Vec::new();
        loop {
            from.push(self.from_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Select { distinct, items, from, where_clause })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*` needs lookahead before committing to an expression.
        if let Tok::Ident(name) = self.peek().clone() {
            if matches!(self.toks.get(self.pos + 1), Some(Tok::Sym(".")))
                && matches!(self.toks.get(self.pos + 2), Some(Tok::Sym("*")))
            {
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr_atom_operand()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
        Ok(SelectItem::Expr { expr, alias })
    }

    // `from_*` here parses the SQL FROM clause; it is not a conversion
    // constructor, so the `from_` self convention does not apply.
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem> {
        let mut left = self.from_primary()?;
        loop {
            let kind = if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.from_primary()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            left = FromItem::Join { kind, left: Box::new(left), right: Box::new(right), on };
        }
        Ok(left)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_primary(&mut self) -> Result<FromItem> {
        if self.eat_sym("(") {
            let inner = self.from_item()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(name) = self.peek().clone() {
            // bare alias, but not a keyword that continues the query
            const STOP: [&str; 10] =
                ["WHERE", "LEFT", "INNER", "JOIN", "ON", "GROUP", "ORDER", "AS", "VALUES", "SET"];
            if STOP.iter().any(|k| name.eq_ignore_ascii_case(k)) {
                None
            } else {
                self.bump();
                Some(name)
            }
        } else {
            None
        };
        Ok(FromItem::Table(TableRef { table, alias }))
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut parts = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Expr::Or(parts) })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut parts = vec![self.not_expr()?];
        while self.eat_kw("AND") {
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Expr::And(parts) })
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        // Parenthesised boolean expression vs parenthesised operand is
        // disambiguated by trying the boolean first when '(' starts a
        // sub-expression containing AND/OR/NOT, which we can't know ahead;
        // simplest robust rule: '(' + SELECT is illegal here, otherwise
        // treat parens at this level as boolean grouping.
        if matches!(self.peek(), Tok::Sym("(")) {
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.expr() {
                if self.eat_sym(")") {
                    // could be followed by a comparison? boolean groups are not
                    if !matches!(self.peek(), Tok::Sym("=" | "<" | "<=" | ">" | ">=" | "<>")) {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        let lhs = self.expr_atom_operand()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        let negated_in = {
            let save = self.pos;
            if self.eat_kw("NOT") {
                if self.peek().is_kw("IN") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("IN") {
            // `IN SELECT …` (paper style, no parens) or `IN (SELECT …)` or `IN (v, v)`
            if self.peek().is_kw("SELECT") {
                let q = self.select()?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(q),
                    negated: negated_in,
                });
            }
            self.expect_sym("(")?;
            if self.peek().is_kw("SELECT") {
                let q = self.select()?;
                self.expect_sym(")")?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(q),
                    negated: negated_in,
                });
            }
            let mut set = Vec::new();
            loop {
                set.push(self.literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InSet { expr: Box::new(lhs), set, negated: negated_in });
        }
        let op = match self.peek() {
            Tok::Sym("=") => CmpOp::Eq,
            Tok::Sym("<>") => CmpOp::Ne,
            Tok::Sym("<") => CmpOp::Lt,
            Tok::Sym("<=") => CmpOp::Le,
            Tok::Sym(">") => CmpOp::Gt,
            Tok::Sym(">=") => CmpOp::Ge,
            _ => return Ok(lhs), // bare operand (e.g. boolean column)
        };
        self.bump();
        let rhs = self.expr_atom_operand()?;
        Ok(Expr::cmp(op, lhs, rhs))
    }

    /// Column reference or literal (the operand grammar of the subset).
    fn expr_atom_operand(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Ident(first) => {
                // NULL / TRUE / FALSE literals
                if first.eq_ignore_ascii_case("NULL") {
                    self.bump();
                    return Ok(Expr::lit(Value::Null));
                }
                if first.eq_ignore_ascii_case("TRUE") {
                    self.bump();
                    return Ok(Expr::lit(Value::Bool(true)));
                }
                if first.eq_ignore_ascii_case("FALSE") {
                    self.bump();
                    return Ok(Expr::lit(Value::Bool(false)));
                }
                self.bump();
                if self.eat_sym(".") {
                    let col = self.ident()?;
                    Ok(Expr::col(first, col))
                } else {
                    // Unqualified column: empty table, resolved at plan time.
                    Ok(Expr::col("", first))
                }
            }
            Tok::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            _ => Ok(Expr::lit(self.literal()?)),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        let neg = self.eat_sym("-");
        match self.bump() {
            Tok::Str(s) => {
                if neg {
                    return Err(RdbError::Parse("cannot negate a string".into()));
                }
                Ok(Value::Str(s))
            }
            Tok::Int(i) => Ok(Value::Int(if neg { -i } else { i })),
            Tok::Float(f) => Ok(Value::Double(if neg { -f } else { f })),
            Tok::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Tok::Ident(s) if s.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Tok::Ident(s) if s.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(RdbError::Parse(format!("expected literal, found {other:?}"))),
        }
    }

    // ---- DML ------------------------------------------------------------

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            loop {
                columns.push(self.ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            // The paper writes both `VALUES (a, b)` and `VALUES a, b`.
            let parens = self.eat_sym("(");
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            if parens {
                self.expect_sym(")")?;
            }
            rows.push(row);
            if !(parens && self.eat_sym(",")) {
                break;
            }
        }
        Ok(Stmt::Insert(Insert { table, columns, rows }))
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Delete(Delete { table, where_clause }))
    }

    fn update(&mut self) -> Result<Stmt> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym("=")?;
            assignments.push((col, self.literal()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Stmt::Update(Update { table, assignments, where_clause }))
    }

    // ---- DDL ------------------------------------------------------------

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        // optional length spec like VARCHAR2(10)
        if self.eat_sym("(") {
            let _ = self.bump(); // length
            self.expect_sym(")")?;
        }
        let up = name.to_ascii_uppercase();
        Ok(match up.as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Double,
            "VARCHAR" | "VARCHAR2" | "CHAR" | "TEXT" | "STRING" => DataType::Str,
            "DATE" | "YEAR" => DataType::Date,
            "BOOLEAN" | "BOOL" => DataType::Bool,
            other => return Err(RdbError::Parse(format!("unknown type {other}"))),
        })
    }

    fn create_table(&mut self) -> Result<Stmt> {
        let name = self.ident()?;
        self.expect_sym("(")?;
        let mut schema = TableSchema::new(name.clone());
        let mut check_id = 0;
        loop {
            if self.eat_kw("CONSTRAINTS") || self.eat_kw("CONSTRAINT") {
                let cname = self.ident()?;
                if self.eat_kw("PRIMARYKEY")
                    || (self.eat_kw("PRIMARY") && {
                        self.expect_kw("KEY")?;
                        true
                    })
                {
                    self.expect_sym("(")?;
                    let mut cols = Vec::new();
                    loop {
                        cols.push(self.ident()?);
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(")")?;
                    schema.primary_key = cols;
                } else {
                    return Err(RdbError::Parse(format!("unsupported constraint {cname}")));
                }
            } else if self.eat_kw("FOREIGNKEY")
                || (self.peek().is_kw("FOREIGN") && {
                    self.bump();
                    self.expect_kw("KEY")?;
                    true
                })
            {
                self.expect_sym("(")?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.ident()?;
                self.expect_sym("(")?;
                let mut ref_cols = Vec::new();
                loop {
                    ref_cols.push(self.ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                let mut policy = DeletePolicy::Cascade;
                if self.eat_kw("ON") {
                    self.expect_kw("DELETE")?;
                    if self.eat_kw("CASCADE") {
                        policy = DeletePolicy::Cascade;
                    } else if self.eat_kw("SET") {
                        self.expect_kw("NULL")?;
                        policy = DeletePolicy::SetNull;
                    } else if self.eat_kw("RESTRICT") {
                        policy = DeletePolicy::Restrict;
                    }
                }
                let n = schema.foreign_keys.len();
                schema.foreign_keys.push(crate::schema::ForeignKey {
                    name: format!("{name}_fk{n}"),
                    columns: cols,
                    ref_table,
                    ref_columns: ref_cols,
                    on_delete: policy,
                });
            } else {
                // column definition
                let col_name = self.ident()?;
                let ty = self.data_type()?;
                let mut col = Column::new(col_name.clone(), ty);
                loop {
                    if self.eat_kw("NOT") {
                        self.expect_kw("NULL")?;
                        col.not_null = true;
                    } else if self.eat_kw("UNIQUE") {
                        col.unique = true;
                    } else if self.eat_kw("CHECK") {
                        self.expect_sym("(")?;
                        let e = self.expr()?;
                        self.expect_sym(")")?;
                        // Qualify bare columns with the table name.
                        let table_name = name.clone();
                        let e = e.map_columns(&|c| {
                            if c.table.is_empty() {
                                crate::expr::ColRef::new(table_name.clone(), c.column.clone())
                            } else {
                                c.clone()
                            }
                        });
                        check_id += 1;
                        schema.checks.push(crate::schema::CheckConstraint {
                            name: format!("{name}_check{check_id}"),
                            expr: e,
                        });
                    } else {
                        break;
                    }
                }
                schema.columns.push(col);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Stmt::CreateTable(schema))
    }

    fn create_view(&mut self) -> Result<Stmt> {
        let name = self.ident()?;
        self.expect_kw("AS")?;
        let select = self.select()?;
        Ok(Stmt::CreateView(CreateView { name, select }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pq1_probe_query() {
        // PQ1 from §6.1 (literal text from the paper, quotes normalised)
        let q = Parser::parse_select(
            "SELECT bookid FROM publisher, book, review \
             WHERE book.title = 'Programming in Unix' AND book.price < 50.00 \
             AND book.year > 1990 AND book.pubid = publisher.pubid",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 4);
    }

    #[test]
    fn parse_u3_delete_with_subquery() {
        // U3 from §6.2.2: paper omits parens around the subquery.
        let s = Parser::parse_stmt(
            "DELETE FROM review WHERE review.bookid IN SELECT bookid FROM TAB_book",
        )
        .unwrap();
        match s {
            Stmt::Delete(d) => {
                assert_eq!(d.table, "review");
                assert!(matches!(d.where_clause, Some(Expr::InSubquery { .. })));
            }
            other => panic!("expected DELETE, got {other}"),
        }
    }

    #[test]
    fn parse_insert_with_and_without_parens() {
        let a = Parser::parse_stmt(
            "INSERT INTO book VALUES ('98001', 'Operating Systems', 'A01', 20.00, 1994)",
        )
        .unwrap();
        let b = Parser::parse_stmt(
            "INSERT INTO book VALUES '98001', 'Operating Systems', 'A01', 20.00, 1994",
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_create_table_with_constraints() {
        let s = Parser::parse_stmt(
            "CREATE TABLE book( \
               bookid VARCHAR2(20), \
               title VARCHAR2(100) NOT NULL, \
               pubid VARCHAR2(10), \
               price DOUBLE CHECK (price > 0.00), \
               year DATE, \
               CONSTRAINTS BookPK PRIMARYKEY (bookid), \
               FOREIGNKEY (pubid) REFERENCES publisher (pubid))",
        )
        .unwrap();
        match s {
            Stmt::CreateTable(t) => {
                assert_eq!(t.name, "book");
                assert_eq!(t.columns.len(), 5);
                assert_eq!(t.primary_key, vec!["bookid"]);
                assert_eq!(t.checks.len(), 1);
                assert_eq!(t.foreign_keys.len(), 1);
                assert!(t.column_named("title").unwrap().not_null);
                // CHECK column got qualified
                let cols = t.checks[0].expr.columns();
                assert!(cols[0].matches("book", "price"));
            }
            other => panic!("expected CREATE TABLE, got {other}"),
        }
    }

    #[test]
    fn parse_left_join_view_fig11() {
        let s = Parser::parse_stmt(
            "CREATE VIEW RelationalBookView AS \
             SELECT p.pubid, p.pubname, b.bookid, b.title, b.price, r.reviewid, r.comment \
             FROM ( Publisher AS p LEFT JOIN ( Book AS b LEFT JOIN Review AS r \
             ON b.bookid = r.bookid ) ON p.pubid = b.pubid )",
        )
        .unwrap();
        match s {
            Stmt::CreateView(v) => {
                assert_eq!(v.name, "RelationalBookView");
                assert_eq!(v.select.items.len(), 7);
                let tables: Vec<&str> =
                    v.select.from[0].tables().iter().map(|t| t.binding()).collect();
                assert_eq!(tables, vec!["p", "b", "r"]);
            }
            other => panic!("expected CREATE VIEW, got {other}"),
        }
    }

    #[test]
    fn parse_update_and_txn() {
        let s = Parser::parse_stmt("UPDATE book SET price = 30.00 WHERE bookid = '98001'").unwrap();
        assert!(matches!(s, Stmt::Update(_)));
        assert!(matches!(Parser::parse_stmt("BEGIN").unwrap(), Stmt::Begin));
        assert!(matches!(Parser::parse_stmt("ROLLBACK;").unwrap(), Stmt::Rollback));
    }

    #[test]
    fn parse_qualified_wildcard_and_alias() {
        let q = Parser::parse_select("SELECT b.* FROM book b WHERE b.price < 50").unwrap();
        assert!(matches!(&q.items[0], SelectItem::QualifiedWildcard(a) if a == "b"));
    }

    #[test]
    fn parse_is_null_and_in_set() {
        let q = Parser::parse_select(
            "SELECT * FROM book WHERE pubid IS NOT NULL AND bookid IN ('a', 'b')",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn reject_garbage() {
        assert!(Parser::parse_stmt("SELECT FROM").is_err());
        assert!(Parser::parse_stmt("FLY me TO the moon").is_err());
    }
}
