//! SQL abstract syntax: the subset needed by U-Filter's probe queries,
//! translated updates, and the relational-view mapping of §6.2.1.
//!
//! Covered: `SELECT` (projection, comma joins, explicit `[LEFT] JOIN … ON`,
//! `WHERE` with `IN (SELECT …)`, `DISTINCT` for completeness), `INSERT`,
//! `DELETE`, `UPDATE`, `CREATE TABLE` with the constraint forms of Fig. 1,
//! `CREATE VIEW`, and transaction control.

use std::fmt;

use crate::expr::Expr;
use crate::schema::TableSchema;
use crate::types::Value;

/// One projected item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of every range variable (rowids excluded).
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional output alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// A base-table reference with an optional alias
/// (`Publisher AS p` in Fig. 11).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    pub fn named(table: impl Into<String>) -> TableRef {
        TableRef { table: table.into(), alias: None }
    }

    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef { table: table.into(), alias: Some(alias.into()) }
    }

    /// The name range-variable columns are qualified with.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// FROM-clause tree.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    Table(TableRef),
    Join { kind: JoinKind, left: Box<FromItem>, right: Box<FromItem>, on: Expr },
}

impl FromItem {
    /// All base-table references in the tree, left to right.
    pub fn tables(&self) -> Vec<&TableRef> {
        match self {
            FromItem::Table(t) => vec![t],
            FromItem::Join { left, right, .. } => {
                let mut out = left.tables();
                out.extend(right.tables());
                out
            }
        }
    }
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    /// Comma-separated FROM entries; each may itself be a join tree.
    pub from: Vec<FromItem>,
    pub where_clause: Option<Expr>,
}

impl Select {
    /// Plain `SELECT <items> FROM <tables> WHERE <pred>` over comma joins.
    pub fn new(items: Vec<SelectItem>, from: Vec<FromItem>, where_clause: Option<Expr>) -> Select {
        Select { distinct: false, items, from, where_clause }
    }
}

/// `INSERT INTO table [(cols)] VALUES (…), (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Explicit column list; empty means positional over all columns.
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

/// `DELETE FROM table WHERE …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: String,
    pub where_clause: Option<Expr>,
}

/// `UPDATE table SET col = value, … WHERE …`.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: String,
    pub assignments: Vec<(String, Value)>,
    pub where_clause: Option<Expr>,
}

/// `CREATE VIEW name AS SELECT …`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateView {
    pub name: String,
    pub select: Select,
}

/// Any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Select(Select),
    /// `EXPLAIN SELECT …` — returns the physical plan as text rows.
    Explain(Select),
    Insert(Insert),
    Delete(Delete),
    Update(Update),
    CreateTable(TableSchema),
    CreateView(CreateView),
    DropTable(String),
    Begin,
    Commit,
    Rollback,
}

// PartialEq for TableSchema pieces: schema contains Expr which is PartialEq;
// derive-friendly impls below keep Stmt comparable in tests.
impl PartialEq for TableSchema {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.primary_key == other.primary_key
            && self.columns.len() == other.columns.len()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.name == b.name && a.ty == b.ty && a.not_null == b.not_null)
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        let items: Vec<String> = self
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
                SelectItem::Expr { expr, alias: Some(a) } => format!("{expr} AS {a}"),
                SelectItem::Expr { expr, alias: None } => expr.to_string(),
            })
            .collect();
        write!(f, "{} FROM ", items.join(", "))?;
        let froms: Vec<String> = self.from.iter().map(render_from).collect();
        write!(f, "{}", froms.join(", "))?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

fn render_from(item: &FromItem) -> String {
    match item {
        FromItem::Table(t) => match &t.alias {
            Some(a) => format!("{} AS {a}", t.table),
            None => t.table.clone(),
        },
        FromItem::Join { kind, left, right, on } => {
            let k = match kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
            };
            format!("({} {k} {} ON {on})", render_from(left), render_from(right))
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Select(s) => write!(f, "{s}"),
            Stmt::Explain(s) => write!(f, "EXPLAIN {s}"),
            Stmt::Insert(i) => {
                write!(f, "INSERT INTO {}", i.table)?;
                if !i.columns.is_empty() {
                    write!(f, " ({})", i.columns.join(", "))?;
                }
                let rows: Vec<String> = i
                    .rows
                    .iter()
                    .map(|r| {
                        let vals: Vec<String> = r.iter().map(|v| v.to_string()).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                write!(f, " VALUES {}", rows.join(", "))
            }
            Stmt::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if let Some(w) = &d.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Stmt::Update(u) => {
                let sets: Vec<String> =
                    u.assignments.iter().map(|(c, v)| format!("{c} = {v}")).collect();
                write!(f, "UPDATE {} SET {}", u.table, sets.join(", "))?;
                if let Some(w) = &u.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Stmt::CreateTable(t) => write!(f, "CREATE TABLE {} (…)", t.name),
            Stmt::CreateView(v) => write!(f, "CREATE VIEW {} AS {}", v.name, v.select),
            Stmt::DropTable(t) => write!(f, "DROP TABLE {t}"),
            Stmt::Begin => f.write_str("BEGIN"),
            Stmt::Commit => f.write_str("COMMIT"),
            Stmt::Rollback => f.write_str("ROLLBACK"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn display_select_roundtrips_shape() {
        let s = Select::new(
            vec![SelectItem::Expr { expr: Expr::col("book", "bookid"), alias: None }],
            vec![
                FromItem::Table(TableRef::named("publisher")),
                FromItem::Table(TableRef::named("book")),
            ],
            Some(Expr::eq(Expr::col("book", "pubid"), Expr::col("publisher", "pubid"))),
        );
        let text = s.to_string();
        assert!(text.starts_with("SELECT book.bookid FROM publisher, book WHERE"));
    }

    #[test]
    fn from_tree_lists_tables_in_order() {
        let j = FromItem::Join {
            kind: JoinKind::Left,
            left: Box::new(FromItem::Table(TableRef::aliased("publisher", "p"))),
            right: Box::new(FromItem::Table(TableRef::aliased("book", "b"))),
            on: Expr::eq(Expr::col("p", "pubid"), Expr::col("b", "pubid")),
        };
        let names: Vec<&str> = j.tables().iter().map(|t| t.binding()).collect();
        assert_eq!(names, vec!["p", "b"]);
    }

    #[test]
    fn display_insert() {
        let i = Stmt::Insert(Insert {
            table: "review".into(),
            columns: vec![],
            rows: vec![vec![
                Value::str("98003"),
                Value::str("001"),
                Value::str("easy read and useful"),
                Value::Null,
            ]],
        });
        assert_eq!(
            i.to_string(),
            "INSERT INTO review VALUES ('98003', '001', 'easy read and useful', NULL)"
        );
    }
}
