//! Query planning and execution.
//!
//! The planner builds a left-deep plan from comma joins (choosing index
//! nested-loop joins when the inner side has a matching index, hash joins
//! for other equi-joins, nested loops otherwise) and follows explicit
//! `[LEFT] JOIN … ON` trees as written. Views referenced in `FROM` are
//! inlined as derived tables.
//!
//! The index/no-index distinction is load-bearing for the evaluation:
//! Fig. 16's gap between the *hybrid* and *outside* strategies comes from
//! translated updates joining through key indexes while probe-result
//! materializations have none.

use std::collections::HashMap;

use crate::db::Db;
use crate::error::{RdbError, Result};
use crate::expr::{ColRef, Expr};
use crate::sql::ast::{FromItem, JoinKind, Select, SelectItem, TableRef};
use crate::storage::Row;
use crate::types::Value;

/// Result of a query: a header of qualified column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<ColRef>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn empty() -> ResultSet {
        ResultSet { columns: Vec::new(), rows: Vec::new() }
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Position of a column by (optionally unqualified) name.
    pub fn col(&self, name: &str) -> Option<usize> {
        if let Some(dot) = name.find('.') {
            let (t, c) = (&name[..dot], &name[dot + 1..]);
            self.columns.iter().position(|x| x.matches(t, c))
        } else {
            self.columns.iter().position(|x| x.column.eq_ignore_ascii_case(name))
        }
    }

    /// All values of one column.
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        match self.col(name) {
            Some(i) => self.rows.iter().map(|r| r[i].clone()).collect(),
            None => Vec::new(),
        }
    }

    /// First row's value in the named column.
    pub fn first(&self, name: &str) -> Option<&Value> {
        let i = self.col(name)?;
        self.rows.first().map(|r| &r[i])
    }

    /// Render as an aligned text table (used by examples).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self.columns.iter().map(|c| c.to_string()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> =
            self.rows.iter().map(|r| r.iter().map(|v| v.render()).collect()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("| {:width$} ", c, width = widths[i]));
            }
            out.push_str("|\n");
        };
        line(&headers, &widths, &mut out);
        for w in &widths {
            out.push_str(&format!("|{}", "-".repeat(w + 2)));
        }
        out.push_str("|\n");
        for row in &rendered {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// A physical plan node with its output header.
#[derive(Debug, Clone)]
pub struct PlanNode {
    pub cols: Vec<ColRef>,
    pub op: PlanOp,
}

#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Full scan of a base table; emits every column plus a trailing
    /// `binding.rowid` pseudo-column.
    Scan {
        table: String,
        binding: String,
        filter: Option<Expr>,
    },
    /// Point lookup(s) through an index: equality predicates covering the
    /// index's columns, or an IN-list on a single-column index, with a
    /// residual filter.
    IndexScan {
        table: String,
        binding: String,
        index: usize,
        keys: Vec<Vec<Value>>,
        filter: Option<Expr>,
    },
    /// For each outer row, probe an index on the inner base table.
    IndexNlJoin {
        outer: Box<PlanNode>,
        table: String,
        binding: String,
        /// Index position within the table's index list.
        index: usize,
        /// Positions (in the outer header) feeding the index key, in the
        /// order of the index's columns.
        outer_keys: Vec<usize>,
        filter: Option<Expr>,
    },
    HashJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
        residual: Option<Expr>,
    },
    NlJoin {
        left: Box<PlanNode>,
        right: Box<PlanNode>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    Filter {
        input: Box<PlanNode>,
        pred: Expr,
    },
    Project {
        input: Box<PlanNode>,
        exprs: Vec<(Expr, ColRef)>,
    },
    Distinct {
        input: Box<PlanNode>,
    },
    /// A materialized sub-result (view inlining).
    Derived {
        rows: Vec<Row>,
    },
}

impl PlanNode {
    /// One-line-per-node plan rendering, for tests and EXPLAIN-style docs.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match &self.op {
            PlanOp::Scan { table, binding, filter } => {
                out.push_str(&format!("{pad}Scan {table} AS {binding}"));
                if let Some(f) = filter {
                    out.push_str(&format!(" [{f}]"));
                }
                out.push('\n');
            }
            PlanOp::IndexScan { table, binding, index, filter, .. } => {
                out.push_str(&format!("{pad}IndexScan {table} AS {binding} (index #{index})"));
                if let Some(f) = filter {
                    out.push_str(&format!(" [{f}]"));
                }
                out.push('\n');
            }
            PlanOp::IndexNlJoin { outer, table, binding, index, .. } => {
                out.push_str(&format!("{pad}IndexNLJoin {table} AS {binding} (index #{index})\n"));
                outer.explain_into(depth + 1, out);
            }
            PlanOp::HashJoin { left, right, kind, .. } => {
                out.push_str(&format!("{pad}HashJoin ({kind:?})\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PlanOp::NlJoin { left, right, kind, .. } => {
                out.push_str(&format!("{pad}NLJoin ({kind:?})\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PlanOp::Filter { input, pred } => {
                out.push_str(&format!("{pad}Filter [{pred}]\n"));
                input.explain_into(depth + 1, out);
            }
            PlanOp::Project { input, .. } => {
                out.push_str(&format!("{pad}Project\n"));
                input.explain_into(depth + 1, out);
            }
            PlanOp::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(depth + 1, out);
            }
            PlanOp::Derived { rows } => {
                out.push_str(&format!("{pad}Derived ({} rows)\n", rows.len()));
            }
        }
    }
}

fn find_col(cols: &[ColRef], c: &ColRef) -> Option<usize> {
    if c.table.is_empty() {
        cols.iter().position(|x| x.column.eq_ignore_ascii_case(&c.column))
    } else {
        cols.iter().position(|x| x.matches(&c.table, &c.column))
    }
}

fn row_resolver<'a>(
    cols: &'a [ColRef],
    row: &'a [Value],
) -> impl Fn(&ColRef) -> Result<Value> + 'a {
    move |c: &ColRef| match find_col(cols, c) {
        Some(i) => Ok(row[i].clone()),
        None => Err(RdbError::NoSuchColumn { table: c.table.clone(), column: c.column.clone() }),
    }
}

/// Entry point: plan and execute a SELECT.
pub fn run_select(db: &Db, sel: &Select) -> Result<ResultSet> {
    let plan = plan_select(db, sel)?;
    let rows = exec_plan(db, &plan)?;
    Ok(ResultSet { columns: plan.cols, rows })
}

/// Build the physical plan for a SELECT (exposed for EXPLAIN-style tests).
pub fn plan_select(db: &Db, sel: &Select) -> Result<PlanNode> {
    // Resolve IN (SELECT …) into IN-lists up front.
    let where_clause = match &sel.where_clause {
        Some(w) => Some(resolve_subqueries(db, w)?),
        None => None,
    };

    // Plan each FROM entry.
    let mut parts: Vec<PlanNode> = Vec::new();
    for item in &sel.from {
        parts.push(plan_from_item(db, item)?);
    }
    if parts.is_empty() {
        return Err(RdbError::Semantic("empty FROM clause".into()));
    }

    let mut conjuncts: Vec<Expr> = where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();

    // Push single-source conjuncts down onto their scans.
    let mut remaining = Vec::new();
    'outer: for c in conjuncts.drain(..) {
        let cols = c.columns();
        let mut home: Option<usize> = None;
        for col in &cols {
            let mut found = None;
            for (i, p) in parts.iter().enumerate() {
                if find_col(&p.cols, col).is_some() {
                    found = Some(i);
                    break;
                }
            }
            match (found, home) {
                (None, _) => {
                    return Err(RdbError::NoSuchColumn {
                        table: col.table.clone(),
                        column: col.column.clone(),
                    })
                }
                (Some(i), None) => home = Some(i),
                (Some(i), Some(h)) if i != h => {
                    remaining.push(c);
                    continue 'outer;
                }
                _ => {}
            }
        }
        match home {
            Some(h) if !cols.is_empty() => {
                let node = parts.remove(h);
                parts.insert(h, attach_filter(node, c));
            }
            _ => remaining.push(c),
        }
    }
    conjuncts = remaining;

    // Turn filtered scans into index point-lookups where an index covers
    // the equality conjuncts.
    parts = parts.into_iter().map(|p| improve_scan(db, p)).collect();

    // Seed the greedy join with the most selective part: index lookups
    // first, then filtered scans — so a probe like "orders.o_orderkey = 5"
    // anchors the join instead of enumerating the top of the hierarchy.
    let seed = parts
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| match &p.op {
            PlanOp::IndexScan { .. } => 0,
            PlanOp::Scan { filter: Some(_), .. } => 1,
            PlanOp::Derived { .. } => 2,
            _ => 3,
        })
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut current = parts.remove(seed);
    while !parts.is_empty() {
        // Find a part connected to `current` by at least one equi-conjunct.
        let mut chosen: Option<(usize, Vec<usize>)> = None;
        for (pi, p) in parts.iter().enumerate() {
            let mut conds = Vec::new();
            for (ci, c) in conjuncts.iter().enumerate() {
                if let Some((a, b)) = c.as_column_equality() {
                    let spans = |x: &ColRef, y: &ColRef| {
                        find_col(&current.cols, x).is_some() && find_col(&p.cols, y).is_some()
                    };
                    if spans(a, b) || spans(b, a) {
                        conds.push(ci);
                    }
                }
            }
            if !conds.is_empty() {
                chosen = Some((pi, conds));
                break;
            }
        }
        // Default (0, []) means cross join fallback.
        let (pi, cond_idx) = chosen.unwrap_or_default();
        let right = parts.remove(pi);
        // Pull out the equi conditions.
        let mut used: Vec<Expr> = Vec::new();
        let mut keep: Vec<Expr> = Vec::new();
        for (i, c) in conjuncts.drain(..).enumerate() {
            if cond_idx.contains(&i) {
                used.push(c);
            } else {
                keep.push(c);
            }
        }
        conjuncts = keep;
        current = plan_join(db, current, right, JoinKind::Inner, used, None)?;
    }

    // Leftover conjuncts become a top filter.
    let mut node = current;
    if !conjuncts.is_empty() {
        node = attach_filter(node, Expr::and(conjuncts));
    }

    // Projection.
    let mut exprs: Vec<(Expr, ColRef)> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for c in &node.cols {
                    if !c.column.eq_ignore_ascii_case("rowid") {
                        exprs.push((Expr::Column(c.clone()), c.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let mut any = false;
                for c in &node.cols {
                    if c.table.eq_ignore_ascii_case(q) && !c.column.eq_ignore_ascii_case("rowid") {
                        exprs.push((Expr::Column(c.clone()), c.clone()));
                        any = true;
                    }
                }
                if !any {
                    return Err(RdbError::Semantic(format!("unknown binding {q} in {q}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let expr = resolve_subqueries(db, expr)?;
                // Validate column references now for a better error.
                for c in expr.columns() {
                    if find_col(&node.cols, c).is_none() {
                        return Err(RdbError::NoSuchColumn {
                            table: c.table.clone(),
                            column: c.column.clone(),
                        });
                    }
                }
                let name = match (&expr, alias) {
                    (_, Some(a)) => ColRef::new("", a.clone()),
                    (Expr::Column(c), None) => {
                        // Preserve qualification from the underlying column.
                        match find_col(&node.cols, c) {
                            Some(i) => node.cols[i].clone(),
                            None => c.clone(),
                        }
                    }
                    _ => ColRef::new("", format!("expr{}", exprs.len())),
                };
                exprs.push((expr, name));
            }
        }
    }
    let cols: Vec<ColRef> = exprs.iter().map(|(_, c)| c.clone()).collect();
    node = PlanNode { cols: cols.clone(), op: PlanOp::Project { input: Box::new(node), exprs } };

    if sel.distinct {
        node = PlanNode { cols, op: PlanOp::Distinct { input: Box::new(node) } };
    }
    Ok(node)
}

fn attach_filter(node: PlanNode, pred: Expr) -> PlanNode {
    match node.op {
        PlanOp::Scan { table, binding, filter } => {
            let f = match filter {
                Some(old) => Expr::and([old, pred]),
                None => pred,
            };
            PlanNode { cols: node.cols, op: PlanOp::Scan { table, binding, filter: Some(f) } }
        }
        PlanOp::IndexScan { table, binding, index, keys, filter } => {
            let f = match filter {
                Some(old) => Expr::and([old, pred]),
                None => pred,
            };
            PlanNode {
                cols: node.cols,
                op: PlanOp::IndexScan { table, binding, index, keys, filter: Some(f) },
            }
        }
        op => {
            let cols = node.cols.clone();
            PlanNode {
                cols,
                op: PlanOp::Filter { input: Box::new(PlanNode { cols: node.cols, op }), pred },
            }
        }
    }
}

/// Rewrite `Scan + equality filter` into an `IndexScan` when some index's
/// columns are all pinned by equality-to-literal conjuncts.
fn improve_scan(db: &Db, node: PlanNode) -> PlanNode {
    let PlanOp::Scan { table, binding, filter: Some(f) } = &node.op else {
        return node;
    };
    let Some(schema) = db.schema().table(table) else { return node };
    let Some(data) = db.table_data(table) else { return node };
    let conjuncts: Vec<Expr> = f.conjuncts().into_iter().cloned().collect();
    // Column position → pinned literal (from `col = lit` conjuncts); the
    // tuples are (col pos, value, conjunct idx).
    let mut pins: Vec<(usize, Value, usize)> = Vec::new();
    // Column position → IN-list (from `col IN (…)` conjuncts).
    let mut in_lists: Vec<(usize, Vec<Value>, usize)> = Vec::new();
    for (ci, c) in conjuncts.iter().enumerate() {
        if let Some((col, op, v)) = c.as_column_literal() {
            if op == crate::expr::CmpOp::Eq
                && (col.table.is_empty() || col.table.eq_ignore_ascii_case(binding))
            {
                if let Some(pos) = schema.column_index(&col.column) {
                    pins.push((pos, v.clone(), ci));
                }
            }
        } else if let Expr::InSet { expr, set, negated: false } = c {
            if let Expr::Column(col) = expr.as_ref() {
                if col.table.is_empty() || col.table.eq_ignore_ascii_case(binding) {
                    if let Some(pos) = schema.column_index(&col.column) {
                        in_lists.push((pos, set.clone(), ci));
                    }
                }
            }
        }
    }
    // Exact equality cover of an index → one point lookup.
    for (ix_pos, ix) in data.indexes.iter().enumerate() {
        let covered: Option<Vec<&(usize, Value, usize)>> =
            ix.columns.iter().map(|c| pins.iter().find(|(p, _, _)| p == c)).collect();
        let Some(used) = covered else { continue };
        let key: Vec<Value> = used.iter().map(|(_, v, _)| v.clone()).collect();
        let used_conjuncts: Vec<usize> = used.iter().map(|(_, _, i)| *i).collect();
        let residual: Vec<Expr> = conjuncts
            .iter()
            .enumerate()
            .filter(|(i, _)| !used_conjuncts.contains(i))
            .map(|(_, c)| c.clone())
            .collect();
        let filter = if residual.is_empty() { None } else { Some(Expr::and(residual)) };
        return PlanNode {
            cols: node.cols,
            op: PlanOp::IndexScan {
                table: table.clone(),
                binding: binding.clone(),
                index: ix_pos,
                keys: vec![key],
                filter,
            },
        };
    }
    // IN-list over a single-column index → a batch of point lookups
    // (`DELETE FROM lineitem WHERE l_orderkey IN (…)`, the translated
    // updates' dominant shape).
    for (ix_pos, ix) in data.indexes.iter().enumerate() {
        if ix.columns.len() != 1 {
            continue;
        }
        let Some((_, set, ci)) = in_lists.iter().find(|(p, _, _)| *p == ix.columns[0]) else {
            continue;
        };
        let keys: Vec<Vec<Value>> = set.iter().map(|v| vec![v.clone()]).collect();
        let residual: Vec<Expr> =
            conjuncts.iter().enumerate().filter(|(i, _)| i != ci).map(|(_, c)| c.clone()).collect();
        let filter = if residual.is_empty() { None } else { Some(Expr::and(residual)) };
        return PlanNode {
            cols: node.cols,
            op: PlanOp::IndexScan {
                table: table.clone(),
                binding: binding.clone(),
                index: ix_pos,
                keys,
                filter,
            },
        };
    }
    node
}

fn scan_cols(db: &Db, table: &str, binding: &str) -> Result<Vec<ColRef>> {
    let schema =
        db.schema().table(table).ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
    let mut cols: Vec<ColRef> =
        schema.columns.iter().map(|c| ColRef::new(binding, c.name.clone())).collect();
    cols.push(ColRef::new(binding, "rowid"));
    Ok(cols)
}

fn plan_from_item(db: &Db, item: &FromItem) -> Result<PlanNode> {
    match item {
        FromItem::Table(t) => plan_table_ref(db, t),
        FromItem::Join { kind, left, right, on } => {
            let l = plan_from_item(db, left)?;
            let r = plan_from_item(db, right)?;
            let on = resolve_subqueries(db, on)?;
            let conds: Vec<Expr> = on.conjuncts().into_iter().cloned().collect();
            plan_join(db, l, r, *kind, conds, None)
        }
    }
}

fn plan_table_ref(db: &Db, t: &TableRef) -> Result<PlanNode> {
    if let Some(view) = db.view_def(&t.table) {
        // Inline the view as a derived table, re-qualifying output columns
        // with the view binding.
        let inner = run_select(db, &view.select)?;
        let binding = t.binding().to_string();
        let cols: Vec<ColRef> =
            inner.columns.iter().map(|c| ColRef::new(binding.clone(), c.column.clone())).collect();
        return Ok(PlanNode { cols, op: PlanOp::Derived { rows: inner.rows } });
    }
    let cols = scan_cols(db, &t.table, t.binding())?;
    Ok(PlanNode {
        cols,
        op: PlanOp::Scan { table: t.table.clone(), binding: t.binding().to_string(), filter: None },
    })
}

/// Build the best join for `left ⋈ right` given candidate conditions.
fn plan_join(
    db: &Db,
    left: PlanNode,
    right: PlanNode,
    kind: JoinKind,
    conds: Vec<Expr>,
    residual_extra: Option<Expr>,
) -> Result<PlanNode> {
    // Split conditions into equi keys (left-col = right-col) and residual.
    let mut left_keys: Vec<usize> = Vec::new();
    let mut right_keys: Vec<usize> = Vec::new();
    let mut right_key_cols: Vec<ColRef> = Vec::new();
    let mut residual: Vec<Expr> = residual_extra.into_iter().collect();
    for c in conds {
        let mut handled = false;
        if let Some((a, b)) = c.as_column_equality() {
            let la = find_col(&left.cols, a);
            let rb = find_col(&right.cols, b);
            let lb = find_col(&left.cols, b);
            let ra = find_col(&right.cols, a);
            if let (Some(li), Some(ri)) = (la, rb) {
                left_keys.push(li);
                right_keys.push(ri);
                right_key_cols.push(right.cols[ri].clone());
                handled = true;
            } else if let (Some(li), Some(ri)) = (lb, ra) {
                left_keys.push(li);
                right_keys.push(ri);
                right_key_cols.push(right.cols[ri].clone());
                handled = true;
            }
        }
        if !handled {
            residual.push(c);
        }
    }
    let residual = if residual.is_empty() { None } else { Some(Expr::and(residual)) };

    let cols: Vec<ColRef> = left.cols.iter().chain(right.cols.iter()).cloned().collect();

    // Index nested-loop join: inner must be a bare base-table scan with an
    // index exactly covering the join columns. Only for inner joins.
    if kind == JoinKind::Inner && db.planner_config().enable_index_join && !left_keys.is_empty() {
        if let PlanOp::Scan { table, binding, filter } = &right.op {
            if let Some(ix) = db.find_index(table, &right_key_cols, binding) {
                // Reorder outer keys to the index's column order.
                let data = db.table_data(table).expect("scan of known table");
                let index = &data.indexes[ix];
                let schema = db.schema().table(table).expect("known table");
                let mut outer_keys = Vec::with_capacity(index.columns.len());
                for &ci in &index.columns {
                    let col_name = &schema.columns[ci].name;
                    let pos_in_keys = right_key_cols
                        .iter()
                        .position(|c| c.column.eq_ignore_ascii_case(col_name))
                        .expect("index column covered by join keys");
                    outer_keys.push(left_keys[pos_in_keys]);
                }
                let filter = match (filter.clone(), residual) {
                    (Some(f), Some(r)) => Some(Expr::and([f, r])),
                    (Some(f), None) => Some(f),
                    (None, r) => r,
                };
                return Ok(PlanNode {
                    cols,
                    op: PlanOp::IndexNlJoin {
                        outer: Box::new(left),
                        table: table.clone(),
                        binding: binding.clone(),
                        index: ix,
                        outer_keys,
                        filter,
                    },
                });
            }
        }
    }

    if !left_keys.is_empty() && db.planner_config().enable_hash_join {
        return Ok(PlanNode {
            cols,
            op: PlanOp::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_keys,
                right_keys,
                kind,
                residual,
            },
        });
    }

    // Fall back to a nested loop with the full condition.
    let mut on_parts: Vec<Expr> = Vec::new();
    for (li, ri) in left_keys.iter().zip(&right_keys) {
        on_parts.push(Expr::eq(
            Expr::Column(left.cols[*li].clone()),
            Expr::Column(right.cols[*ri].clone()),
        ));
    }
    if let Some(r) = residual {
        on_parts.push(r);
    }
    let on = if on_parts.is_empty() { None } else { Some(Expr::and(on_parts)) };
    Ok(PlanNode {
        cols,
        op: PlanOp::NlJoin { left: Box::new(left), right: Box::new(right), kind, on },
    })
}

/// Replace `IN (SELECT …)` with an evaluated `IN (values…)`.
pub fn resolve_subqueries(db: &Db, e: &Expr) -> Result<Expr> {
    Ok(match e {
        Expr::InSubquery { expr, query, negated } => {
            let rs = run_select(db, query)?;
            let set: Vec<Value> = rs.rows.into_iter().map(|mut r| r.swap_remove(0)).collect();
            Expr::InSet { expr: Box::new(resolve_subqueries(db, expr)?), set, negated: *negated }
        }
        Expr::And(es) => {
            Expr::And(es.iter().map(|x| resolve_subqueries(db, x)).collect::<Result<_>>()?)
        }
        Expr::Or(es) => {
            Expr::Or(es.iter().map(|x| resolve_subqueries(db, x)).collect::<Result<_>>()?)
        }
        Expr::Not(x) => Expr::Not(Box::new(resolve_subqueries(db, x)?)),
        Expr::Cmp { op, lhs, rhs } => Expr::Cmp {
            op: *op,
            lhs: Box::new(resolve_subqueries(db, lhs)?),
            rhs: Box::new(resolve_subqueries(db, rhs)?),
        },
        other => other.clone(),
    })
}

/// Execute a plan to completion.
pub fn exec_plan(db: &Db, plan: &PlanNode) -> Result<Vec<Row>> {
    match &plan.op {
        PlanOp::Scan { table, binding: _, filter } => {
            let data = db.table_data(table).ok_or_else(|| RdbError::NoSuchTable(table.clone()))?;
            let mut out = Vec::new();
            for (rid, row) in data.heap.scan() {
                db.stats().add_scanned(1);
                let mut full = row.clone();
                full.push(Value::Int(rid.0 as i64));
                if let Some(f) = filter {
                    if !f.eval_predicate(&row_resolver(&plan.cols, &full))? {
                        continue;
                    }
                }
                out.push(full);
            }
            Ok(out)
        }
        PlanOp::Derived { rows } => Ok(rows.clone()),
        PlanOp::IndexScan { table, binding: _, index, keys, filter } => {
            let data = db.table_data(table).ok_or_else(|| RdbError::NoSuchTable(table.clone()))?;
            let ix = &data.indexes[*index];
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for key in keys {
                db.stats().add_index_lookup(1);
                for rid in ix.lookup(key) {
                    if !seen.insert(rid) {
                        continue; // duplicate keys in an IN-list
                    }
                    let row = data.heap.get(rid).expect("index points at live row");
                    let mut full = row.clone();
                    full.push(Value::Int(rid.0 as i64));
                    if let Some(f) = filter {
                        if !f.eval_predicate(&row_resolver(&plan.cols, &full))? {
                            continue;
                        }
                    }
                    out.push(full);
                }
            }
            Ok(out)
        }
        PlanOp::IndexNlJoin { outer, table, binding: _, index, outer_keys, filter } => {
            let outer_rows = exec_plan(db, outer)?;
            let data = db.table_data(table).ok_or_else(|| RdbError::NoSuchTable(table.clone()))?;
            let ix = &data.indexes[*index];
            let mut out = Vec::new();
            for orow in outer_rows {
                let key: Vec<Value> = outer_keys.iter().map(|&i| orow[i].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue; // NULL never joins
                }
                db.stats().add_index_lookup(1);
                for rid in ix.lookup(&key) {
                    let irow = data.heap.get(rid).expect("index points at live row");
                    let mut combined = orow.clone();
                    combined.extend(irow.iter().cloned());
                    combined.push(Value::Int(rid.0 as i64));
                    if let Some(f) = filter {
                        if !f.eval_predicate(&row_resolver(&plan.cols, &combined))? {
                            continue;
                        }
                    }
                    out.push(combined);
                }
            }
            Ok(out)
        }
        PlanOp::HashJoin { left, right, left_keys, right_keys, kind, residual } => {
            let lrows = exec_plan(db, left)?;
            let rrows = exec_plan(db, right)?;
            let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
            for r in &rrows {
                let key: Vec<Value> = right_keys.iter().map(|&i| r[i].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue;
                }
                table.entry(key).or_default().push(r);
            }
            let right_width = right.cols.len();
            let mut out = Vec::new();
            for l in &lrows {
                let key: Vec<Value> = left_keys.iter().map(|&i| l[i].clone()).collect();
                db.stats().add_hash_probe(1);
                let mut matched = false;
                if !key.iter().any(Value::is_null) {
                    if let Some(cands) = table.get(&key) {
                        for r in cands {
                            let mut combined = l.clone();
                            combined.extend(r.iter().cloned());
                            if let Some(res) = residual {
                                if !res.eval_predicate(&row_resolver(&plan.cols, &combined))? {
                                    continue;
                                }
                            }
                            matched = true;
                            out.push(combined);
                        }
                    }
                }
                if !matched && *kind == JoinKind::Left {
                    let mut combined = l.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(combined);
                }
            }
            Ok(out)
        }
        PlanOp::NlJoin { left, right, kind, on } => {
            let lrows = exec_plan(db, left)?;
            let rrows = exec_plan(db, right)?;
            let right_width = right.cols.len();
            let mut out = Vec::new();
            for l in &lrows {
                let mut matched = false;
                for r in &rrows {
                    db.stats().add_scanned(1);
                    let mut combined = l.clone();
                    combined.extend(r.iter().cloned());
                    if let Some(cond) = on {
                        if !cond.eval_predicate(&row_resolver(&plan.cols, &combined))? {
                            continue;
                        }
                    }
                    matched = true;
                    out.push(combined);
                }
                if !matched && *kind == JoinKind::Left {
                    let mut combined = l.clone();
                    combined.extend(std::iter::repeat_n(Value::Null, right_width));
                    out.push(combined);
                }
            }
            Ok(out)
        }
        PlanOp::Filter { input, pred } => {
            let rows = exec_plan(db, input)?;
            let mut out = Vec::new();
            for r in rows {
                if pred.eval_predicate(&row_resolver(&input.cols, &r))? {
                    out.push(r);
                }
            }
            Ok(out)
        }
        PlanOp::Project { input, exprs } => {
            let rows = exec_plan(db, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let resolver = row_resolver(&input.cols, &r);
                let mut projected = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    projected.push(e.eval(&resolver)?);
                }
                out.push(projected);
            }
            Ok(out)
        }
        PlanOp::Distinct { input } => {
            let rows = exec_plan(db, input)?;
            let mut seen = std::collections::HashSet::new();
            let mut out = Vec::new();
            for r in rows {
                if seen.insert(r.clone()) {
                    out.push(r);
                }
            }
            Ok(out)
        }
    }
}
