//! Relational views, including the updatable join views required by the
//! *internal* strategy of §6.2.1.
//!
//! The internal strategy maps the XML view to a relational view built from
//! nested LEFT JOINs (Fig. 11) and converts the XML update into an update of
//! that relational view. Inserting a view tuple decomposes, table by table
//! along the join tree, into: verify the row if its key already exists
//! (values must be consistent), or insert a new base row otherwise. Deletes
//! address the right-most (finest-granularity) table of the join tree.

use std::collections::HashMap;

use crate::db::Db;
use crate::error::{RdbError, Result};
use crate::expr::{ColRef, Expr};
use crate::sql::ast::{FromItem, Select, SelectItem};
use crate::types::Value;

/// Union-find over `(binding, column)` pairs for join-condition equality
/// propagation: if `r.bookid = b.bookid` is an ON condition, a value known
/// for `b.bookid` is known for `r.bookid` too.
#[derive(Default)]
struct ColUnion {
    parent: HashMap<(String, String), (String, String)>,
}

impl ColUnion {
    fn key(c: &ColRef) -> (String, String) {
        (c.table.to_ascii_lowercase(), c.column.to_ascii_lowercase())
    }

    fn find(&mut self, k: (String, String)) -> (String, String) {
        let p = match self.parent.get(&k) {
            Some(p) if *p != k => p.clone(),
            _ => return k,
        };
        let root = self.find(p);
        self.parent.insert(k, root.clone());
        root
    }

    fn union(&mut self, a: &ColRef, b: &ColRef) {
        let ra = self.find(Self::key(a));
        let rb = self.find(Self::key(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn root(&mut self, c: &ColRef) -> (String, String) {
        self.find(Self::key(c))
    }
}

/// Static description of a view: which base column each output column comes
/// from, the join tree's tables in order, and the equality classes.
struct ViewShape {
    /// (output name lowercase) → source column.
    output: Vec<(String, ColRef)>,
    /// Base tables in join-tree order: (table, binding).
    tables: Vec<(String, String)>,
    union: ColUnion,
}

fn analyse(db: &Db, view_name: &str) -> Result<ViewShape> {
    let def =
        db.view_def(view_name).ok_or_else(|| RdbError::NoSuchTable(view_name.to_string()))?.clone();
    shape_of(db, &def.select, view_name)
}

fn shape_of(db: &Db, select: &Select, view_name: &str) -> Result<ViewShape> {
    let mut output = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Expr { expr: Expr::Column(c), alias } => {
                let name = alias.clone().unwrap_or_else(|| c.column.clone());
                output.push((name.to_ascii_lowercase(), c.clone()));
            }
            _ => {
                return Err(RdbError::ViewNotUpdatable(format!(
                    "{view_name}: only plain column projections are updatable"
                )))
            }
        }
    }
    let mut tables = Vec::new();
    let mut union = ColUnion::default();
    for item in &select.from {
        collect_tables(db, item, &mut tables, &mut union)?;
    }
    if let Some(w) = &select.where_clause {
        for c in w.conjuncts() {
            if let Some((a, b)) = c.as_column_equality() {
                union.union(a, b);
            }
        }
    }
    Ok(ViewShape { output, tables, union })
}

fn collect_tables(
    db: &Db,
    item: &FromItem,
    tables: &mut Vec<(String, String)>,
    union: &mut ColUnion,
) -> Result<()> {
    match item {
        FromItem::Table(t) => {
            if db.schema().table(&t.table).is_none() {
                return Err(RdbError::NoSuchTable(t.table.clone()));
            }
            tables.push((t.table.clone(), t.binding().to_string()));
            Ok(())
        }
        FromItem::Join { left, right, on, .. } => {
            collect_tables(db, left, tables, union)?;
            collect_tables(db, right, tables, union)?;
            for c in on.conjuncts() {
                if let Some((a, b)) = c.as_column_equality() {
                    union.union(a, b);
                }
            }
            Ok(())
        }
    }
}

/// Insert rows through a join view (internal strategy).
///
/// For each base table along the join tree, in order:
/// * if none of its columns received a value, the table is skipped
///   (LEFT JOIN allows the absence of the right side);
/// * if its primary key is derivable (directly or via join-equalities) and a
///   row with that key exists, every supplied value must match the stored
///   row, otherwise the insert is rejected;
/// * if the key does not exist, a new base row is inserted (subject to all
///   base constraints).
///
/// Returns the number of **base** rows inserted.
pub fn insert_into_view(
    db: &mut Db,
    view_name: &str,
    columns: &[String],
    rows: &[Vec<Value>],
) -> Result<usize> {
    let mut shape = analyse(db, view_name)?;
    // Resolve the supplied column list against the view's output.
    let targets: Vec<usize> = if columns.is_empty() {
        (0..shape.output.len()).collect()
    } else {
        columns
            .iter()
            .map(|c| {
                shape.output.iter().position(|(n, _)| n.eq_ignore_ascii_case(c)).ok_or_else(|| {
                    RdbError::NoSuchColumn { table: view_name.to_string(), column: c.clone() }
                })
            })
            .collect::<Result<_>>()?
    };

    let mut inserted = 0;
    for row in rows {
        if row.len() != targets.len() {
            return Err(RdbError::Arity {
                table: view_name.to_string(),
                expected: targets.len(),
                got: row.len(),
            });
        }
        // Known values per equality-class root.
        let mut known: HashMap<(String, String), Value> = HashMap::new();
        for (ti, v) in targets.iter().zip(row) {
            if v.is_null() {
                continue;
            }
            let (_, src) = &shape.output[*ti];
            let root = shape.union.root(src);
            known.insert(root, v.clone());
        }
        let tables = shape.tables.clone();
        for (table, binding) in &tables {
            let schema = db.schema().table(table).expect("view over known table").clone();
            // Values available for this table's columns.
            let mut vals: Vec<Option<Value>> = Vec::with_capacity(schema.columns.len());
            let mut any = false;
            for col in &schema.columns {
                let root = shape.union.root(&ColRef::new(binding.clone(), col.name.clone()));
                let v = known.get(&root).cloned();
                any |= v.is_some();
                vals.push(v);
            }
            if !any {
                continue; // nothing supplied for this table
            }
            // Key derivable?
            let key_vals: Option<Vec<Value>> = schema
                .primary_key
                .iter()
                .map(|k| {
                    let i = schema.column_index(k).expect("pk column");
                    vals[i].clone()
                })
                .collect();
            let Some(key_vals) = key_vals else {
                return Err(RdbError::ViewNotUpdatable(format!(
                    "{view_name}: key of {table} not derivable from the supplied values"
                )));
            };
            let existing = db.rows_matching(table, &schema.primary_key, &key_vals)?;
            match existing.first() {
                Some(rid) => {
                    // Verify the supplied values agree with the stored row.
                    let stored = db
                        .table_data(table)
                        .and_then(|d| d.heap.get(*rid))
                        .cloned()
                        .expect("matched row");
                    for (i, v) in vals.iter().enumerate() {
                        if let Some(v) = v {
                            if stored[i].sql_eq(v) != Some(true) {
                                return Err(RdbError::ViewNotUpdatable(format!(
                                    "{view_name}: value for {table}.{} conflicts with the \
                                     existing row ({} vs {})",
                                    schema.columns[i].name, v, stored[i]
                                )));
                            }
                        }
                    }
                }
                None => {
                    let full: Vec<Value> =
                        vals.into_iter().map(|v| v.unwrap_or(Value::Null)).collect();
                    db.insert(table, vec![full])?;
                    inserted += 1;
                }
            }
        }
    }
    Ok(inserted)
}

/// Delete through a join view: removes rows of the **right-most** table of
/// the join tree whose key values appear in view rows matching `pred`.
///
/// Returns the number of base rows deleted.
pub fn delete_from_view(db: &mut Db, view_name: &str, pred: Option<&Expr>) -> Result<usize> {
    delete_from_view_target(db, view_name, pred, None)
}

/// Delete through a join view, targeting a specific (key-preserved) base
/// table; defaults to the right-most table of the join tree.
pub fn delete_from_view_target(
    db: &mut Db,
    view_name: &str,
    pred: Option<&Expr>,
    target: Option<&str>,
) -> Result<usize> {
    let mut shape = analyse(db, view_name)?;
    let def = db.view_def(view_name).expect("analysed above").clone();
    let chosen = match target {
        Some(t) => {
            shape.tables.iter().find(|(tab, _)| tab.eq_ignore_ascii_case(t)).cloned().ok_or_else(
                || RdbError::ViewNotUpdatable(format!("{view_name}: {t} is not part of the view")),
            )?
        }
        None => shape
            .tables
            .last()
            .cloned()
            .ok_or_else(|| RdbError::ViewNotUpdatable(format!("{view_name}: no tables")))?,
    };
    let (target_table, target_binding) = chosen;
    let schema = db.schema().table(&target_table).expect("known table").clone();

    // The target's key columns must be recoverable from the view output.
    let mut key_outputs: Vec<usize> = Vec::new();
    for k in &schema.primary_key {
        let root = shape.union.root(&ColRef::new(target_binding.clone(), k.clone()));
        let pos = shape.output.iter().position(|(_, src)| shape.union.root(src) == root);
        match pos {
            Some(p) => key_outputs.push(p),
            None => {
                return Err(RdbError::ViewNotUpdatable(format!(
                    "{view_name}: key column {target_table}.{k} is not visible in the view"
                )))
            }
        }
    }

    // Evaluate the view, filter with `pred` over output column names.
    let rs = db.query(&def.select)?;
    let mut deleted = 0;
    for row in &rs.rows {
        if let Some(p) = pred {
            let resolver = |c: &ColRef| -> Result<Value> {
                let idx = shape
                    .output
                    .iter()
                    .position(|(n, _)| n.eq_ignore_ascii_case(&c.column))
                    .ok_or_else(|| RdbError::NoSuchColumn {
                        table: view_name.to_string(),
                        column: c.column.clone(),
                    })?;
                Ok(row[idx].clone())
            };
            if !p.eval_predicate(&resolver)? {
                continue;
            }
        }
        let key: Vec<Value> = key_outputs.iter().map(|&i| row[i].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue; // left-join padding: no base row to delete
        }
        for rid in db.rows_matching(&target_table, &schema.primary_key, &key)? {
            deleted += db.delete_rid(&target_table, rid)?;
        }
    }
    Ok(deleted)
}
