//! Tuple storage: slotted per-table heaps addressed by [`RowId`].
//!
//! The paper's translated updates address tuples by Oracle `ROWID`
//! (e.g. `delete from book where rowid = t3` in §5). `RowId` plays that role:
//! stable for the lifetime of a row, never reused within a table, usable in
//! undo logs for exact rollback.

use crate::types::Value;

/// Stable address of a row within its table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One stored tuple.
pub type Row = Vec<Value>;

/// Heap of rows for one table. Deletions leave tombstones so RowIds stay
/// stable; `compact` statistics are available for tests.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    slots: Vec<Option<Row>>,
    live: usize,
}

impl Heap {
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots including tombstones (bounded scan domain).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn insert(&mut self, row: Row) -> RowId {
        let id = RowId(self.slots.len() as u64);
        self.slots.push(Some(row));
        self.live += 1;
        id
    }

    /// Re-insert a row at the slot it previously occupied (rollback path).
    /// Panics if the slot is occupied — undo replay must be consistent.
    pub fn restore(&mut self, id: RowId, row: Row) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        assert!(self.slots[idx].is_none(), "restore into occupied slot {id}");
        self.slots[idx] = Some(row);
        self.live += 1;
    }

    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    pub fn delete(&mut self, id: RowId) -> Option<Row> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let row = slot.take();
        if row.is_some() {
            self.live -= 1;
        }
        row
    }

    /// Overwrite a row in place, returning the previous image.
    pub fn update(&mut self, id: RowId, row: Row) -> Option<Row> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        match slot {
            Some(old) => Some(std::mem::replace(old, row)),
            None => None,
        }
    }

    /// Iterate live rows with their RowIds.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        vec![Value::Int(i)]
    }

    #[test]
    fn insert_get_delete() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        let b = h.insert(row(2));
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(a), Some(&row(1)));
        assert_eq!(h.delete(a), Some(row(1)));
        assert_eq!(h.get(a), None);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(b), Some(&row(2)));
    }

    #[test]
    fn rowids_are_never_reused() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        h.delete(a);
        let b = h.insert(row(2));
        assert_ne!(a, b);
    }

    #[test]
    fn restore_rehydrates_exact_slot() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        let _b = h.insert(row(2));
        let old = h.delete(a).unwrap();
        h.restore(a, old);
        assert_eq!(h.get(a), Some(&row(1)));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        h.insert(row(2));
        h.insert(row(3));
        h.delete(a);
        let ids: Vec<i64> = h
            .scan()
            .map(|(_, r)| match r[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn update_returns_old_image() {
        let mut h = Heap::new();
        let a = h.insert(row(1));
        let old = h.update(a, row(9)).unwrap();
        assert_eq!(old, row(1));
        assert_eq!(h.get(a), Some(&row(9)));
    }
}
