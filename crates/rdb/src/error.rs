//! Error and warning types surfaced by the engine.
//!
//! U-Filter's *hybrid* strategy (§6.2.2) deliberately leans on the engine's
//! error/warning channel: a key conflict aborts the translated update batch,
//! and a delete touching zero tuples raises a warning. Both are modelled here.

use std::fmt;

/// Engine errors. Constraint violations carry enough structure for the
/// hybrid strategy to classify the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdbError {
    /// Table or view not found.
    NoSuchTable(String),
    /// Column not found in the named table.
    NoSuchColumn { table: String, column: String },
    /// Value does not conform to the declared column type.
    TypeMismatch { table: String, column: String, expected: String, got: String },
    /// NOT NULL column received NULL.
    NotNullViolation { table: String, column: String },
    /// Primary key or UNIQUE constraint violated.
    UniqueViolation { table: String, constraint: String, key: String },
    /// CHECK constraint evaluated to false.
    CheckViolation { table: String, constraint: String },
    /// Foreign key: referenced row missing on insert/update.
    ForeignKeyMissing { table: String, constraint: String, key: String },
    /// Foreign key: RESTRICT policy blocked a delete of a referenced row.
    ForeignKeyRestrict { table: String, constraint: String, key: String },
    /// SQL text failed to lex/parse.
    Parse(String),
    /// Statement is well-formed but cannot be executed (semantic error).
    Semantic(String),
    /// View is not updatable in the requested way (internal strategy, §6.2.1).
    ViewNotUpdatable(String),
    /// No active transaction for COMMIT/ROLLBACK.
    NoTransaction,
    /// Column count mismatch on INSERT.
    Arity { table: String, expected: usize, got: usize },
}

impl fmt::Display for RdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdbError::NoSuchTable(t) => write!(f, "no such table or view: {t}"),
            RdbError::NoSuchColumn { table, column } => {
                write!(f, "no such column: {table}.{column}")
            }
            RdbError::TypeMismatch { table, column, expected, got } => {
                write!(f, "type mismatch on {table}.{column}: expected {expected}, got {got}")
            }
            RdbError::NotNullViolation { table, column } => {
                write!(f, "NOT NULL violation on {table}.{column}")
            }
            RdbError::UniqueViolation { table, constraint, key } => {
                write!(f, "unique constraint {constraint} on {table} violated by key {key}")
            }
            RdbError::CheckViolation { table, constraint } => {
                write!(f, "check constraint {constraint} on {table} violated")
            }
            RdbError::ForeignKeyMissing { table, constraint, key } => write!(
                f,
                "foreign key {constraint} on {table}: referenced key {key} does not exist"
            ),
            RdbError::ForeignKeyRestrict { table, constraint, key } => write!(
                f,
                "foreign key {constraint}: delete of {table} key {key} blocked by RESTRICT"
            ),
            RdbError::Parse(m) => write!(f, "SQL parse error: {m}"),
            RdbError::Semantic(m) => write!(f, "semantic error: {m}"),
            RdbError::ViewNotUpdatable(m) => write!(f, "view not updatable: {m}"),
            RdbError::NoTransaction => f.write_str("no active transaction"),
            RdbError::Arity { table, expected, got } => {
                write!(f, "INSERT into {table}: expected {expected} values, got {got}")
            }
        }
    }
}

impl std::error::Error for RdbError {}

/// Non-fatal conditions reported alongside a successful statement,
/// mirroring the "zero tuples deleted" warning of §6.2.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A DELETE matched no rows.
    ZeroRowsDeleted { table: String },
    /// An UPDATE matched no rows.
    ZeroRowsUpdated { table: String },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::ZeroRowsDeleted { table } => write!(f, "0 tuples deleted from {table}"),
            Warning::ZeroRowsUpdated { table } => write!(f, "0 tuples updated in {table}"),
        }
    }
}

pub type Result<T> = std::result::Result<T, RdbError>;
