//! The database facade: catalog, DDL, DML with full constraint enforcement,
//! transactions, views, and probe-result materialization.

use std::cell::Cell;
use std::collections::HashMap;

use crate::error::{RdbError, Result, Warning};
use crate::exec::{self, ResultSet};
use crate::expr::{ColRef, Expr};
use crate::index::{Index, IndexKind};
use crate::schema::{Column, DatabaseSchema, DeletePolicy, TableSchema};
use crate::sql::ast::{CreateView, FromItem, Select, SelectItem, Stmt, TableRef};
use crate::sql::parser::Parser;
use crate::storage::{Heap, Row, RowId};
use crate::txn::{Undo, UndoLog};
use crate::types::{DataType, Value};

/// Execution counters, readable by tests and benches.
#[derive(Debug, Default, Clone)]
pub struct ExecStats {
    rows_scanned: Cell<u64>,
    index_lookups: Cell<u64>,
    hash_probes: Cell<u64>,
}

impl ExecStats {
    pub fn add_scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    pub fn add_index_lookup(&self, n: u64) {
        self.index_lookups.set(self.index_lookups.get() + n);
    }

    pub fn add_hash_probe(&self, n: u64) {
        self.hash_probes.set(self.hash_probes.get() + n);
    }

    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.get()
    }

    pub fn index_lookups(&self) -> u64 {
        self.index_lookups.get()
    }

    pub fn hash_probes(&self) -> u64 {
        self.hash_probes.get()
    }

    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.index_lookups.set(0);
        self.hash_probes.set(0);
    }
}

/// Planner switches (used by ablation benches).
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    pub enable_index_join: bool,
    pub enable_hash_join: bool,
}

impl Default for PlannerConfig {
    fn default() -> PlannerConfig {
        PlannerConfig { enable_index_join: true, enable_hash_join: true }
    }
}

/// Storage + indexes of one table.
#[derive(Debug, Default, Clone)]
pub struct TableData {
    pub heap: Heap,
    pub indexes: Vec<Index>,
}

/// Outcome of one executed statement.
#[derive(Debug)]
pub struct ExecOutcome {
    pub result: Option<ResultSet>,
    pub affected: usize,
    pub warnings: Vec<Warning>,
}

impl ExecOutcome {
    fn ddl() -> ExecOutcome {
        ExecOutcome { result: None, affected: 0, warnings: Vec::new() }
    }
}

/// An in-memory relational database.
#[derive(Clone)]
pub struct Db {
    schema: DatabaseSchema,
    data: HashMap<String, TableData>,
    views: HashMap<String, CreateView>,
    txn: Option<UndoLog>,
    planner: PlannerConfig,
    stats: ExecStats,
}

impl Db {
    pub fn new() -> Db {
        Db {
            schema: DatabaseSchema::new(),
            data: HashMap::new(),
            views: HashMap::new(),
            txn: None,
            planner: PlannerConfig::default(),
            stats: ExecStats::default(),
        }
    }

    /// Create a database with every table of `schema`.
    pub fn with_schema(schema: DatabaseSchema) -> Result<Db> {
        let mut db = Db::new();
        for t in schema.tables {
            db.create_table(t)?;
        }
        db.validate_foreign_key_targets()?;
        Ok(db)
    }

    // ---- accessors used by the executor ---------------------------------

    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    pub fn table_data(&self, name: &str) -> Option<&TableData> {
        self.data.get(&name.to_ascii_lowercase())
    }

    pub fn view_def(&self, name: &str) -> Option<&CreateView> {
        self.views.get(&name.to_ascii_lowercase())
    }

    pub fn planner_config(&self) -> PlannerConfig {
        self.planner
    }

    pub fn set_planner_config(&mut self, cfg: PlannerConfig) {
        self.planner = cfg;
    }

    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Find an index on `table` whose columns exactly cover `cols`
    /// (qualified with `binding`). Returns the index position.
    pub fn find_index(&self, table: &str, cols: &[ColRef], binding: &str) -> Option<usize> {
        let schema = self.schema.table(table)?;
        let data = self.table_data(table)?;
        let mut wanted: Vec<usize> = Vec::new();
        for c in cols {
            if !c.table.is_empty() && !c.table.eq_ignore_ascii_case(binding) {
                return None;
            }
            wanted.push(schema.column_index(&c.column)?);
        }
        wanted.sort_unstable();
        wanted.dedup();
        data.indexes.iter().position(|ix| {
            let mut have = ix.columns.clone();
            have.sort_unstable();
            have == wanted
        })
    }

    // ---- DDL -------------------------------------------------------------

    /// Create a table plus its key/unique/foreign-key indexes.
    pub fn create_table(&mut self, table: TableSchema) -> Result<()> {
        let key = table.name.to_ascii_lowercase();
        if self.data.contains_key(&key) {
            return Err(RdbError::Semantic(format!("table {} already exists", table.name)));
        }
        let mut data = TableData::default();
        // Primary-key index.
        if !table.primary_key.is_empty() {
            let cols = Self::column_positions(&table, &table.primary_key)?;
            data.indexes.push(Index::new(
                format!("{}_pk", table.name),
                cols,
                true,
                IndexKind::Hash,
            ));
        }
        // UNIQUE column indexes.
        for (i, c) in table.columns.iter().enumerate() {
            if c.unique {
                data.indexes.push(Index::new(
                    format!("{}_{}_unique", table.name, c.name),
                    vec![i],
                    true,
                    IndexKind::Hash,
                ));
            }
        }
        // Foreign-key (referencing-side) indexes — non-unique.
        for fk in &table.foreign_keys {
            let cols = Self::column_positions(&table, &fk.columns)?;
            // Skip if an index on the same columns already exists.
            let dup = data.indexes.iter().any(|ix| {
                let mut a = ix.columns.clone();
                let mut b = cols.clone();
                a.sort_unstable();
                b.sort_unstable();
                a == b
            });
            if !dup {
                data.indexes.push(Index::new(
                    format!("{}_{}", table.name, fk.name),
                    cols,
                    false,
                    IndexKind::Hash,
                ));
            }
        }
        self.data.insert(key, data);
        self.schema.add(table);
        Ok(())
    }

    fn column_positions(table: &TableSchema, names: &[String]) -> Result<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                table.column_index(n).ok_or_else(|| RdbError::NoSuchColumn {
                    table: table.name.clone(),
                    column: n.clone(),
                })
            })
            .collect()
    }

    fn validate_foreign_key_targets(&self) -> Result<()> {
        for (owner, fk) in self.schema.foreign_keys() {
            let target = self
                .schema
                .table(&fk.ref_table)
                .ok_or_else(|| RdbError::NoSuchTable(fk.ref_table.clone()))?;
            for c in &fk.ref_columns {
                if target.column_index(c).is_none() {
                    return Err(RdbError::NoSuchColumn {
                        table: fk.ref_table.clone(),
                        column: c.clone(),
                    });
                }
            }
            let _ = owner;
        }
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.data.remove(&key).is_none() {
            return Err(RdbError::NoSuchTable(name.to_string()));
        }
        self.schema.tables.retain(|t| !t.name.eq_ignore_ascii_case(name));
        Ok(())
    }

    pub fn create_view(&mut self, view: CreateView) -> Result<()> {
        let key = view.name.to_ascii_lowercase();
        if self.views.contains_key(&key) || self.data.contains_key(&key) {
            return Err(RdbError::Semantic(format!("{} already exists", view.name)));
        }
        self.views.insert(key, view);
        Ok(())
    }

    /// Materialize a query result as a plain table **without indexes or
    /// constraints** — the probe-result tables (`TAB_book` in §6.1) that the
    /// outside strategy joins against.
    pub fn materialize(&mut self, name: &str, select: &Select) -> Result<usize> {
        let rs = self.query(select)?;
        let mut table = TableSchema::new(name);
        let mut seen: HashMap<String, usize> = HashMap::new();
        for (i, c) in rs.columns.iter().enumerate() {
            let mut col_name = c.column.clone();
            let n = seen.entry(col_name.to_ascii_lowercase()).or_insert(0);
            *n += 1;
            if *n > 1 {
                col_name = format!("{col_name}_{n}");
            }
            let ty = rs.rows.iter().find_map(|r| r[i].data_type()).unwrap_or(DataType::Str);
            table = table.column(Column::new(col_name, ty));
        }
        let key = name.to_ascii_lowercase();
        if self.data.contains_key(&key) {
            self.drop_table(name)?;
        }
        let count = rs.rows.len();
        // No indexes: insert straight into the heap.
        let mut data = TableData::default();
        for row in rs.rows {
            data.heap.insert(row);
        }
        self.data.insert(key, data);
        self.schema.add(table);
        Ok(count)
    }

    // ---- queries ----------------------------------------------------------

    pub fn query(&self, select: &Select) -> Result<ResultSet> {
        exec::run_select(self, select)
    }

    pub fn query_sql(&self, sql: &str) -> Result<ResultSet> {
        let sel = Parser::parse_select(sql)?;
        self.query(&sel)
    }

    /// Parse and execute any statement.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = Parser::parse_stmt(sql)?;
        self.run(stmt)
    }

    /// Execute a `;`-separated script (string literals may contain `;`).
    /// Statements run in order; the first error aborts and is returned.
    /// Returns the outcome of the last statement.
    pub fn execute_script(&mut self, script: &str) -> Result<Option<ExecOutcome>> {
        let mut last = None;
        for stmt in split_script(script) {
            let trimmed = stmt.trim();
            if trimmed.is_empty() {
                continue;
            }
            last = Some(self.execute_sql(trimmed)?);
        }
        Ok(last)
    }

    pub fn run(&mut self, stmt: Stmt) -> Result<ExecOutcome> {
        match stmt {
            Stmt::Select(s) => {
                let rs = self.query(&s)?;
                Ok(ExecOutcome { affected: rs.len(), result: Some(rs), warnings: Vec::new() })
            }
            Stmt::Explain(s) => {
                let plan = exec::plan_select(self, &s)?;
                let rows: Vec<Row> = plan.explain().lines().map(|l| vec![Value::str(l)]).collect();
                let rs = ResultSet { columns: vec![ColRef::new("", "plan")], rows };
                Ok(ExecOutcome { affected: rs.len(), result: Some(rs), warnings: Vec::new() })
            }
            Stmt::Insert(i) => {
                if self.views.contains_key(&i.table.to_ascii_lowercase()) {
                    let n = crate::view::insert_into_view(self, &i.table, &i.columns, &i.rows)?;
                    return Ok(ExecOutcome { result: None, affected: n, warnings: Vec::new() });
                }
                let n = self.insert_with_columns(&i.table, &i.columns, i.rows)?;
                Ok(ExecOutcome { result: None, affected: n, warnings: Vec::new() })
            }
            Stmt::Delete(d) => {
                let (n, warnings) = self.delete_where(&d.table, d.where_clause.as_ref())?;
                Ok(ExecOutcome { result: None, affected: n, warnings })
            }
            Stmt::Update(u) => {
                let (n, warnings) =
                    self.update_where(&u.table, &u.assignments, u.where_clause.as_ref())?;
                Ok(ExecOutcome { result: None, affected: n, warnings })
            }
            Stmt::CreateTable(t) => {
                self.create_table(t)?;
                Ok(ExecOutcome::ddl())
            }
            Stmt::CreateView(v) => {
                self.create_view(v)?;
                Ok(ExecOutcome::ddl())
            }
            Stmt::DropTable(t) => {
                self.drop_table(&t)?;
                Ok(ExecOutcome::ddl())
            }
            Stmt::Begin => {
                self.begin()?;
                Ok(ExecOutcome::ddl())
            }
            Stmt::Commit => {
                self.commit()?;
                Ok(ExecOutcome::ddl())
            }
            Stmt::Rollback => {
                self.rollback()?;
                Ok(ExecOutcome::ddl())
            }
        }
    }

    // ---- transactions ------------------------------------------------------

    pub fn begin(&mut self) -> Result<()> {
        if self.txn.is_some() {
            return Err(RdbError::Semantic("transaction already active".into()));
        }
        self.txn = Some(UndoLog::new());
        Ok(())
    }

    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    pub fn commit(&mut self) -> Result<()> {
        self.txn.take().ok_or(RdbError::NoTransaction)?;
        Ok(())
    }

    pub fn rollback(&mut self) -> Result<()> {
        let mut log = self.txn.take().ok_or(RdbError::NoTransaction)?;
        let records: Vec<Undo> = log.drain_reverse().collect();
        self.replay_undo(records);
        Ok(())
    }

    fn replay_undo(&mut self, records: Vec<Undo>) {
        for u in records {
            match u {
                Undo::Insert { table, rid } => {
                    self.phys_delete_unchecked(&table, rid);
                }
                Undo::Delete { table, rid, row } => {
                    self.phys_restore(&table, rid, row);
                }
                Undo::Update { table, rid, old } => {
                    self.phys_overwrite(&table, rid, old);
                }
            }
        }
    }

    fn finish_statement(&mut self, local: Vec<Undo>) {
        if let Some(t) = &mut self.txn {
            t.extend(local);
        }
    }

    fn abort_statement(&mut self, local: Vec<Undo>) {
        let records: Vec<Undo> = local.into_iter().rev().collect();
        self.replay_undo(records);
    }

    // ---- physical operations (index-maintaining, no constraint checks) -----

    fn phys_insert(&mut self, table: &str, row: Row) -> Result<RowId> {
        let schema_name = self
            .schema
            .table(table)
            .map(|t| t.name.clone())
            .ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
        let data = self.data.get_mut(&table.to_ascii_lowercase()).expect("data for table");
        for ix in &data.indexes {
            let key = ix.key_of(&row);
            if ix.conflicts(&key) {
                let rendered: Vec<String> = key.iter().map(|v| v.to_string()).collect();
                return Err(RdbError::UniqueViolation {
                    table: schema_name,
                    constraint: ix.name.clone(),
                    key: format!("({})", rendered.join(", ")),
                });
            }
        }
        let rid = data.heap.insert(row.clone());
        for ix in &mut data.indexes {
            let key = ix.key_of(&row);
            ix.insert(key, rid);
        }
        Ok(rid)
    }

    fn phys_delete_unchecked(&mut self, table: &str, rid: RowId) -> Option<Row> {
        let data = self.data.get_mut(&table.to_ascii_lowercase())?;
        let row = data.heap.delete(rid)?;
        for ix in &mut data.indexes {
            let key = ix.key_of(&row);
            ix.remove(&key, rid);
        }
        Some(row)
    }

    fn phys_restore(&mut self, table: &str, rid: RowId, row: Row) {
        let data = self.data.get_mut(&table.to_ascii_lowercase()).expect("table exists");
        data.heap.restore(rid, row.clone());
        for ix in &mut data.indexes {
            let key = ix.key_of(&row);
            ix.insert(key, rid);
        }
    }

    fn phys_overwrite(&mut self, table: &str, rid: RowId, new: Row) -> Option<Row> {
        let data = self.data.get_mut(&table.to_ascii_lowercase())?;
        let old = data.heap.update(rid, new.clone())?;
        for ix in &mut data.indexes {
            let old_key = ix.key_of(&old);
            ix.remove(&old_key, rid);
            let new_key = ix.key_of(&new);
            ix.insert(new_key, rid);
        }
        Some(old)
    }

    // ---- validation ---------------------------------------------------------

    /// Type, NOT NULL and CHECK validation; coerces values in place.
    fn validate_row(&self, table: &TableSchema, row: &mut Row) -> Result<()> {
        if row.len() != table.columns.len() {
            return Err(RdbError::Arity {
                table: table.name.clone(),
                expected: table.columns.len(),
                got: row.len(),
            });
        }
        for (i, col) in table.columns.iter().enumerate() {
            if !row[i].conforms_to(col.ty) {
                return Err(RdbError::TypeMismatch {
                    table: table.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: row[i].data_type().map(|t| t.to_string()).unwrap_or_else(|| "NULL".into()),
                });
            }
            let v = std::mem::replace(&mut row[i], Value::Null);
            row[i] = v.coerce(col.ty);
            if col.not_null && row[i].is_null() {
                return Err(RdbError::NotNullViolation {
                    table: table.name.clone(),
                    column: col.name.clone(),
                });
            }
        }
        // NOT NULL on primary key members.
        for pk in &table.primary_key {
            let i = table.column_index(pk).expect("pk column exists");
            if row[i].is_null() {
                return Err(RdbError::NotNullViolation {
                    table: table.name.clone(),
                    column: pk.clone(),
                });
            }
        }
        // CHECK constraints; SQL semantics: NULL result passes.
        for check in &table.checks {
            let resolver = |c: &ColRef| -> Result<Value> {
                let idx = table.column_index(&c.column).ok_or_else(|| RdbError::NoSuchColumn {
                    table: table.name.clone(),
                    column: c.column.clone(),
                })?;
                Ok(row[idx].clone())
            };
            if let Value::Bool(false) = check.expr.eval(&resolver)? {
                return Err(RdbError::CheckViolation {
                    table: table.name.clone(),
                    constraint: check.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Foreign-key existence: every non-NULL FK value must match a row in
    /// the referenced table.
    fn validate_fk_exists(&self, table: &TableSchema, row: &Row) -> Result<()> {
        for fk in &table.foreign_keys {
            let vals: Vec<Value> = fk
                .columns
                .iter()
                .map(|c| row[table.column_index(c).expect("fk column")].clone())
                .collect();
            if vals.iter().any(Value::is_null) {
                continue;
            }
            if !self.ref_row_exists(&fk.ref_table, &fk.ref_columns, &vals)? {
                let rendered: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                return Err(RdbError::ForeignKeyMissing {
                    table: table.name.clone(),
                    constraint: fk.name.clone(),
                    key: format!("({})", rendered.join(", ")),
                });
            }
        }
        Ok(())
    }

    fn ref_row_exists(&self, table: &str, columns: &[String], vals: &[Value]) -> Result<bool> {
        Ok(!self.rows_matching(table, columns, vals)?.is_empty())
    }

    /// RowIds of rows in `table` whose `columns` equal `vals`, using an
    /// index when one covers the columns.
    pub fn rows_matching(
        &self,
        table: &str,
        columns: &[String],
        vals: &[Value],
    ) -> Result<Vec<RowId>> {
        let schema =
            self.schema.table(table).ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
        let data = self.table_data(table).expect("data for table");
        let positions: Vec<usize> = columns
            .iter()
            .map(|c| {
                schema.column_index(c).ok_or_else(|| RdbError::NoSuchColumn {
                    table: table.to_string(),
                    column: c.clone(),
                })
            })
            .collect::<Result<_>>()?;
        // Exact-cover index?
        let mut wanted = positions.clone();
        wanted.sort_unstable();
        if let Some(ix) = data.indexes.iter().find(|ix| {
            let mut have = ix.columns.clone();
            have.sort_unstable();
            have == wanted
        }) {
            // Reorder values to the index column order.
            let key: Vec<Value> = ix
                .columns
                .iter()
                .map(|ic| {
                    let at = positions.iter().position(|p| p == ic).expect("covered");
                    vals[at].clone()
                })
                .collect();
            self.stats.add_index_lookup(1);
            return Ok(ix.lookup(&key));
        }
        // Fallback: scan.
        let mut out = Vec::new();
        for (rid, row) in data.heap.scan() {
            self.stats.add_scanned(1);
            let matches = positions.iter().zip(vals).all(|(&p, v)| row[p].sql_eq(v) == Some(true));
            if matches {
                out.push(rid);
            }
        }
        Ok(out)
    }

    // ---- DML -----------------------------------------------------------------

    /// Positional insert of full rows.
    pub fn insert(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        self.insert_with_columns(table, &[], rows)
    }

    /// Insert with an explicit column list (missing columns become NULL).
    pub fn insert_with_columns(
        &mut self,
        table: &str,
        columns: &[String],
        rows: Vec<Row>,
    ) -> Result<usize> {
        let schema = self
            .schema
            .table(table)
            .cloned()
            .ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
        let mut local: Vec<Undo> = Vec::new();
        let result = (|| -> Result<usize> {
            let mut n = 0;
            for row in rows {
                let mut full = if columns.is_empty() {
                    row
                } else {
                    if row.len() != columns.len() {
                        return Err(RdbError::Arity {
                            table: schema.name.clone(),
                            expected: columns.len(),
                            got: row.len(),
                        });
                    }
                    let mut full = vec![Value::Null; schema.columns.len()];
                    for (c, v) in columns.iter().zip(row) {
                        let i = schema.column_index(c).ok_or_else(|| RdbError::NoSuchColumn {
                            table: schema.name.clone(),
                            column: c.clone(),
                        })?;
                        full[i] = v;
                    }
                    full
                };
                self.validate_row(&schema, &mut full)?;
                self.validate_fk_exists(&schema, &full)?;
                let rid = self.phys_insert(&schema.name, full)?;
                local.push(Undo::Insert { table: schema.name.clone(), rid });
                n += 1;
            }
            Ok(n)
        })();
        match result {
            Ok(n) => {
                self.finish_statement(local);
                Ok(n)
            }
            Err(e) => {
                self.abort_statement(local);
                Err(e)
            }
        }
    }

    /// Delete rows matching `pred`, honouring each referencing foreign key's
    /// delete policy (CASCADE / SET NULL / RESTRICT). Returns the number of
    /// rows deleted **in the target table** plus warnings.
    pub fn delete_where(
        &mut self,
        table: &str,
        pred: Option<&Expr>,
    ) -> Result<(usize, Vec<Warning>)> {
        let schema_name = self
            .schema
            .table(table)
            .map(|t| t.name.clone())
            .ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
        let rids = self.select_rids(&schema_name, pred)?;
        let mut local: Vec<Undo> = Vec::new();
        let count = rids.len();
        let result = (|| -> Result<()> {
            for rid in rids {
                self.delete_one(&schema_name, rid, &mut local)?;
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.finish_statement(local);
                let warnings = if count == 0 {
                    vec![Warning::ZeroRowsDeleted { table: schema_name }]
                } else {
                    Vec::new()
                };
                Ok((count, warnings))
            }
            Err(e) => {
                self.abort_statement(local);
                Err(e)
            }
        }
    }

    /// Delete one row by RowId with policy propagation.
    pub fn delete_rid(&mut self, table: &str, rid: RowId) -> Result<usize> {
        let schema_name = self
            .schema
            .table(table)
            .map(|t| t.name.clone())
            .ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
        let mut local: Vec<Undo> = Vec::new();
        let result = self.delete_one(&schema_name, rid, &mut local);
        match result {
            Ok(()) => {
                self.finish_statement(local);
                Ok(1)
            }
            Err(e) => {
                self.abort_statement(local);
                Err(e)
            }
        }
    }

    fn delete_one(&mut self, table: &str, rid: RowId, local: &mut Vec<Undo>) -> Result<()> {
        let Some(row) = self.table_data(table).and_then(|d| d.heap.get(rid)).cloned() else {
            return Ok(()); // already gone (e.g. earlier cascade)
        };
        // Referencing foreign keys, with the key values this row carries.
        struct Child {
            table: String,
            fk_columns: Vec<String>,
            policy: DeletePolicy,
            fk_name: String,
            key: Vec<Value>,
        }
        let parent_schema = self.schema.table(table).expect("table exists").clone();
        let mut children: Vec<Child> = Vec::new();
        for (owner, fk) in self.schema.foreign_keys() {
            if !fk.ref_table.eq_ignore_ascii_case(table) {
                continue;
            }
            let key: Vec<Value> = fk
                .ref_columns
                .iter()
                .map(|c| row[parent_schema.column_index(c).expect("ref column")].clone())
                .collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            children.push(Child {
                table: owner.to_string(),
                fk_columns: fk.columns.clone(),
                policy: fk.on_delete,
                fk_name: fk.name.clone(),
                key,
            });
        }
        // RESTRICT pre-check before touching anything.
        for child in &children {
            if child.policy == DeletePolicy::Restrict {
                let hits = self.rows_matching(&child.table, &child.fk_columns, &child.key)?;
                if !hits.is_empty() {
                    let rendered: Vec<String> = child.key.iter().map(|v| v.to_string()).collect();
                    return Err(RdbError::ForeignKeyRestrict {
                        table: table.to_string(),
                        constraint: child.fk_name.clone(),
                        key: format!("({})", rendered.join(", ")),
                    });
                }
            }
        }
        // Delete the parent row.
        let deleted = self.phys_delete_unchecked(table, rid).expect("row read above");
        local.push(Undo::Delete { table: table.to_string(), rid, row: deleted });
        // Propagate.
        for child in children {
            let hits = self.rows_matching(&child.table, &child.fk_columns, &child.key)?;
            match child.policy {
                DeletePolicy::Cascade => {
                    for crid in hits {
                        self.delete_one(&child.table, crid, local)?;
                    }
                }
                DeletePolicy::SetNull => {
                    let cschema = self.schema.table(&child.table).expect("child exists").clone();
                    let positions: Vec<usize> = child
                        .fk_columns
                        .iter()
                        .map(|c| cschema.column_index(c).expect("fk column"))
                        .collect();
                    for p in &positions {
                        if cschema.columns[*p].not_null
                            || cschema.in_primary_key(&cschema.columns[*p].name)
                        {
                            return Err(RdbError::NotNullViolation {
                                table: child.table.clone(),
                                column: cschema.columns[*p].name.clone(),
                            });
                        }
                    }
                    for crid in hits {
                        let old = self
                            .table_data(&child.table)
                            .and_then(|d| d.heap.get(crid))
                            .cloned()
                            .expect("matched row");
                        let mut new = old.clone();
                        for p in &positions {
                            new[*p] = Value::Null;
                        }
                        self.phys_overwrite(&child.table, crid, new);
                        local.push(Undo::Update { table: child.table.clone(), rid: crid, old });
                    }
                }
                DeletePolicy::Restrict => {
                    // Pre-checked: no referencing rows can exist here.
                    debug_assert!(hits.is_empty());
                }
            }
        }
        Ok(())
    }

    /// Update rows matching `pred`.
    pub fn update_where(
        &mut self,
        table: &str,
        assignments: &[(String, Value)],
        pred: Option<&Expr>,
    ) -> Result<(usize, Vec<Warning>)> {
        let schema = self
            .schema
            .table(table)
            .cloned()
            .ok_or_else(|| RdbError::NoSuchTable(table.to_string()))?;
        let rids = self.select_rids(&schema.name, pred)?;
        let count = rids.len();
        let positions: Vec<(usize, Value)> = assignments
            .iter()
            .map(|(c, v)| {
                schema.column_index(c).map(|i| (i, v.clone())).ok_or_else(|| {
                    RdbError::NoSuchColumn { table: schema.name.clone(), column: c.clone() }
                })
            })
            .collect::<Result<_>>()?;
        let mut local: Vec<Undo> = Vec::new();
        let result = (|| -> Result<()> {
            for rid in &rids {
                let old = self
                    .table_data(&schema.name)
                    .and_then(|d| d.heap.get(*rid))
                    .cloned()
                    .expect("selected row");
                let mut new = old.clone();
                for (i, v) in &positions {
                    new[*i] = v.clone();
                }
                self.validate_row(&schema, &mut new)?;
                self.validate_fk_exists(&schema, &new)?;
                // Forbid changing a key that other rows reference.
                for (owner, fk) in self.schema.foreign_keys() {
                    if !fk.ref_table.eq_ignore_ascii_case(&schema.name) {
                        continue;
                    }
                    let changed = fk.ref_columns.iter().any(|c| {
                        let i = schema.column_index(c).expect("ref column");
                        old[i] != new[i]
                    });
                    if changed {
                        let key: Vec<Value> = fk
                            .ref_columns
                            .iter()
                            .map(|c| old[schema.column_index(c).expect("ref column")].clone())
                            .collect();
                        if !key.iter().any(Value::is_null)
                            && !self.rows_matching(owner, &fk.columns, &key)?.is_empty()
                        {
                            return Err(RdbError::Semantic(format!(
                                "cannot update {}: key referenced by {}",
                                schema.name, owner
                            )));
                        }
                    }
                }
                // Unique checks: phys_overwrite would clobber; check manually
                // for keys that changed.
                {
                    let data = self.table_data(&schema.name).expect("table data");
                    for ix in &data.indexes {
                        if !ix.unique {
                            continue;
                        }
                        let old_key = ix.key_of(&old);
                        let new_key = ix.key_of(&new);
                        if old_key != new_key && ix.conflicts(&new_key) {
                            let rendered: Vec<String> =
                                new_key.iter().map(|v| v.to_string()).collect();
                            return Err(RdbError::UniqueViolation {
                                table: schema.name.clone(),
                                constraint: ix.name.clone(),
                                key: format!("({})", rendered.join(", ")),
                            });
                        }
                    }
                }
                self.phys_overwrite(&schema.name, *rid, new);
                local.push(Undo::Update { table: schema.name.clone(), rid: *rid, old });
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.finish_statement(local);
                let warnings = if count == 0 {
                    vec![Warning::ZeroRowsUpdated { table: schema.name }]
                } else {
                    Vec::new()
                };
                Ok((count, warnings))
            }
            Err(e) => {
                self.abort_statement(local);
                Err(e)
            }
        }
    }

    /// RowIds of rows in `table` matching `pred` (planned like a query so
    /// indexes and subqueries work).
    fn select_rids(&self, table: &str, pred: Option<&Expr>) -> Result<Vec<RowId>> {
        let sel = Select::new(
            vec![SelectItem::Expr { expr: Expr::col(table, "rowid"), alias: None }],
            vec![FromItem::Table(TableRef::named(table))],
            pred.cloned(),
        );
        let rs = self.query(&sel)?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| match &r[0] {
                Value::Int(i) => RowId(*i as u64),
                other => unreachable!("rowid pseudo-column is Int, got {other}"),
            })
            .collect())
    }

    // ---- inspection helpers (tests, verification) -----------------------------

    /// All live rows of a table, sorted, for structural comparison.
    pub fn table_rows_sorted(&self, table: &str) -> Vec<Row> {
        let mut rows: Vec<Row> = self
            .table_data(table)
            .map(|d| d.heap.scan().map(|(_, r)| r.clone()).collect())
            .unwrap_or_default();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                match crate::types::total_cmp(x, y) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// Full content snapshot keyed by table name (base tables only).
    pub fn dump(&self) -> std::collections::BTreeMap<String, Vec<Row>> {
        self.schema
            .tables
            .iter()
            .map(|t| (t.name.clone(), self.table_rows_sorted(&t.name)))
            .collect()
    }

    /// Row count of a single table.
    pub fn row_count(&self, table: &str) -> usize {
        self.table_data(table).map(|d| d.heap.len()).unwrap_or(0)
    }

    // ---- snapshot / restore (execute-compare harnesses) -----------------------

    /// Capture a point-in-time copy of the whole database: schema, table
    /// heaps, indexes, views, and planner configuration. Snapshots taken
    /// from equal databases are equal (heap row-ids and index layout are
    /// copied verbatim), so `snapshot → mutate → restore → snapshot` yields
    /// a byte-stable state — the rollback primitive differential harnesses
    /// use around execute-recompute-compare runs.
    ///
    /// An open transaction's undo log is deliberately *not* captured:
    /// restoring into the middle of someone else's transaction would make
    /// its rollback undefined. Taking a snapshot inside a transaction is an
    /// error for the same reason.
    pub fn snapshot(&self) -> Result<DbSnapshot> {
        if self.txn.is_some() {
            return Err(RdbError::Semantic(
                "snapshot inside an open transaction (commit or rollback first)".into(),
            ));
        }
        Ok(DbSnapshot { db: Box::new(self.clone()) })
    }

    /// Restore the state captured by [`snapshot`](Self::snapshot),
    /// discarding every change made since (including schema changes). Any
    /// open transaction is discarded wholesale — the snapshot state already
    /// is the rollback target.
    pub fn restore(&mut self, snap: &DbSnapshot) {
        *self = (*snap.db).clone();
    }
}

/// An opaque point-in-time database copy — see [`Db::snapshot`].
#[derive(Clone)]
pub struct DbSnapshot {
    db: Box<Db>,
}

impl Default for Db {
    fn default() -> Db {
        Db::new()
    }
}

/// Split a SQL script on `;`, respecting single- and double-quoted strings
/// and `--` line comments.
pub fn split_script(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quote: Option<char> = None;
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        if let Some(q) = quote {
            cur.push(c);
            if c == q {
                quote = None;
            }
            continue;
        }
        match c {
            '\'' | '"' => {
                quote = Some(c);
                cur.push(c);
            }
            '-' if chars.peek() == Some(&'-') => {
                for n in chars.by_ref() {
                    if n == '\n' {
                        cur.push('\n');
                        break;
                    }
                }
            }
            ';' => {
                out.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod script_tests {
    use super::*;

    #[test]
    fn split_respects_quotes_and_comments() {
        let parts =
            split_script("INSERT INTO t VALUES ('a;b'); -- trailing; comment\nDELETE FROM t; ");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("'a;b'"));
        assert!(parts[1].trim().starts_with("DELETE"));
    }

    #[test]
    fn execute_script_runs_in_order() {
        let mut db = Db::new();
        db.execute_script(
            "CREATE TABLE t(a INT, CONSTRAINTS TPK PRIMARYKEY (a)); \
             INSERT INTO t VALUES (1); INSERT INTO t VALUES (2);",
        )
        .unwrap();
        assert_eq!(db.row_count("t"), 2);
        // First error aborts.
        let err = db.execute_script("INSERT INTO t VALUES (3); INSERT INTO t VALUES (3);");
        assert!(err.is_err());
        assert_eq!(db.row_count("t"), 3);
    }

    #[test]
    fn snapshot_restore_round_trips_data_and_schema() {
        let mut db = Db::new();
        db.execute_script(
            "CREATE TABLE t(a INT, b VARCHAR2(10), CONSTRAINTS TPK PRIMARYKEY (a)); \
             INSERT INTO t VALUES (1, 'one'); INSERT INTO t VALUES (2, 'two');",
        )
        .unwrap();
        let before = db.dump();
        let snap = db.snapshot().unwrap();

        // Mutate data *and* schema, then restore.
        db.execute_script(
            "DELETE FROM t WHERE a = 1; INSERT INTO t VALUES (9, 'nine'); \
             CREATE TABLE extra(x INT, CONSTRAINTS XPK PRIMARYKEY (x));",
        )
        .unwrap();
        assert_ne!(db.dump(), before);
        db.restore(&snap);
        assert_eq!(db.dump(), before);
        assert!(db.schema().table("extra").is_none(), "restored schema drops new table");

        // Determinism: snapshot → restore → snapshot yields equal dumps,
        // and restoring over an open transaction discards it cleanly.
        db.begin().unwrap();
        db.execute_sql("DELETE FROM t WHERE a = 2").unwrap();
        assert!(db.snapshot().is_err(), "snapshot inside a transaction is refused");
        db.restore(&snap);
        assert!(!db.in_transaction());
        assert_eq!(db.dump(), before);
    }
}
