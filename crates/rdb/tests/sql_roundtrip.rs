//! SQL Display ↔ parse round trips: every statement the translation engine
//! can emit must re-parse to an equivalent statement, so the printed SQL in
//! reports is executable verbatim.

use proptest::prelude::*;
use ufilter_rdb::{
    CmpOp, Delete, Expr, FromItem, Insert, Parser, Select, SelectItem, Stmt, TableRef, Value,
};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}"
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1000.0f64..1000.0).prop_map(|f| Value::Double((f * 100.0).round() / 100.0)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Value::Str),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// `col θ literal` or `a.col = b.col` conjunctions — the predicate shapes
/// probes and translated updates contain.
fn where_strategy() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        (
            ident(),
            ident(),
            cmp_strategy(),
            value_strategy().prop_filter("non-null", |v| !v.is_null())
        )
            .prop_map(|(t, c, op, v)| Expr::cmp(op, Expr::col(t, c), Expr::lit(v))),
        (ident(), ident(), ident(), ident())
            .prop_map(|(t1, c1, t2, c2)| { Expr::eq(Expr::col(t1, c1), Expr::col(t2, c2)) }),
        (
            ident(),
            ident(),
            prop::collection::vec(value_strategy().prop_filter("nn", |v| !v.is_null()), 1..4)
        )
            .prop_map(|(t, c, set)| Expr::InSet {
                expr: Box::new(Expr::col(t, c)),
                set,
                negated: false
            }),
    ];
    prop::collection::vec(atom, 1..4).prop_map(Expr::and)
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        prop::collection::vec((ident(), ident()), 1..4),
        prop::collection::vec(ident(), 1..3),
        prop::option::of(where_strategy()),
    )
        .prop_map(|(cols, tables, where_clause)| {
            let items = cols
                .into_iter()
                .map(|(t, c)| SelectItem::Expr { expr: Expr::col(t, c), alias: None })
                .collect();
            let from = tables.into_iter().map(|t| FromItem::Table(TableRef::named(t))).collect();
            Select::new(items, from, where_clause)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn select_display_reparses(sel in select_strategy()) {
        let text = sel.to_string();
        let parsed = Parser::parse_select(&text)
            .unwrap_or_else(|e| panic!("unparseable: {text}: {e}"));
        prop_assert_eq!(parsed, sel);
    }

    #[test]
    fn insert_display_reparses(
        table in ident(),
        cols in prop::collection::vec(ident(), 1..5),
        vals in prop::collection::vec(value_strategy(), 1..5),
    ) {
        let n = cols.len().min(vals.len());
        let ins = Stmt::Insert(Insert {
            table,
            columns: cols[..n].to_vec(),
            rows: vec![vals[..n].to_vec()],
        });
        let text = ins.to_string();
        let parsed = Parser::parse_stmt(&text)
            .unwrap_or_else(|e| panic!("unparseable: {text}: {e}"));
        prop_assert_eq!(parsed, ins);
    }

    #[test]
    fn delete_display_reparses(table in ident(), w in prop::option::of(where_strategy())) {
        let del = Stmt::Delete(Delete { table, where_clause: w });
        let text = del.to_string();
        let parsed = Parser::parse_stmt(&text)
            .unwrap_or_else(|e| panic!("unparseable: {text}: {e}"));
        prop_assert_eq!(parsed, del);
    }

    #[test]
    fn delete_with_in_subquery_reparses(
        table in ident(),
        col in ident(),
        sub in select_strategy(),
    ) {
        let del = Stmt::Delete(Delete {
            table: table.clone(),
            where_clause: Some(Expr::InSubquery {
                expr: Box::new(Expr::col(table, col)),
                query: Box::new(sub),
                negated: false,
            }),
        });
        let text = del.to_string();
        let parsed = Parser::parse_stmt(&text)
            .unwrap_or_else(|e| panic!("unparseable: {text}: {e}"));
        prop_assert_eq!(parsed, del);
    }
}
