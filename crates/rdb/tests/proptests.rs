//! Property tests over the relational engine: referential integrity under
//! random DML with random delete policies, rollback fidelity, and
//! index/heap consistency.

use proptest::prelude::*;
use ufilter_rdb::{Column, DataType, DatabaseSchema, Db, DeletePolicy, Expr, TableSchema, Value};

/// Two-level schema parent(id) ← child(id, parent_id) with a configurable
/// delete policy.
fn two_level(policy: DeletePolicy) -> DatabaseSchema {
    let mut s = DatabaseSchema::new();
    s.add(
        TableSchema::new("parent")
            .column(Column::new("id", DataType::Int))
            .column(Column::new("payload", DataType::Str))
            .primary_key(["id"]),
    );
    s.add(
        TableSchema::new("child")
            .column(Column::new("id", DataType::Int))
            .column(Column::new("parent_id", DataType::Int))
            .primary_key(["id"])
            .foreign_key("child_fk", vec!["parent_id"], "parent", vec!["id"], policy),
    );
    s
}

#[derive(Debug, Clone)]
enum Op {
    InsertParent(i64),
    InsertChild(i64, i64),
    DeleteParent(i64),
    DeleteChild(i64),
    UpdateParentPayload(i64, String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..20).prop_map(Op::InsertParent),
        ((0i64..40), (0i64..20)).prop_map(|(c, p)| Op::InsertChild(c, p)),
        (0i64..20).prop_map(Op::DeleteParent),
        (0i64..40).prop_map(Op::DeleteChild),
        ((0i64..20), "[a-z]{0,8}").prop_map(|(p, s)| Op::UpdateParentPayload(p, s)),
    ]
}

fn policy_strategy() -> impl Strategy<Value = DeletePolicy> {
    prop_oneof![
        Just(DeletePolicy::Cascade),
        Just(DeletePolicy::SetNull),
        Just(DeletePolicy::Restrict),
    ]
}

fn apply(db: &mut Db, op: &Op) {
    // Errors (constraint rejections) are expected; the invariant is that the
    // engine never *accepts* an integrity-violating state.
    let _ = match op {
        Op::InsertParent(id) => {
            db.insert("parent", vec![vec![Value::Int(*id), Value::str("p")]]).map(|_| ())
        }
        Op::InsertChild(id, pid) => {
            db.insert("child", vec![vec![Value::Int(*id), Value::Int(*pid)]]).map(|_| ())
        }
        Op::DeleteParent(id) => db
            .delete_where(
                "parent",
                Some(&Expr::eq(Expr::col("parent", "id"), Expr::lit(Value::Int(*id)))),
            )
            .map(|_| ()),
        Op::DeleteChild(id) => db
            .delete_where(
                "child",
                Some(&Expr::eq(Expr::col("child", "id"), Expr::lit(Value::Int(*id)))),
            )
            .map(|_| ()),
        Op::UpdateParentPayload(id, s) => db
            .update_where(
                "parent",
                &[("payload".to_string(), Value::str(s.clone()))],
                Some(&Expr::eq(Expr::col("parent", "id"), Expr::lit(Value::Int(*id)))),
            )
            .map(|_| ()),
    };
}

/// Every child's non-NULL parent_id refers to an existing parent.
fn referential_integrity_holds(db: &Db) -> bool {
    let parents: std::collections::HashSet<String> =
        db.table_rows_sorted("parent").into_iter().map(|r| r[0].render()).collect();
    db.table_rows_sorted("child")
        .into_iter()
        .all(|r| r[1].is_null() || parents.contains(&r[1].render()))
}

/// Primary keys are unique.
fn keys_unique(db: &Db, table: &str) -> bool {
    let rows = db.table_rows_sorted(table);
    let mut seen = std::collections::HashSet::new();
    rows.into_iter().all(|r| seen.insert(r[0].render()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_dml_preserves_integrity(
        policy in policy_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut db = Db::with_schema(two_level(policy)).unwrap();
        for op in &ops {
            apply(&mut db, op);
            prop_assert!(referential_integrity_holds(&db));
            prop_assert!(keys_unique(&db, "parent"));
            prop_assert!(keys_unique(&db, "child"));
        }
    }

    #[test]
    fn rollback_restores_byte_identical_state(
        policy in policy_strategy(),
        setup in prop::collection::vec(op_strategy(), 1..30),
        inside in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let mut db = Db::with_schema(two_level(policy)).unwrap();
        for op in &setup {
            apply(&mut db, op);
        }
        let before = db.dump();
        db.begin().unwrap();
        for op in &inside {
            apply(&mut db, op);
        }
        db.rollback().unwrap();
        prop_assert_eq!(db.dump(), before);
    }

    #[test]
    fn commit_equals_replay_without_txn(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // Running ops inside a committed transaction must land in the same
        // state as running them bare.
        let mut a = Db::with_schema(two_level(DeletePolicy::Cascade)).unwrap();
        a.begin().unwrap();
        for op in &ops {
            apply(&mut a, op);
        }
        a.commit().unwrap();

        let mut b = Db::with_schema(two_level(DeletePolicy::Cascade)).unwrap();
        for op in &ops {
            apply(&mut b, op);
        }
        prop_assert_eq!(a.dump(), b.dump());
    }

    #[test]
    fn index_lookup_agrees_with_scan(
        ops in prop::collection::vec(op_strategy(), 1..50),
        probe in 0i64..20,
    ) {
        let mut db = Db::with_schema(two_level(DeletePolicy::SetNull)).unwrap();
        for op in &ops {
            apply(&mut db, op);
        }
        // Index-backed lookup (children via FK index)…
        let via_index = db
            .rows_matching("child", &["parent_id".into()], &[Value::Int(probe)])
            .unwrap()
            .len();
        // …must agree with a predicate scan.
        let via_scan = db
            .table_rows_sorted("child")
            .into_iter()
            .filter(|r| r[1] == Value::Int(probe))
            .count();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn restrict_never_orphans_or_deletes_children(
        ops in prop::collection::vec(op_strategy(), 1..50),
    ) {
        // Under RESTRICT, a parent delete either fails or the parent had no
        // children; children are never cascaded away or nulled.
        let mut db = Db::with_schema(two_level(DeletePolicy::Restrict)).unwrap();
        for op in &ops {
            let children_before = db.row_count("child");
            let was_delete_parent = matches!(op, Op::DeleteParent(_));
            apply(&mut db, op);
            if was_delete_parent {
                prop_assert_eq!(db.row_count("child"), children_before);
            }
            prop_assert!(referential_integrity_holds(&db));
            // SetNull never applies here: no child carries NULL parent_id
            // unless inserted that way (our generator never does).
            prop_assert!(db
                .table_rows_sorted("child")
                .iter()
                .all(|r| !r[1].is_null()));
        }
    }
}
