//! End-to-end engine tests on the paper's running example (Fig. 1) plus
//! constraint-policy, transaction and updatable-view behaviour.

use ufilter_rdb::{
    Db, DeletePolicy, Expr, JoinKind, Parser, PlannerConfig, RdbError, Value, Warning,
};

/// Build the Fig. 1 book database (schema + the sample rows) from DDL text,
/// mirroring the paper's CREATE TABLE statements.
fn book_db() -> Db {
    book_db_with_policy("CASCADE")
}

fn book_db_with_policy(policy: &str) -> Db {
    let mut db = Db::new();
    db.execute_sql(
        "CREATE TABLE publisher( \
           pubid VARCHAR2(10), \
           pubname VARCHAR2(100) UNIQUE NOT NULL, \
           CONSTRAINTS PubPK PRIMARYKEY (pubid))",
    )
    .unwrap();
    db.execute_sql(&format!(
        "CREATE TABLE book( \
           bookid VARCHAR2(20), \
           title VARCHAR2(100) NOT NULL, \
           pubid VARCHAR2(10), \
           price DOUBLE CHECK (price > 0.00), \
           year DATE, \
           CONSTRAINTS BookPK PRIMARYKEY (bookid), \
           FOREIGNKEY (pubid) REFERENCES publisher (pubid) ON DELETE {policy})"
    ))
    .unwrap();
    db.execute_sql(&format!(
        "CREATE TABLE review( \
           bookid VARCHAR2(20), \
           reviewid VARCHAR2(3), \
           comment VARCHAR2(100), \
           reviewer VARCHAR2(10), \
           CONSTRAINTS ReviewPK PRIMARYKEY (bookid, reviewid), \
           FOREIGNKEY (bookid) REFERENCES book (bookid) ON DELETE {policy})"
    ))
    .unwrap();
    for sql in [
        "INSERT INTO publisher VALUES ('A01', 'McGraw-Hill Inc.')",
        "INSERT INTO publisher VALUES ('B01', 'Prentice-Hall Inc.')",
        "INSERT INTO publisher VALUES ('A02', 'Simon & Schuster Inc.')",
        "INSERT INTO book VALUES ('98001', 'TCP/IP Illustrated', 'A01', 37.00, 1997)",
        "INSERT INTO book VALUES ('98002', 'Programming in Unix', 'A02', 45.00, 1985)",
        "INSERT INTO book VALUES ('98003', 'Data on the Web', 'A01', 48.00, 2004)",
        "INSERT INTO review VALUES ('98001', '001', 'A good book on network.', 'William')",
        "INSERT INTO review VALUES ('98001', '002', 'Useful for advanced user.', 'John')",
    ] {
        db.execute_sql(sql).unwrap();
    }
    db
}

#[test]
fn sample_data_loaded() {
    let db = book_db();
    assert_eq!(db.row_count("publisher"), 3);
    assert_eq!(db.row_count("book"), 3);
    assert_eq!(db.row_count("review"), 2);
}

#[test]
fn select_project_join() {
    let db = book_db();
    let rs = db
        .query_sql(
            "SELECT book.title, publisher.pubname FROM book, publisher \
             WHERE book.pubid = publisher.pubid AND book.price < 50.00 AND book.year > 1990",
        )
        .unwrap();
    let mut titles = rs.column_values("title");
    titles.sort_by_key(|v| v.render());
    assert_eq!(titles, vec![Value::str("Data on the Web"), Value::str("TCP/IP Illustrated")]);
}

#[test]
fn pq1_probe_is_empty_for_missing_book() {
    // PQ1 of §6.1: the book "Programming in Unix" fails year > 1990.
    let db = book_db();
    let rs = db
        .query_sql(
            "SELECT bookid FROM publisher, book, review \
             WHERE book.title = 'Programming in Unix' AND book.price < 50.00 \
             AND book.year > 1990 AND book.pubid = publisher.pubid",
        )
        .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn pq2_probe_finds_data_on_the_web() {
    // PQ2 of §6.1 — note the paper's probe joins review too; "Data on the
    // Web" has no reviews, so a faithful inner join yields nothing. The
    // corrected probe (book ⋈ publisher only) returns bookid 98003.
    let db = book_db();
    let rs = db
        .query_sql(
            "SELECT bookid FROM publisher, book \
             WHERE book.title = 'Data on the Web' AND book.price < 50.00 \
             AND book.year > 1990 AND book.pubid = publisher.pubid",
        )
        .unwrap();
    assert_eq!(rs.column_values("bookid"), vec![Value::str("98003")]);
}

#[test]
fn insert_violating_check_rejected() {
    // u1's price 0.00 violates CHECK (price > 0).
    let mut db = book_db();
    let err =
        db.execute_sql("INSERT INTO book VALUES ('98004', 'X', 'A01', 0.00, 2001)").unwrap_err();
    assert!(matches!(err, RdbError::CheckViolation { .. }), "{err}");
}

#[test]
fn insert_violating_not_null_rejected() {
    // u1's empty title violates NOT NULL.
    let mut db = book_db();
    let err =
        db.execute_sql("INSERT INTO book VALUES ('98004', NULL, 'A01', 10.00, 2001)").unwrap_err();
    assert!(matches!(err, RdbError::NotNullViolation { .. }), "{err}");
}

#[test]
fn u2_hybrid_style_key_conflict() {
    // U2 of §6.2.2: inserting bookid 98001 again conflicts with the key.
    let mut db = book_db();
    let err = db
        .execute_sql("INSERT INTO book VALUES '98001', 'Operating Systems', 'A01', 20.00, 1994")
        .unwrap_err();
    assert!(matches!(err, RdbError::UniqueViolation { .. }), "{err}");
    // Engine state unchanged (statement-level atomicity).
    assert_eq!(db.row_count("book"), 3);
}

#[test]
fn fk_missing_reference_rejected() {
    let mut db = book_db();
    let err =
        db.execute_sql("INSERT INTO book VALUES ('98004', 'X', 'Z99', 10.00, 2001)").unwrap_err();
    assert!(matches!(err, RdbError::ForeignKeyMissing { .. }), "{err}");
}

#[test]
fn zero_rows_deleted_warning() {
    // The "warning message that zero tuples are deleted" of §6.2.2.
    let mut db = book_db();
    let out = db.execute_sql("DELETE FROM review WHERE bookid = '98003'").unwrap();
    assert_eq!(out.affected, 0);
    assert_eq!(out.warnings, vec![Warning::ZeroRowsDeleted { table: "review".into() }]);
}

#[test]
fn cascade_delete_follows_fk_chain() {
    let mut db = book_db();
    let out = db.execute_sql("DELETE FROM publisher WHERE pubid = 'A01'").unwrap();
    assert_eq!(out.affected, 1);
    // Books 98001 & 98003 cascade away, and 98001's reviews with them.
    assert_eq!(db.row_count("book"), 1);
    assert_eq!(db.row_count("review"), 0);
}

#[test]
fn set_null_policy_detaches_children() {
    let mut db = book_db_with_policy("SET NULL");
    db.execute_sql("DELETE FROM publisher WHERE pubid = 'A01'").unwrap();
    assert_eq!(db.row_count("book"), 3); // books survive with NULL pubid
    let rs = db.query_sql("SELECT bookid FROM book WHERE pubid IS NULL").unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn set_null_fails_when_fk_is_key_member() {
    // review.bookid is part of review's primary key → SET NULL must fail.
    let mut db = book_db_with_policy("SET NULL");
    let err = db.execute_sql("DELETE FROM book WHERE bookid = '98001'").unwrap_err();
    assert!(matches!(err, RdbError::NotNullViolation { .. }), "{err}");
    // Nothing changed.
    assert_eq!(db.row_count("book"), 3);
    assert_eq!(db.row_count("review"), 2);
}

#[test]
fn restrict_policy_blocks_delete() {
    let mut db = book_db_with_policy("RESTRICT");
    let err = db.execute_sql("DELETE FROM publisher WHERE pubid = 'A01'").unwrap_err();
    assert!(matches!(err, RdbError::ForeignKeyRestrict { .. }), "{err}");
    assert_eq!(db.row_count("publisher"), 3);
    // Unreferenced publisher can go.
    db.execute_sql("DELETE FROM publisher WHERE pubid = 'B01'").unwrap();
    assert_eq!(db.row_count("publisher"), 2);
}

#[test]
fn rollback_restores_exact_state() {
    let mut db = book_db();
    let before = db.dump();
    db.begin().unwrap();
    db.execute_sql("DELETE FROM publisher WHERE pubid = 'A01'").unwrap();
    db.execute_sql("INSERT INTO publisher VALUES ('C01', 'New House')").unwrap();
    db.execute_sql("UPDATE book SET price = 44.00 WHERE bookid = '98002'").unwrap();
    assert_ne!(db.dump(), before);
    db.rollback().unwrap();
    assert_eq!(db.dump(), before);
    // Indexes were restored too: the PK lookup still works.
    let rs = db.query_sql("SELECT pubname FROM publisher WHERE pubid = 'A01'").unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn commit_keeps_changes() {
    let mut db = book_db();
    db.begin().unwrap();
    db.execute_sql("INSERT INTO publisher VALUES ('C01', 'New House')").unwrap();
    db.commit().unwrap();
    assert_eq!(db.row_count("publisher"), 4);
    assert!(db.rollback().is_err()); // no txn anymore
}

#[test]
fn failed_statement_is_atomic_even_mid_batch() {
    let mut db = book_db();
    // Multi-row insert where the second row conflicts: first row must not stay.
    let err = db
        .execute_sql(
            "INSERT INTO publisher VALUES ('C01', 'Fresh Press'), ('A01', 'Dup Key Press')",
        )
        .unwrap_err();
    assert!(matches!(err, RdbError::UniqueViolation { .. }));
    assert_eq!(db.row_count("publisher"), 3);
}

#[test]
fn delete_with_in_subquery() {
    // U3 of §6.2.2 against a materialized probe table.
    let mut db = book_db();
    let probe = Parser::parse_select(
        "SELECT book.bookid FROM book, publisher \
         WHERE book.pubid = publisher.pubid AND book.price < 40.00",
    )
    .unwrap();
    db.materialize("TAB_book", &probe).unwrap();
    let out = db
        .execute_sql("DELETE FROM review WHERE review.bookid IN SELECT bookid FROM TAB_book")
        .unwrap();
    assert_eq!(out.affected, 2); // both reviews of 98001
}

#[test]
fn materialized_tables_have_no_indexes() {
    let mut db = book_db();
    let probe = Parser::parse_select("SELECT bookid, title FROM book").unwrap();
    db.materialize("TAB_book", &probe).unwrap();
    assert!(db.table_data("TAB_book").unwrap().indexes.is_empty());
    assert_eq!(db.row_count("TAB_book"), 3);
    // Still queryable.
    let rs = db.query_sql("SELECT title FROM TAB_book WHERE bookid = '98001'").unwrap();
    assert_eq!(rs.len(), 1);
}

#[test]
fn fig11_left_join_view() {
    let mut db = book_db();
    db.execute_sql(
        "CREATE VIEW RelationalBookView AS \
         SELECT p.pubid, p.pubname, b.bookid, b.title, b.price, r.reviewid, r.comment \
         FROM ( Publisher AS p LEFT JOIN ( Book AS b LEFT JOIN Review AS r \
         ON b.bookid = r.bookid ) ON p.pubid = b.pubid )",
    )
    .unwrap();
    let rs = db.query_sql("SELECT * FROM RelationalBookView").unwrap();
    // Fig. 11 shows 3 rows for A01's books/reviews; plus B01 & A02 padding
    // rows and A02's book 98002: publishers with no book still appear.
    // A01: (98001,rev1), (98001,rev2), (98003,NULL) = 3; A02: 98002 = 1; B01: padding = 1.
    assert_eq!(rs.len(), 5);
    let null_reviews = rs.rows.iter().filter(|r| r[rs.col("reviewid").unwrap()].is_null()).count();
    assert_eq!(null_reviews, 3); // 98003, 98002, B01-padding
}

#[test]
fn updatable_view_insert_uv_of_section_621() {
    // UV of §6.2.1: insert the review through RelationalBookView.
    let mut db = book_db();
    db.execute_sql(
        "CREATE VIEW RelationalBookView AS \
         SELECT p.pubid, p.pubname, b.bookid, b.title, b.price, r.reviewid, r.comment \
         FROM ( Publisher AS p LEFT JOIN ( Book AS b LEFT JOIN Review AS r \
         ON b.bookid = r.bookid ) ON p.pubid = b.pubid )",
    )
    .unwrap();
    let out = db
        .execute_sql(
            "INSERT INTO RelationalBookView \
             (pubid, pubname, bookid, title, price, reviewid, comment) \
             VALUES ('A01', 'McGraw-Hill Inc.', '98003', 'Data on the Web', 48.00, \
                     '001', 'easy read and useful')",
        )
        .unwrap();
    // publisher & book exist and verify; only the review row is new.
    assert_eq!(out.affected, 1);
    assert_eq!(db.row_count("review"), 3);
    let rs = db.query_sql("SELECT comment FROM review WHERE bookid = '98003'").unwrap();
    assert_eq!(rs.rows[0][0], Value::str("easy read and useful"));
}

#[test]
fn updatable_view_insert_rejects_inconsistent_duplicate() {
    let mut db = book_db();
    db.execute_sql(
        "CREATE VIEW V AS SELECT p.pubid, p.pubname, b.bookid, b.title \
         FROM ( publisher AS p LEFT JOIN book AS b ON p.pubid = b.pubid )",
    )
    .unwrap();
    // pubname conflicts with the stored value for A01.
    let err = db
        .execute_sql(
            "INSERT INTO V (pubid, pubname, bookid, title) \
             VALUES ('A01', 'Wrong Name', '98009', 'New Book')",
        )
        .unwrap_err();
    assert!(matches!(err, RdbError::ViewNotUpdatable(_)), "{err}");
    assert_eq!(db.row_count("book"), 3);
}

#[test]
fn updatable_view_delete_targets_rightmost_table() {
    let mut db = book_db();
    db.execute_sql(
        "CREATE VIEW V AS \
         SELECT b.bookid, b.title, r.reviewid, r.comment \
         FROM ( book AS b LEFT JOIN review AS r ON b.bookid = r.bookid )",
    )
    .unwrap();
    let n = ufilter_rdb::view::delete_from_view(
        &mut db,
        "V",
        Some(&Expr::eq(Expr::col("", "bookid"), Expr::lit(Value::str("98001")))),
    )
    .unwrap();
    assert_eq!(n, 2);
    assert_eq!(db.row_count("review"), 0);
    assert_eq!(db.row_count("book"), 3); // books untouched
}

#[test]
fn planner_uses_index_join_on_fk() {
    let db = book_db();
    let sel = Parser::parse_select(
        "SELECT book.title FROM book, publisher WHERE book.pubid = publisher.pubid",
    )
    .unwrap();
    let plan = ufilter_rdb::exec::plan_select(&db, &sel).unwrap();
    let text = plan.explain();
    assert!(text.contains("IndexNLJoin"), "plan was:\n{text}");
}

#[test]
fn planner_falls_back_without_index_join() {
    let mut db = book_db();
    db.set_planner_config(PlannerConfig { enable_index_join: false, enable_hash_join: true });
    let sel = Parser::parse_select(
        "SELECT book.title FROM book, publisher WHERE book.pubid = publisher.pubid",
    )
    .unwrap();
    let plan = ufilter_rdb::exec::plan_select(&db, &sel).unwrap();
    let text = plan.explain();
    assert!(text.contains("HashJoin"), "plan was:\n{text}");
    // Same rows either way.
    let with_hash = db.query(&sel).unwrap().len();
    db.set_planner_config(PlannerConfig::default());
    assert_eq!(db.query(&sel).unwrap().len(), with_hash);
}

#[test]
fn join_plans_agree_on_results() {
    // Cross-check all three join strategies on a 3-way join.
    let sel = Parser::parse_select(
        "SELECT publisher.pubname, book.title, review.comment \
         FROM publisher, book, review \
         WHERE book.pubid = publisher.pubid AND review.bookid = book.bookid",
    )
    .unwrap();
    let mut results = Vec::new();
    for (ij, hj) in [(true, true), (false, true), (false, false)] {
        let mut db = book_db();
        db.set_planner_config(PlannerConfig { enable_index_join: ij, enable_hash_join: hj });
        let mut rows = db.query(&sel).unwrap().rows;
        rows.sort_by_key(|r| r.iter().map(|v| v.render()).collect::<Vec<_>>());
        results.push(rows);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    assert_eq!(results[0].len(), 2);
}

#[test]
fn distinct_deduplicates() {
    let db = book_db();
    let rs = db.query_sql("SELECT DISTINCT pubid FROM book").unwrap();
    assert_eq!(rs.len(), 2); // A01, A02
}

#[test]
fn left_join_kind_matters() {
    let db = book_db();
    let inner =
        db.query_sql("SELECT b.bookid FROM book b JOIN review r ON b.bookid = r.bookid").unwrap();
    let left = db
        .query_sql("SELECT b.bookid FROM book b LEFT JOIN review r ON b.bookid = r.bookid")
        .unwrap();
    assert_eq!(inner.len(), 2);
    assert_eq!(left.len(), 4); // 2 matched + 98002/98003 padded
    let _ = JoinKind::Left; // silence unused import lint paranoia
}

#[test]
fn update_statement_with_fk_guard() {
    let mut db = book_db();
    // Changing a referenced key is refused while references exist.
    let err = db.execute_sql("UPDATE book SET bookid = 'X1' WHERE bookid = '98001'").unwrap_err();
    assert!(matches!(err, RdbError::Semantic(_)), "{err}");
    // Unreferenced keys may change.
    db.execute_sql("UPDATE book SET bookid = 'X3' WHERE bookid = '98003'").unwrap();
    assert_eq!(db.query_sql("SELECT * FROM book WHERE bookid = 'X3'").unwrap().len(), 1);
}

#[test]
fn update_respects_check_and_unique() {
    let mut db = book_db();
    let err = db.execute_sql("UPDATE book SET price = -5.00 WHERE bookid = '98001'").unwrap_err();
    assert!(matches!(err, RdbError::CheckViolation { .. }));
    let err = db
        .execute_sql("UPDATE publisher SET pubname = 'McGraw-Hill Inc.' WHERE pubid = 'B01'")
        .unwrap_err();
    assert!(matches!(err, RdbError::UniqueViolation { .. }), "{err}");
}

#[test]
fn delete_policy_mix_on_same_table() {
    // book→publisher CASCADE but review→book RESTRICT: deleting the
    // publisher must fail at the review level and leave everything intact.
    let mut db = Db::new();
    db.execute_sql(
        "CREATE TABLE publisher(pubid VARCHAR2(10), pubname VARCHAR2(100), \
         CONSTRAINTS PubPK PRIMARYKEY (pubid))",
    )
    .unwrap();
    db.execute_sql(
        "CREATE TABLE book(bookid VARCHAR2(20), pubid VARCHAR2(10), \
         CONSTRAINTS BookPK PRIMARYKEY (bookid), \
         FOREIGNKEY (pubid) REFERENCES publisher (pubid) ON DELETE CASCADE)",
    )
    .unwrap();
    db.execute_sql(
        "CREATE TABLE review(bookid VARCHAR2(20), reviewid VARCHAR2(3), \
         CONSTRAINTS RevPK PRIMARYKEY (bookid, reviewid), \
         FOREIGNKEY (bookid) REFERENCES book (bookid) ON DELETE RESTRICT)",
    )
    .unwrap();
    db.execute_sql("INSERT INTO publisher VALUES ('A01', 'P')").unwrap();
    db.execute_sql("INSERT INTO book VALUES ('b1', 'A01')").unwrap();
    db.execute_sql("INSERT INTO review VALUES ('b1', 'r1')").unwrap();
    let err = db.execute_sql("DELETE FROM publisher WHERE pubid = 'A01'").unwrap_err();
    assert!(matches!(err, RdbError::ForeignKeyRestrict { .. }), "{err}");
    assert_eq!(db.row_count("publisher"), 1);
    assert_eq!(db.row_count("book"), 1);
    assert_eq!(db.row_count("review"), 1);
}

#[test]
fn rowid_pseudo_column_addressing() {
    // PQ4-style: SELECT ROWID and delete by rowid, as §5's `delete from book
    // where rowid = t3` does.
    let mut db = book_db();
    let rs = db.query_sql("SELECT rowid FROM book WHERE bookid = '98003'").unwrap();
    let rid = match rs.rows[0][0] {
        Value::Int(i) => ufilter_rdb::RowId(i as u64),
        _ => unreachable!(),
    };
    db.delete_rid("book", rid).unwrap();
    assert_eq!(db.row_count("book"), 2);
}

#[test]
fn self_referencing_fk_cascade() {
    let mut db = Db::new();
    db.execute_sql(
        "CREATE TABLE emp(id INT, boss INT, \
         CONSTRAINTS EmpPK PRIMARYKEY (id), \
         FOREIGNKEY (boss) REFERENCES emp (id) ON DELETE CASCADE)",
    )
    .unwrap();
    db.execute_sql("INSERT INTO emp VALUES (1, NULL)").unwrap();
    db.execute_sql("INSERT INTO emp VALUES (2, 1)").unwrap();
    db.execute_sql("INSERT INTO emp VALUES (3, 2)").unwrap();
    db.execute_sql("DELETE FROM emp WHERE id = 1").unwrap();
    assert_eq!(db.row_count("emp"), 0);
}

#[test]
fn delete_policy_enum_exported() {
    assert_eq!(DeletePolicy::default(), DeletePolicy::Cascade);
}

#[test]
fn explain_shows_physical_plan() {
    let mut db = book_db();
    let out = db
        .execute_sql(
            "EXPLAIN SELECT book.title FROM book, publisher WHERE book.pubid = publisher.pubid \
             AND book.bookid = '98001'",
        )
        .unwrap();
    let text: Vec<String> = out.result.unwrap().rows.iter().map(|r| r[0].render()).collect();
    let plan = text.join("\n");
    // The selective equality anchors an IndexScan, then index joins chase.
    assert!(plan.contains("IndexScan book"), "plan was:\n{plan}");
    assert!(plan.contains("IndexNLJoin publisher") || plan.contains("HashJoin"), "{plan}");
}

#[test]
fn explain_in_list_becomes_batched_index_scan() {
    let mut db = book_db();
    let out = db
        .execute_sql("EXPLAIN SELECT comment FROM review WHERE bookid IN ('98001', '98003')")
        .unwrap();
    let plan: Vec<String> = out.result.unwrap().rows.iter().map(|r| r[0].render()).collect();
    // review's PK index leads on bookid? No — composite (bookid, reviewid);
    // the FK index on bookid is single-column and takes the IN-list.
    assert!(plan.join("\n").contains("IndexScan review"), "{}", plan.join("\n"));
}
