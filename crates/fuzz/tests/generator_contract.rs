//! Generator contracts: everything the generators emit must stay inside
//! the supported surface — schemas execute, views compile, printed ASTs
//! round-trip through the parsers unchanged (the `parse(print(q)) == q`
//! property that surfaced the negative-literal and quote-selection
//! asymmetries fixed in `ufilter-xquery`).

use ufilter_core::UFilter;
use ufilter_fuzz::gen_schema::GenSchema;
use ufilter_fuzz::gen_update::UpdSpec;
use ufilter_fuzz::oracle::Plan;
use ufilter_fuzz::FuzzRng;
use ufilter_rdb::Db;
use ufilter_xquery::{expressible, parse_update, parse_view_query};

const SEEDS: u64 = 150;

#[test]
fn generated_schemas_execute() {
    for seed in 0..SEEDS {
        let schema = GenSchema::generate(&mut FuzzRng::new(seed));
        let mut db = Db::new();
        db.execute_script(&schema.sql())
            .unwrap_or_else(|e| panic!("seed {seed}: schema script failed: {e}\n{}", schema.sql()));
        for t in &schema.tables {
            assert!(db.schema().table(&t.name).is_some(), "seed {seed}: table {} missing", t.name);
        }
    }
}

#[test]
fn generated_views_compile_and_round_trip() {
    for seed in 0..SEEDS {
        let plan = Plan::generate(seed);
        let mut db = Db::new();
        db.execute_script(&plan.schema.sql()).expect("schema executes");
        let schema = db.schema().clone();
        for v in &plan.views {
            let text = v.text();
            // Inside the expressible subset.
            expressible(&text).unwrap_or_else(|fs| {
                panic!("seed {seed}: view {} uses unsupported features {fs:?}\n{text}", v.name)
            });
            // parse(print(ast)) == ast.
            let reparsed = parse_view_query(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: printed view unparseable: {e}\n{text}"));
            assert_eq!(v.query, reparsed, "seed {seed}: round trip changed the AST\n{text}");
            // And the whole pipeline accepts it.
            UFilter::compile(&text, &schema).unwrap_or_else(|e| {
                panic!("seed {seed}: view {} does not compile: {e}\n{text}", v.name)
            });
        }
    }
}

#[test]
fn generated_updates_round_trip() {
    let mut ast_updates = 0usize;
    for seed in 0..SEEDS {
        let plan = Plan::generate(seed);
        for u in &plan.updates {
            let UpdSpec::Ast(stmt) = &u.spec else { continue };
            ast_updates += 1;
            let text = u.text();
            let reparsed = parse_update(&text).unwrap_or_else(|e| {
                panic!("seed {seed}: printed update ({}) unparseable: {e}\n{text}", u.label)
            });
            assert_eq!(
                *stmt, reparsed,
                "seed {seed}: update round trip changed the AST ({})\n{text}",
                u.label
            );
        }
    }
    assert!(ast_updates > SEEDS as usize, "expected plenty of AST updates, got {ast_updates}");
}

#[test]
fn plans_are_seed_deterministic() {
    for seed in [0u64, 1, 17, 99] {
        let a = Plan::generate(seed).raw();
        let b = Plan::generate(seed).raw();
        assert_eq!(a, b, "seed {seed}: plan generation is not deterministic");
    }
}
