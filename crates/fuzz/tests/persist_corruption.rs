//! Persist-codec corruption fuzzing: truncations, bit flips and zeroed
//! spans applied to real `catalog.snap` / `catalog.log` images. Every
//! mutation must produce a clean outcome — `Ok` (recovered, possibly with
//! replay warnings) or a typed `PersistError` — never a panic, and a store
//! that *does* open must be internally consistent enough to re-verify.

use std::fs;
use std::path::PathBuf;

use ufilter_core::persist::{self, CatalogStore};
use ufilter_fuzz::FuzzRng;

const ROUNDS: usize = 400;
const SEED: u64 = 0x5EED_C0DE;

fn fixture(name: &str) -> Vec<u8> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../fixtures/");
    fs::read(PathBuf::from(path).join(name)).expect("fixture readable")
}

/// Apply one seeded mutation; returns a label for failure messages.
fn mutate(rng: &mut FuzzRng, bytes: &mut Vec<u8>) -> String {
    if bytes.is_empty() {
        bytes.push(rng.int(0, 255) as u8);
        return "grow-empty".into();
    }
    match rng.index(5) {
        0 => {
            let at = rng.index(bytes.len());
            bytes.truncate(at);
            format!("truncate@{at}")
        }
        1 => {
            let at = rng.index(bytes.len());
            let bit = rng.index(8) as u8;
            bytes[at] ^= 1 << bit;
            format!("bitflip@{at}.{bit}")
        }
        2 => {
            let at = rng.index(bytes.len());
            let span = (rng.index(64) + 1).min(bytes.len() - at);
            bytes[at..at + span].fill(0);
            format!("zero@{at}+{span}")
        }
        3 => {
            let n = rng.index(128) + 1;
            for _ in 0..n {
                bytes.push(rng.int(0, 255) as u8);
            }
            format!("append-garbage+{n}")
        }
        _ => {
            let at = rng.index(bytes.len());
            bytes[at] = rng.int(0, 255) as u8;
            format!("stomp@{at}")
        }
    }
}

#[test]
fn corrupted_store_images_never_panic() {
    let snap = fixture("catalog.snap");
    let log = fixture("catalog.log");

    let dir =
        std::env::temp_dir().join(format!("ufilter-fuzz-persist-{}-{SEED:x}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // Sanity: the pristine images open cleanly.
    fs::write(dir.join("catalog.snap"), &snap).unwrap();
    fs::write(dir.join("catalog.log"), &log).unwrap();
    let pristine = CatalogStore::open(&dir).expect("pristine fixtures open");
    let baseline = pristine.records().len();
    assert!(baseline > 0, "fixtures should carry records");
    drop(pristine);

    let mut rng = FuzzRng::new(SEED);
    let mut opened = 0usize;
    let mut refused = 0usize;
    for round in 0..ROUNDS {
        let mut s = snap.clone();
        let mut l = log.clone();
        // Corrupt one or both files.
        let label = match rng.index(3) {
            0 => format!("snap:{}", mutate(&mut rng, &mut s)),
            1 => format!("log:{}", mutate(&mut rng, &mut l)),
            _ => {
                let a = mutate(&mut rng, &mut s);
                let b = mutate(&mut rng, &mut l);
                format!("snap:{a} log:{b}")
            }
        };
        fs::write(dir.join("catalog.snap"), &s).unwrap();
        fs::write(dir.join("catalog.log"), &l).unwrap();

        match CatalogStore::open(&dir) {
            Ok(store) => {
                opened += 1;
                // Whatever survived must be bounded by the pristine record
                // count plus the log tail, and re-verifiable.
                assert!(
                    store.records().len() <= baseline + 16,
                    "round {round} ({label}): implausible record count {}",
                    store.records().len()
                );
                drop(store);
                // `open` may truncate a torn tail in place; a second open
                // (and a verify) of the repaired directory must agree.
                let report = persist::CatalogStore::verify(&dir)
                    .unwrap_or_else(|e| panic!("round {round} ({label}): reverify: {e}"));
                let _ = report;
            }
            Err(e) => {
                refused += 1;
                // Typed error with a usable message — the crash-safety
                // contract: corruption is reported, never unwound past.
                assert!(!e.to_string().is_empty(), "round {round} ({label}): empty error");
            }
        }
    }
    // The mutation mix must actually exercise both outcomes.
    assert!(opened > 0, "no corrupted image ever opened (recovery path untested)");
    assert!(refused > 0, "no corrupted image was ever refused (detection path untested)");

    let _ = fs::remove_dir_all(&dir);
}

/// Codec-level: record and artifact payload decoding on mutated bytes.
#[test]
fn corrupted_payloads_never_panic() {
    use ufilter_core::persist::LogRecord;

    let rec = persist::encode_record(&LogRecord::Ddl {
        sql: "CREATE TABLE t (id INTEGER, CONSTRAINTS TPK PRIMARYKEY (id))".into(),
    });
    let mut rng = FuzzRng::new(SEED ^ 0xA5A5);
    for _ in 0..2000 {
        let mut bytes = rec.clone();
        mutate(&mut rng, &mut bytes);
        let _ = persist::decode_record(&bytes);
        let _ = persist::decode_artifact_header(&bytes);
        let _ = persist::decode_artifact(&bytes);
    }
}
