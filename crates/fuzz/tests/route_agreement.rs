//! The routing-agreement oracle stage: seeded sweep plus the
//! injected-failure self-test of the stage's shrink-and-render path.

use ufilter_fuzz::route_stage::{run_route_many_mutated, run_route_raw};
use ufilter_fuzz::{cases_from_env, corpus, run_route_many};

/// Fixed base seed, deterministic: generated (view, update) cases routed
/// through both the shared path trie and the linear-walk oracle, full
/// `Route` equality demanded on every one.
#[test]
fn trie_and_linear_walk_agree_on_generated_cases() {
    let min_cases = cases_from_env(300);
    match run_route_many(0xD1FF, min_cases) {
        Ok(stats) => {
            assert!(stats.routed >= min_cases, "{stats:?}");
            assert!(stats.views > 0, "{stats:?}");
        }
        Err(failure) => panic!(
            "routing divergence:\n{}\n\nminimized corpus case:\n{}",
            failure.divergence, failure.corpus
        ),
    }
}

/// Harness self-test: corrupt the trie's candidate list on one specific
/// shape of route and the stage must (a) notice, (b) shrink the plan to a
/// minimal still-failing case, and (c) render a corpus file that replays
/// the failure without the generator.
#[test]
fn injected_route_corruption_shrinks_to_a_replayable_corpus_case() {
    fn drop_first(candidates: &[String]) -> Vec<String> {
        // Only perturb non-empty candidate lists so the minimal case must
        // keep a view the update actually reaches.
        if candidates.is_empty() {
            candidates.to_vec()
        } else {
            candidates[1..].to_vec()
        }
    }
    let failure = run_route_many_mutated(0xD1FF, 300, Some(drop_first))
        .expect_err("corrupting candidates must produce a divergence");
    assert_eq!(failure.divergence.kind, "route-mismatch");
    // Shrinking reached a fixpoint at a genuinely small plan.
    assert!(
        failure.minimized.updates.len() <= 2,
        "shrinker left {} updates",
        failure.minimized.updates.len()
    );
    // The rendered corpus case replays to the same kind without the
    // generator in the loop.
    let replayed = corpus::parse(&failure.corpus).expect("corpus case parses");
    let div = run_route_raw(&replayed, Some(drop_first))
        .expect_err("replayed corpus case still diverges");
    assert_eq!(div.kind, "route-mismatch");
    // And with the fault hook removed, the same case routes cleanly — the
    // divergence was the injection, not a real trie/linear disagreement.
    assert!(run_route_raw(&replayed, None).is_ok(), "clean replay should agree");
}
