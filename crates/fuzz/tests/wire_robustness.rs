//! Wire-frame robustness: adversarial byte sequences against a live
//! [`CheckServer`]. Every frame must draw an `OK`/`ERR` reply or a clean
//! disconnect — never a crash or a hang — and after each frame the server
//! must still answer `PING` and reproduce a byte-identical reply to a
//! known-good `CHECK`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ufilter_core::bookdemo;
use ufilter_fuzz::gen_wire::{self, Expect};
use ufilter_fuzz::FuzzRng;
use ufilter_service::proto::check_request;
use ufilter_service::{CheckServer, ShardedCatalog};

const FRAMES: usize = 250;
const SEED: u64 = 0x817E_F8A3;

/// One request → one reply line over a fresh connection.
fn roundtrip(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("server accepts");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    writeln!(stream, "{request}").expect("request written");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("server replies");
    reply.trim_end().to_string()
}

fn known_check(addr: SocketAddr) -> String {
    roundtrip(addr, &check_request("books", bookdemo::U8))
}

#[test]
fn adversarial_frames_never_kill_the_server() {
    let db = bookdemo::book_db();
    let sharded = ShardedCatalog::new(bookdemo::book_schema(), 2);
    sharded.add("books", bookdemo::BOOK_VIEW).expect("demo view compiles");
    let server =
        CheckServer::bind("127.0.0.1:0", Arc::new(sharded), &db, 2).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let reference = known_check(addr);
    assert!(reference.starts_with("OK "), "reference check failed: {reference}");

    let mut rng = FuzzRng::new(SEED);
    for i in 0..FRAMES {
        let frame = gen_wire::generate(&mut rng);
        let mut stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("frame {i} ({}): connect: {e}", frame.label));
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // The server may close mid-write on frames it refuses outright;
        // a write error is a legal outcome, a hang is not.
        let written = stream.write_all(&frame.bytes).and_then(|()| stream.flush());
        match frame.expect {
            Expect::Reply => {
                written.unwrap_or_else(|e| panic!("frame {i} ({}): write: {e}", frame.label));
                let mut reader = BufReader::new(stream);
                let mut reply = String::new();
                reader
                    .read_line(&mut reply)
                    .unwrap_or_else(|e| panic!("frame {i} ({}): no reply: {e}", frame.label));
                let reply = reply.trim_end();
                assert!(
                    reply.starts_with("OK") || reply.starts_with("ERR"),
                    "frame {i} ({}): unexpected reply {reply:?}",
                    frame.label
                );
            }
            Expect::MayDisconnect => {
                // Closing without a newline-terminated request: the server
                // discards the partial line; nothing to read.
                drop(stream);
            }
        }
        // Liveness after every frame: PING answers, and the known CHECK is
        // byte-identical to the pre-fuzz reference.
        let pong = roundtrip(addr, "PING");
        assert_eq!(pong, "OK pong", "frame {i} ({}): PING broke", frame.label);
        let check = known_check(addr);
        assert_eq!(check, reference, "frame {i} ({}): CHECK reply drifted", frame.label);
    }

    handle.shutdown();
    thread.join().expect("server thread joins").expect("clean shutdown");
}
