//! The routing-agreement oracle stage: shared path trie vs linear walk.
//!
//! For every generated plan, the compiled view ASGs feed both routing
//! index implementations — the production [`TrieIndex`] and the
//! per-view-signature [`RelevanceIndex`] oracle — and every parseable
//! update must route to the **same** [`Route`]: identical candidate
//! lists, identical per-level pruning counters, identical fallback flag.
//! The stage is signature-only (no databases, no check pipelines), so it
//! sweeps far more cases per second than the four-surface oracle; a
//! mismatch shrinks through [`crate::shrink::shrink_with`] to a minimal
//! replayable corpus case, exactly like the execute-recompute oracle's
//! failures.
//!
//! [`TrieIndex`]: ufilter_route::TrieIndex
//! [`RelevanceIndex`]: ufilter_route::RelevanceIndex
//! [`Route`]: ufilter_route::Route

use ufilter_asg::build_view_asg;
use ufilter_rdb::Db;
use ufilter_route::{RelevanceIndex, TrieIndex};
use ufilter_xquery::{parse_update, parse_view_query};

use crate::oracle::{Divergence, Plan, RawPlan};
use crate::{corpus, shrink, Failure};

/// Fault-injection hook: corrupts a candidate list before comparison so
/// harness self-tests can prove the stage notices, shrinks, and replays.
pub type CandidateMutator = fn(&[String]) -> Vec<String>;

/// Tallies for one routing-agreement run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteStats {
    /// (view-set, update) routing probes compared.
    pub routed: usize,
    /// Updates that fell back to all-views (unclassifiable footprints).
    pub fallbacks: usize,
    /// Views inserted across all plans.
    pub views: usize,
}

impl RouteStats {
    pub fn merge(&mut self, o: &RouteStats) {
        self.routed += o.routed;
        self.fallbacks += o.fallbacks;
        self.views += o.views;
    }
}

/// Run the routing stage on one plan. `mutate` is the fault-injection
/// hook for testing the harness itself: it may corrupt the trie's
/// candidate list before comparison, and the stage must then report a
/// divergence that shrinks and replays.
pub fn run_route_raw(
    plan: &RawPlan,
    mutate: Option<CandidateMutator>,
) -> Result<RouteStats, Divergence> {
    let gen_err = |detail: String| Divergence {
        seed: plan.seed,
        kind: "generator".into(),
        view: String::new(),
        update: String::new(),
        detail,
    };

    let mut db = Db::new();
    db.execute_script(&plan.schema_sql).map_err(|e| gen_err(format!("schema script: {e}")))?;
    let schema = db.schema().clone();

    let mut trie = TrieIndex::new();
    let mut linear = RelevanceIndex::new();
    let mut stats = RouteStats::default();
    for (name, text) in &plan.views {
        let q = parse_view_query(text).map_err(|e| gen_err(format!("view {name}: {e}")))?;
        let asg =
            build_view_asg(&q, &schema).map_err(|e| gen_err(format!("view {name}: {e:?}")))?;
        trie.insert(name, &asg);
        linear.insert(name, &asg);
        stats.views += 1;
    }

    for text in &plan.updates {
        // Unparseable updates never reach a router (every surface rejects
        // them upstream); the stage only compares classifiable inputs.
        let Ok(u) = parse_update(text) else { continue };
        let mut t = trie.route(&u);
        let l = linear.route(&u);
        if let Some(f) = mutate {
            t.candidates = f(&t.candidates);
        }
        if t != l {
            return Err(Divergence {
                seed: plan.seed,
                kind: "route-mismatch".into(),
                view: plan.views.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(","),
                update: text.clone(),
                detail: format!("trie:   {t:?}\nlinear: {l:?}"),
            });
        }
        stats.routed += 1;
        if t.fallback {
            stats.fallbacks += 1;
        }
    }
    Ok(stats)
}

/// Run seeded plans through the routing stage until at least `min_cases`
/// updates have been routed through both indexes. On the first mismatch,
/// shrink it and return the minimized, replayable counterexample.
pub fn run_route_many(base_seed: u64, min_cases: usize) -> Result<RouteStats, Box<Failure>> {
    run_route_many_mutated(base_seed, min_cases, None)
}

/// [`run_route_many`] with the fault-injection hook exposed (harness
/// self-tests only).
pub fn run_route_many_mutated(
    base_seed: u64,
    min_cases: usize,
    mutate: Option<CandidateMutator>,
) -> Result<RouteStats, Box<Failure>> {
    let mut stats = RouteStats::default();
    let mut seed = base_seed;
    while stats.routed < min_cases {
        let plan = Plan::generate(seed);
        match run_route_raw(&plan.raw(), mutate) {
            Ok(s) => stats.merge(&s),
            Err(div) => {
                let (small, small_div) =
                    shrink::shrink_with(plan, div, 200, |raw| match run_route_raw(raw, mutate) {
                        Ok(_) => Ok(()),
                        Err(d) => Err(d),
                    });
                let minimized = small.raw();
                let rendered = corpus::render(
                    &minimized,
                    &format!("kind: {}\ndetail: {}", small_div.kind, small_div.detail),
                );
                return Err(Box::new(Failure {
                    divergence: small_div,
                    minimized,
                    corpus: rendered,
                }));
            }
        }
        seed += 1;
    }
    Ok(stats)
}
