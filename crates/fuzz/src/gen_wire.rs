//! Wire-frame generator: byte sequences thrown at a live [`CheckServer`]
//! to probe protocol robustness. Every frame must produce an `OK`/`ERR`
//! reply or a clean disconnect — never a crash, hang, or runaway
//! allocation on the server side.
//!
//! [`CheckServer`]: ufilter_service::CheckServer

use crate::rng::FuzzRng;

/// What the client should expect after writing the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// A one-line `OK …` or `ERR …` reply; the connection stays usable.
    Reply,
    /// The server is allowed (or expected) to close the connection.
    MayDisconnect,
}

/// One fuzz frame: raw bytes (not necessarily UTF-8, not necessarily
/// newline-terminated) plus the contract the server must honour.
#[derive(Debug, Clone)]
pub struct Frame {
    pub label: &'static str,
    pub bytes: Vec<u8>,
    pub expect: Expect,
}

fn line(label: &'static str, s: &str, expect: Expect) -> Frame {
    Frame { label, bytes: format!("{s}\n").into_bytes(), expect }
}

/// Generate one adversarial frame.
pub fn generate(rng: &mut FuzzRng) -> Frame {
    match rng.index(12) {
        // Blank lines are skipped silently (no reply), so pipeline a PING
        // behind one: the skip must not desynchronize the reply stream.
        0 => line("empty-then-ping", "\nPING", Expect::Reply),
        1 => line("unknown-verb", "FROBNICATE now", Expect::Reply),
        2 => line("check-missing-args", "CHECK", Expect::Reply),
        3 => line("check-unescaped", "CHECK books FOR $r IN doc", Expect::Reply),
        4 => line("bad-escape", "CHECK books %zz%", Expect::Reply),
        5 => {
            // A count large enough to be refused, small enough to be a
            // plausible typo; must be an ERR, not an allocation.
            line("huge-batch", "BATCH 99999999999", Expect::Reply)
        }
        6 => {
            let n = rng.int(2, 5);
            line(
                "batch-garbage-items",
                &format!("BATCH {n}\n{}", vec!["???"; n as usize].join("\n")),
                Expect::Reply,
            )
        }
        7 => {
            // Non-UTF-8: the server closes by design (not this protocol).
            let mut bytes = b"CHECK books ".to_vec();
            bytes.extend([0xff, 0xfe, 0x80, b'\n']);
            Frame { label: "non-utf8", bytes, expect: Expect::MayDisconnect }
        }
        8 => {
            // Interior NUL bytes are valid UTF-8; must get a normal ERR.
            Frame {
                label: "nul-bytes",
                bytes: b"CHECK\x00books u\n".to_vec(),
                expect: Expect::Reply,
            }
        }
        9 => {
            // An oversized but newline-terminated line: parses (and fails)
            // as a huge unknown request or oversized operand.
            let n = rng.int(100_000, 400_000) as usize;
            let mut bytes = b"CHECK books ".to_vec();
            bytes.extend(std::iter::repeat_n(b'A', n));
            bytes.push(b'\n');
            Frame { label: "long-line", bytes, expect: Expect::Reply }
        }
        10 => {
            // CR-only terminator: no LF ever arrives, so the client sees
            // no reply; on close the server discards the partial line.
            Frame { label: "cr-only", bytes: b"PING\r".to_vec(), expect: Expect::MayDisconnect }
        }
        _ => {
            // Random printable garbage.
            let n = rng.int(1, 60) as usize;
            let mut s = String::new();
            for _ in 0..n {
                s.push((rng.int(32, 126) as u8) as char);
            }
            line("printable-garbage", &s.replace('\n', " "), Expect::Reply)
        }
    }
}
