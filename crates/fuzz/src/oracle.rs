//! The blind execute-recompute differential oracle.
//!
//! For every generated (view, update) pair, the same update text runs
//! through four check surfaces, and the wire-encoded outcome line must be
//! **byte-identical** across all of them:
//!
//! 1. *direct* — [`UFilter::check`] (what the CLI does),
//! 2. *batch*  — [`ViewCatalog::check_batch_text`] (amortized engine),
//! 3. *fanout* — [`ViewCatalog::check_all`] (relevance-index routing;
//!    views the index prunes must be exactly those the direct check
//!    rejects as statically irrelevant),
//! 4. *tcp*    — a `CHECK` request against a live [`CheckServer`].
//!
//! Independently of the agreement check, accepted updates face the
//! ground-truth test of the paper's Definition 1 rectangle: *applying the
//! translated SQL and re-materializing the view must equal applying the
//! XML update to the materialized view directly* ([`apply_and_verify`]).
//! The oracle never predicts a verdict — it only demands that the
//! surfaces agree and that acceptance is semantically sound. Rejected
//! updates must leave the database untouched and re-check identically
//! (determinism).
//!
//! [`UFilter::check`]: ufilter_core::UFilter::check
//! [`ViewCatalog::check_batch_text`]: ufilter_core::ViewCatalog::check_batch_text
//! [`ViewCatalog::check_all`]: ufilter_core::ViewCatalog::check_all
//! [`CheckServer`]: ufilter_service::CheckServer
//! [`apply_and_verify`]: ufilter_core::apply_and_verify

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use ufilter_core::wire::{self, encode_outcome};
use ufilter_core::{apply_and_verify, CheckReport, RectangleVerdict, ViewCatalog};
use ufilter_rdb::{Db, Row};
use ufilter_service::proto::check_request;
use ufilter_service::{CheckServer, ShardedCatalog};

use crate::gen_schema::GenSchema;
use crate::gen_update::{self, GenUpdate};
use crate::gen_view::{self, GenView};
use crate::rng::FuzzRng;

/// Which check surface a wire line came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    Direct,
    Batch,
    Fanout,
    Tcp,
}

impl Surface {
    pub fn label(self) -> &'static str {
        match self {
            Surface::Direct => "direct",
            Surface::Batch => "batch",
            Surface::Fanout => "fanout",
            Surface::Tcp => "tcp",
        }
    }
}

/// A reproducible oracle failure: the seed replays it, the embedded texts
/// replay it without the generator.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub seed: u64,
    /// Failure class (`surface-mismatch`, `rectangle`, `generator`, …).
    pub kind: String,
    pub view: String,
    pub update: String,
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] seed={} view={}\nupdate:\n{}\ndetail: {}",
            self.kind, self.seed, self.view, self.update, self.detail
        )
    }
}

/// Outcome tallies for one run (and the acceptance-criteria counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// (view, update) pairs checked across all four surfaces.
    pub cases: usize,
    pub translatable: usize,
    pub conditional: usize,
    pub untranslatable: usize,
    pub invalid: usize,
    /// Accepted updates verified against the Definition 1 rectangle.
    pub rectangles: usize,
    /// Snapshot/restore round-trips asserted.
    pub snapshots: usize,
    /// Views the relevance index pruned (checked statically irrelevant).
    pub pruned: usize,
}

impl RunStats {
    pub fn merge(&mut self, o: &RunStats) {
        self.cases += o.cases;
        self.translatable += o.translatable;
        self.conditional += o.conditional;
        self.untranslatable += o.untranslatable;
        self.invalid += o.invalid;
        self.rectangles += o.rectangles;
        self.snapshots += o.snapshots;
        self.pruned += o.pruned;
    }
}

/// Oracle knobs. `mutate` is a fault-injection hook for testing the
/// harness itself: it may corrupt the wire line of one surface, and the
/// oracle must then report a divergence that shrinks and replays.
#[derive(Default)]
pub struct OracleOptions {
    /// Skip the TCP surface (used by shrinking's inner loop for speed —
    /// final minimized cases re-run with all surfaces on).
    pub skip_tcp: bool,
    /// Corrupt `line` as seen on `surface`; `None` = leave intact.
    pub mutate: Option<fn(Surface, &str) -> Option<String>>,
}

/// A fully-rendered plan: everything the oracle needs, no generator state.
/// This is also the corpus file format's content.
#[derive(Debug, Clone, PartialEq)]
pub struct RawPlan {
    pub seed: u64,
    pub schema_sql: String,
    /// `(name, view text)` in registration order.
    pub views: Vec<(String, String)>,
    pub updates: Vec<String>,
}

/// A structured plan (ASTs retained for shrinking).
pub struct Plan {
    pub seed: u64,
    pub schema: GenSchema,
    pub views: Vec<GenView>,
    pub updates: Vec<GenUpdate>,
}

impl Plan {
    /// Generate a plan from a seed: one schema, 1-2 views, 3-6 updates.
    /// Pure function of the seed.
    pub fn generate(seed: u64) -> Plan {
        let mut rng = FuzzRng::new(seed);
        let mut schema_rng = rng.fork();
        let mut view_rng = rng.fork();
        let mut upd_rng = rng.fork();

        let schema = GenSchema::generate(&mut schema_rng);
        let n_views = if view_rng.chance(0.4) { 2 } else { 1 };
        let views: Vec<GenView> =
            (0..n_views).map(|i| gen_view::generate(&mut view_rng, &schema, i)).collect();
        let n_updates = upd_rng.int(3, 6) as usize;
        let updates: Vec<GenUpdate> = (0..n_updates)
            .map(|_| {
                let v = upd_rng.index(views.len());
                gen_update::generate(&mut upd_rng, &schema, &views[v])
            })
            .collect();
        Plan { seed, schema, views, updates }
    }

    /// Lower to the text-only form the oracle (and corpus files) consume.
    pub fn raw(&self) -> RawPlan {
        RawPlan {
            seed: self.seed,
            schema_sql: self.schema.sql(),
            views: self.views.iter().map(|v| (v.name.clone(), v.text())).collect(),
            updates: self.updates.iter().map(|u| u.text()).collect(),
        }
    }
}

/// Tab-join the wire-encoded outcome of each action report — the exact
/// format the TCP server replies with after `OK `.
pub fn report_line(reports: &[CheckReport]) -> String {
    reports.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>().join("\t")
}

/// Dump only the user tables (checks materialize `TAB_…` scratch tables
/// into their working database; those are not part of the data the oracle
/// compares).
fn user_dump(db: &Db, tables: &[String]) -> BTreeMap<String, Vec<Row>> {
    db.dump().into_iter().filter(|(name, _)| tables.iter().any(|t| t == name)).collect()
}

/// Run one plan through the full oracle. `Err` is the first divergence.
pub fn run_raw(plan: &RawPlan, opts: &OracleOptions) -> Result<RunStats, Divergence> {
    let gen_err = |detail: String| Divergence {
        seed: plan.seed,
        kind: "generator".into(),
        view: String::new(),
        update: String::new(),
        detail,
    };

    // Base database.
    let mut db = Db::new();
    db.execute_script(&plan.schema_sql).map_err(|e| gen_err(format!("schema script: {e}")))?;
    let schema = db.schema().clone();
    let tables: Vec<String> = schema.tables.iter().map(|t| t.name.clone()).collect();
    let base_dump = user_dump(&db, &tables);

    // Surface 1+2+3 host: the catalog.
    let mut catalog = ViewCatalog::new(schema.clone());
    for (name, text) in &plan.views {
        catalog.add(name, text).map_err(|e| gen_err(format!("view {name} rejected: {e}")))?;
    }

    // Surface 4 host: a live server over the same schema, views and data.
    let mut tcp = if opts.skip_tcp { None } else { Some(TcpHarness::start(plan, &schema, &db)?) };

    // Batch surface: every (update, view) pair in one stream, so the
    // amortized engine sees realistic grouping.
    let items: Vec<(String, String)> = plan
        .updates
        .iter()
        .flat_map(|u| plan.views.iter().map(move |(name, _)| (name.clone(), u.clone())))
        .collect();
    let batch_lines: Vec<String> = {
        let mut batch_db = db.clone();
        let report = catalog.check_batch_text(&items, &mut batch_db);
        let mut lines = vec![String::new(); items.len()];
        for item in &report.items {
            lines[item.index] = report_line(&item.reports);
        }
        lines
    };

    let mutate = |surface: Surface, line: &str| -> String {
        match opts.mutate.and_then(|f| f(surface, line)) {
            Some(corrupted) => corrupted,
            None => line.to_string(),
        }
    };

    let mut stats = RunStats::default();
    for (ui, update) in plan.updates.iter().enumerate() {
        // Fan-out surface: one check_all per update; map view -> line.
        let fanout_lines: BTreeMap<String, String> = {
            let mut fdb = db.clone();
            let report = catalog.check_all(update, &mut fdb);
            report
                .items
                .iter()
                .map(|item| (item.view.clone(), report_line(&item.reports)))
                .collect()
        };

        for (vi, (vname, _vtext)) in plan.views.iter().enumerate() {
            stats.cases += 1;
            let fail = |kind: &str, detail: String| Divergence {
                seed: plan.seed,
                kind: kind.into(),
                view: vname.clone(),
                update: update.clone(),
                detail,
            };
            let filter = catalog.get(vname).expect("registered view resolves");

            // Direct surface, run twice (determinism).
            let mut da = db.clone();
            let reports = filter.check(update, &mut da);
            let direct = report_line(&reports);
            let mut db2 = db.clone();
            let second = report_line(&filter.check(update, &mut db2));
            if direct != second {
                return Err(fail("nondeterminism", format!("first:  {direct}\nsecond: {second}")));
            }
            // Checking must not touch user tables.
            if user_dump(&da, &tables) != base_dump {
                return Err(fail("check-mutates", "direct check changed user tables".into()));
            }

            let direct_m = mutate(Surface::Direct, &direct);
            let batch_m = mutate(Surface::Batch, &batch_lines[ui * plan.views.len() + vi]);
            if direct_m != batch_m {
                return Err(fail(
                    "surface-mismatch",
                    format!("direct: {direct_m}\nbatch:  {batch_m}"),
                ));
            }

            match fanout_lines.get(vname) {
                Some(fline) => {
                    let fanout_m = mutate(Surface::Fanout, fline);
                    if direct_m != fanout_m {
                        return Err(fail(
                            "surface-mismatch",
                            format!("direct: {direct_m}\nfanout: {fanout_m}"),
                        ));
                    }
                }
                None => {
                    // The relevance index pruned this view: the direct
                    // check must agree it is statically irrelevant.
                    stats.pruned += 1;
                    let all_invalid = wire::decode_outcomes(&direct)
                        .map(|os| os.iter().all(|o| o.is_invalid()))
                        .unwrap_or(false);
                    if !all_invalid {
                        return Err(fail(
                            "pruned-not-invalid",
                            format!("index pruned the view but direct said: {direct}"),
                        ));
                    }
                }
            }

            if let Some(t) = tcp.as_mut() {
                let reply = t.check(vname, update).map_err(|e| fail("tcp", e))?;
                let tcp_m = mutate(Surface::Tcp, &reply);
                if direct_m != tcp_m {
                    return Err(fail(
                        "surface-mismatch",
                        format!("direct: {direct_m}\ntcp:    {tcp_m}"),
                    ));
                }
            }

            // Tally + ground truth.
            let outcomes = wire::decode_outcomes(&direct)
                .map_err(|e| fail("wire-decode", format!("{direct}: {e}")))?;
            let accepted = !outcomes.is_empty() && outcomes.iter().all(|o| o.is_translatable());
            for o in &outcomes {
                match o {
                    ufilter_core::CheckOutcome::Invalid(_) => stats.invalid += 1,
                    ufilter_core::CheckOutcome::Untranslatable { .. } => stats.untranslatable += 1,
                    ufilter_core::CheckOutcome::Translatable { conditions, .. } => {
                        stats.translatable += 1;
                        if !conditions.is_empty() {
                            stats.conditional += 1;
                        }
                    }
                }
            }

            if accepted {
                // Definition 1: u(DEF_V(D)) = DEF_V(U(D)), via the blind
                // execute-recompute rectangle. Snapshot/restore brackets
                // the application so one base db serves every case.
                let mut adb = db.clone();
                let snap = adb.snapshot().map_err(|e| fail("snapshot", e.to_string()))?;
                match apply_and_verify(filter, update, &mut adb) {
                    Err(e) => return Err(fail("rectangle-error", e)),
                    Ok((applied_accept, verdict)) => {
                        if !applied_accept {
                            return Err(fail(
                                "accept-mismatch",
                                "check said translatable; apply-time check refused".into(),
                            ));
                        }
                        match verdict {
                            Some(RectangleVerdict::Holds) => stats.rectangles += 1,
                            other => {
                                return Err(fail(
                                    "rectangle",
                                    format!("definition-1 rectangle violated: {other:?}"),
                                ))
                            }
                        }
                    }
                }
                adb.restore(&snap);
                if user_dump(&adb, &tables) != base_dump {
                    return Err(fail(
                        "snapshot-restore",
                        "restore did not return the database to its snapshot".into(),
                    ));
                }
                stats.snapshots += 1;
            }
        }
    }

    if let Some(t) = tcp.take() {
        t.stop();
    }
    Ok(stats)
}

/// Convenience: generate + run one seed.
pub fn run_seed(seed: u64, opts: &OracleOptions) -> Result<RunStats, Divergence> {
    run_raw(&Plan::generate(seed).raw(), opts)
}

/// A live server + one client connection for the TCP surface.
struct TcpHarness {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    handle: ufilter_service::ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl TcpHarness {
    fn start(
        plan: &RawPlan,
        schema: &ufilter_rdb::DatabaseSchema,
        db: &Db,
    ) -> Result<TcpHarness, Divergence> {
        let gen_err = |detail: String| Divergence {
            seed: plan.seed,
            kind: "tcp-setup".into(),
            view: String::new(),
            update: String::new(),
            detail,
        };
        let sharded = ShardedCatalog::new(schema.clone(), 2);
        for (name, text) in &plan.views {
            sharded.add(name, text).map_err(|e| gen_err(format!("server add {name}: {e}")))?;
        }
        let server = CheckServer::bind("127.0.0.1:0", Arc::new(sharded), db, 2)
            .map_err(|e| gen_err(format!("bind: {e}")))?;
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        let stream = TcpStream::connect(addr).map_err(|e| gen_err(format!("connect: {e}")))?;
        let reader =
            BufReader::new(stream.try_clone().map_err(|e| gen_err(format!("clone: {e}")))?);
        Ok(TcpHarness { reader, writer: stream, handle, thread })
    }

    /// Send one CHECK, return the wire line after `OK ` (or an error
    /// description).
    fn check(&mut self, view: &str, update: &str) -> Result<String, String> {
        writeln!(self.writer, "{}", check_request(view, update)).map_err(|e| e.to_string())?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply).map_err(|e| e.to_string())?;
        let reply = reply.trim_end();
        reply
            .strip_prefix("OK ")
            .map(str::to_string)
            .ok_or_else(|| format!("expected OK, got: {reply}"))
    }

    fn stop(self) {
        self.handle.shutdown();
        let _ = self.thread.join();
    }
}
