//! Counterexample shrinking: greedy structural minimization of a failing
//! [`Plan`].
//!
//! Each step proposes one-change-smaller candidate plans (drop an update,
//! a view, a row, a predicate, an action, a content item, a comment) and
//! keeps the first candidate that still fails with the *same divergence
//! kind* — the kind match stops the shrinker from drifting onto unrelated
//! failures (e.g. reducing a surface mismatch into a view that no longer
//! compiles). Runs to a fixpoint under an evaluation budget.

use ufilter_xquery::{Content, Flwr};

use crate::gen_update::{GenUpdate, UpdSpec};
use crate::gen_view::GenView;
use crate::oracle::{run_raw, Divergence, OracleOptions, Plan};

/// Minimize `plan`, known to fail with `original`, against the full
/// differential oracle ([`run_raw`]). Returns the smallest failing plan
/// found and its divergence.
pub fn shrink(
    plan: Plan,
    original: Divergence,
    opts: &OracleOptions,
    budget: usize,
) -> (Plan, Divergence) {
    shrink_with(plan, original, budget, |raw| match run_raw(raw, opts) {
        Ok(_) => Ok(()),
        Err(div) => Err(div),
    })
}

/// Minimize `plan` against an arbitrary `runner` — the oracle stages that
/// are not the full four-surface check (e.g. the routing-agreement stage)
/// plug in here. A candidate is kept only when the runner fails with the
/// *same divergence kind*, so shrinking never drifts onto an unrelated
/// failure.
pub fn shrink_with(
    plan: Plan,
    original: Divergence,
    mut budget: usize,
    runner: impl Fn(&crate::oracle::RawPlan) -> Result<(), Divergence>,
) -> (Plan, Divergence) {
    let mut best = plan;
    let mut best_div = original;
    'outer: loop {
        for cand in candidates(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(div) = runner(&cand.raw()) {
                if div.kind == best_div.kind {
                    best = cand;
                    best_div = div;
                    continue 'outer; // restart from the smaller plan
                }
            }
        }
        break; // no candidate still fails: fixpoint
    }
    (best, best_div)
}

/// All one-step reductions of a plan.
fn candidates(p: &Plan) -> Vec<Plan> {
    let mut out = Vec::new();
    let clone_with = |views: Vec<GenView>, updates: Vec<GenUpdate>, schema| Plan {
        seed: p.seed,
        schema,
        views,
        updates,
    };

    // Drop one update.
    if p.updates.len() > 1 {
        for j in 0..p.updates.len() {
            let mut updates = p.updates.clone();
            updates.remove(j);
            out.push(clone_with(p.views.clone(), updates, p.schema.clone()));
        }
    }
    // Drop one view.
    if p.views.len() > 1 {
        for i in 0..p.views.len() {
            let mut views = p.views.clone();
            views.remove(i);
            out.push(clone_with(views, p.updates.clone(), p.schema.clone()));
        }
    }
    // Drop one table row.
    for (t, table) in p.schema.tables.iter().enumerate() {
        if table.rows.len() > 1 {
            for r in 0..table.rows.len() {
                let mut schema = p.schema.clone();
                schema.tables[t].rows.remove(r);
                out.push(clone_with(p.views.clone(), p.updates.clone(), schema));
            }
        }
    }
    // Drop an unreferenced trailing table (views may reference earlier
    // tables through FKs, so only the last table is safely removable).
    if p.schema.tables.len() > 1 {
        let last = &p.schema.tables[p.schema.tables.len() - 1];
        let referenced =
            p.views.iter().any(|v| v.query.relations().iter().any(|r| r == &last.name));
        if !referenced {
            let mut schema = p.schema.clone();
            schema.tables.pop();
            out.push(clone_with(p.views.clone(), p.updates.clone(), schema));
        }
    }
    // Reduce one update.
    for (j, u) in p.updates.iter().enumerate() {
        for red in update_reductions(u) {
            let mut updates = p.updates.clone();
            updates[j] = red;
            out.push(clone_with(p.views.clone(), updates, p.schema.clone()));
        }
    }
    // Reduce one view.
    for (i, v) in p.views.iter().enumerate() {
        for red in view_reductions(v) {
            let mut views = p.views.clone();
            views[i] = red;
            out.push(clone_with(views, p.updates.clone(), p.schema.clone()));
        }
    }
    out
}

fn update_reductions(u: &GenUpdate) -> Vec<GenUpdate> {
    let UpdSpec::Ast(stmt) = &u.spec else { return Vec::new() };
    let mut out = Vec::new();
    for i in 0..stmt.predicates.len() {
        let mut s = stmt.clone();
        s.predicates.remove(i);
        out.push(GenUpdate { label: u.label, spec: UpdSpec::Ast(s) });
    }
    if stmt.actions.len() > 1 {
        for i in 0..stmt.actions.len() {
            let mut s = stmt.clone();
            s.actions.remove(i);
            out.push(GenUpdate { label: u.label, spec: UpdSpec::Ast(s) });
        }
    }
    out
}

fn view_reductions(v: &GenView) -> Vec<GenView> {
    let mut out = Vec::new();
    if v.comment {
        out.push(GenView { comment: false, ..v.clone() });
    }
    for content in reduce_content(&v.query.content) {
        let mut red = v.clone();
        red.query.content = content;
        out.push(red);
    }
    out
}

/// One-step reductions of a content list: drop one item (keeping at least
/// one), or reduce one item in place.
fn reduce_content(items: &[Content]) -> Vec<Vec<Content>> {
    let mut out = Vec::new();
    if items.len() > 1 {
        for i in 0..items.len() {
            let mut xs = items.to_vec();
            xs.remove(i);
            out.push(xs);
        }
    }
    for (i, item) in items.iter().enumerate() {
        let reduced: Vec<Content> = match item {
            Content::Flwr(f) => reduce_flwr(f).into_iter().map(Content::Flwr).collect(),
            Content::Element(e) => reduce_content(&e.content)
                .into_iter()
                .map(|c| {
                    Content::Element(ufilter_xquery::ElementCtor { tag: e.tag.clone(), content: c })
                })
                .collect(),
            _ => Vec::new(),
        };
        for r in reduced {
            let mut xs = items.to_vec();
            xs[i] = r;
            out.push(xs);
        }
    }
    out
}

fn reduce_flwr(f: &Flwr) -> Vec<Flwr> {
    let mut out = Vec::new();
    for i in 0..f.predicates.len() {
        let mut g = f.clone();
        g.predicates.remove(i);
        out.push(g);
    }
    if f.bindings.iter().any(|b| b.distinct) {
        let mut g = f.clone();
        for b in &mut g.bindings {
            b.distinct = false;
        }
        out.push(g);
    }
    for ret in reduce_content(&f.ret) {
        let mut g = f.clone();
        g.ret = ret;
        out.push(g);
    }
    out
}
