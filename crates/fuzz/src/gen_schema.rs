//! Schema + data generator: small relational databases in the repo's DDL
//! dialect (the Fig. 1 book database generalised).
//!
//! Shapes covered: 1-3 tables chained by optional foreign keys (`ON DELETE
//! CASCADE`), string keys, `INT`/`DOUBLE`/`VARCHAR2` data columns,
//! occasional `NOT NULL` and `CHECK (col > 0.00)` constraints, and 2-5 rows
//! per table with foreign-key-consistent values. Every value a row holds is
//! chosen so that its SQL literal, its XML text rendering and
//! `ufilter_rdb::Value::render` agree byte-for-byte — the differential
//! oracle compares materialized documents textually.

use crate::rng::FuzzRng;

/// Column type of a generated data column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColTy {
    Str,
    Int,
    Double,
}

/// A generated literal. Doubles are constructed from integer cents so that
/// their shortest-representation text is stable under parse/render cycles.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Str(String),
    Int(i64),
    Double(f64),
}

impl Lit {
    /// SQL literal form (`'red'`, `7`, `12.50`).
    pub fn sql(&self) -> String {
        match self {
            Lit::Str(s) => format!("'{s}'"),
            Lit::Int(i) => i.to_string(),
            Lit::Double(d) => render_double(*d),
        }
    }

    /// XML text form — must match [`ufilter_rdb::Value::render`].
    pub fn text(&self) -> String {
        match self {
            Lit::Str(s) => s.clone(),
            Lit::Int(i) => i.to_string(),
            Lit::Double(d) => render_double(*d),
        }
    }

    pub fn to_value(&self) -> ufilter_rdb::Value {
        match self {
            Lit::Str(s) => ufilter_rdb::Value::Str(s.clone()),
            Lit::Int(i) => ufilter_rdb::Value::Int(*i),
            Lit::Double(d) => ufilter_rdb::Value::Double(*d),
        }
    }
}

/// Same formatting rule as `Value::render` for doubles.
fn render_double(d: f64) -> String {
    if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{d:.2}")
    } else {
        d.to_string()
    }
}

/// A non-key, non-FK data column.
#[derive(Debug, Clone)]
pub struct GenColumn {
    pub name: String,
    pub ty: ColTy,
    pub not_null: bool,
    /// Render a `CHECK (name > 0.00)` constraint (Double columns only).
    pub check_positive: bool,
}

/// Foreign key from this table to an earlier one.
#[derive(Debug, Clone)]
pub struct GenFk {
    pub column: String,
    pub parent: String,
    pub parent_key: String,
}

/// One generated table: key column, optional FK, data columns, rows.
/// Column order is `key, fk?, cols...` everywhere (DDL, rows, inserts).
#[derive(Debug, Clone)]
pub struct GenTable {
    pub name: String,
    pub key: String,
    pub fk: Option<GenFk>,
    pub cols: Vec<GenColumn>,
    /// Row values in column order.
    pub rows: Vec<Vec<Lit>>,
}

impl GenTable {
    /// All column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        let mut out = vec![self.key.clone()];
        if let Some(fk) = &self.fk {
            out.push(fk.column.clone());
        }
        out.extend(self.cols.iter().map(|c| c.name.clone()));
        out
    }

    /// Type of a named column (key and FK columns are strings).
    pub fn column_ty(&self, name: &str) -> Option<ColTy> {
        if name == self.key || self.fk.as_ref().is_some_and(|f| f.column == name) {
            return Some(ColTy::Str);
        }
        self.cols.iter().find(|c| c.name == name).map(|c| c.ty)
    }

    /// Names of numeric (Int/Double) data columns.
    pub fn numeric_cols(&self) -> Vec<&GenColumn> {
        self.cols.iter().filter(|c| matches!(c.ty, ColTy::Int | ColTy::Double)).collect()
    }
}

/// A generated database: tables plus rows, renderable as one SQL script.
#[derive(Debug, Clone)]
pub struct GenSchema {
    pub tables: Vec<GenTable>,
}

const TABLE_NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
const WORDS: [&str; 8] = ["red", "blue", "lime", "onyx", "pearl", "amber", "jade", "slate"];
// (name, type): the pool data columns are drawn from. Names are distinct
// from every key/FK column name (`<table>id`).
const COL_POOL: [(&str, ColTy); 9] = [
    ("label", ColTy::Str),
    ("city", ColTy::Str),
    ("note", ColTy::Str),
    ("qty", ColTy::Int),
    ("rank", ColTy::Int),
    ("grade", ColTy::Int),
    ("price", ColTy::Double),
    ("score", ColTy::Double),
    ("bonus", ColTy::Double),
];

impl GenSchema {
    pub fn generate(rng: &mut FuzzRng) -> GenSchema {
        let n_tables = rng.int(1, 3) as usize;
        let mut tables: Vec<GenTable> = Vec::new();
        for t in 0..n_tables {
            let name = TABLE_NAMES[t].to_string();
            let key = format!("{name}id");
            // Chain tables: each may reference the previous one, which
            // gives the view generator parent/child join material.
            let fk = if t > 0 && rng.chance(0.7) {
                let parent = &tables[t - 1];
                Some(GenFk {
                    column: parent.key.clone(),
                    parent: parent.name.clone(),
                    parent_key: parent.key.clone(),
                })
            } else {
                None
            };
            let n_cols = rng.int(1, 3) as usize;
            let picks = rng.subset(COL_POOL.len(), n_cols);
            let cols: Vec<GenColumn> = picks
                .into_iter()
                .map(|i| {
                    let (cname, ty) = COL_POOL[i];
                    GenColumn {
                        name: cname.to_string(),
                        ty,
                        not_null: rng.chance(0.25),
                        check_positive: ty == ColTy::Double && rng.chance(0.35),
                    }
                })
                .collect();

            let n_rows = rng.int(2, 5) as usize;
            let mut rows = Vec::new();
            for r in 0..n_rows {
                let mut row = vec![Lit::Str(format!("k{t}{r:02}"))];
                if let Some(fk) = &fk {
                    let parent =
                        tables.iter().find(|p| p.name == fk.parent).expect("parent generated");
                    let pr = rng.index(parent.rows.len());
                    row.push(parent.rows[pr][0].clone());
                }
                for c in &cols {
                    row.push(gen_value(rng, c));
                }
                rows.push(row);
            }
            tables.push(GenTable { name, key, fk, cols, rows });
        }
        GenSchema { tables }
    }

    pub fn table(&self, name: &str) -> Option<&GenTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Tables whose FK points at `parent`.
    pub fn children_of(&self, parent: &str) -> Vec<&GenTable> {
        self.tables.iter().filter(|t| t.fk.as_ref().is_some_and(|f| f.parent == parent)).collect()
    }

    /// The full DDL + INSERT script (the `-- schema` section of a corpus
    /// case; also what the oracle executes on a fresh [`ufilter_rdb::Db`]).
    pub fn sql(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            let mut defs: Vec<String> = vec![format!("{} VARCHAR2(10)", t.key)];
            if let Some(fk) = &t.fk {
                defs.push(format!("{} VARCHAR2(10)", fk.column));
            }
            for c in &t.cols {
                let ty = match c.ty {
                    ColTy::Str => "VARCHAR2(40)".to_string(),
                    ColTy::Int => "INT".to_string(),
                    ColTy::Double => "DOUBLE".to_string(),
                };
                let mut def = format!("{} {}", c.name, ty);
                if c.check_positive {
                    def.push_str(&format!(" CHECK ({} > 0.00)", c.name));
                }
                if c.not_null {
                    def.push_str(" NOT NULL");
                }
                defs.push(def);
            }
            let cap = {
                let mut s = t.name.clone();
                if let Some(c) = s.get_mut(0..1) {
                    c.make_ascii_uppercase();
                }
                s
            };
            defs.push(format!("CONSTRAINTS {cap}PK PRIMARYKEY ({})", t.key));
            if let Some(fk) = &t.fk {
                defs.push(format!(
                    "FOREIGNKEY ({}) REFERENCES {} ({}) ON DELETE CASCADE",
                    fk.column, fk.parent, fk.parent_key
                ));
            }
            out.push_str(&format!("CREATE TABLE {}({});\n", t.name, defs.join(", ")));
        }
        for t in &self.tables {
            for row in &t.rows {
                let vals: Vec<String> = row.iter().map(Lit::sql).collect();
                out.push_str(&format!("INSERT INTO {} VALUES ({});\n", t.name, vals.join(", ")));
            }
        }
        out
    }
}

/// A column value consistent with the column's constraints: positive when
/// CHECKed, occasionally negative otherwise (exercising the signed-literal
/// path the round-trip property fixed).
fn gen_value(rng: &mut FuzzRng, c: &GenColumn) -> Lit {
    match c.ty {
        ColTy::Str => Lit::Str(rng.pick(&WORDS).to_string()),
        ColTy::Int => {
            if !c.check_positive && rng.chance(0.15) {
                Lit::Int(rng.int(-20, -1))
            } else {
                Lit::Int(rng.int(1, 99))
            }
        }
        ColTy::Double => {
            let cents = rng.int(100, 9900);
            Lit::Double(cents as f64 / 100.0)
        }
    }
}
