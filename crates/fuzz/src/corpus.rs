//! Corpus files: minimized counterexamples rendered as plain text, checked
//! into `fixtures/fuzz_corpus/` and replayed as regression tests.
//!
//! Format (line-oriented; `--` headers open sections):
//!
//! ```text
//! # ufilter-fuzz case
//! # seed: 42
//! -- schema
//! CREATE TABLE ...;
//! INSERT INTO ...;
//! -- view v0
//! <V0> ... </V0>
//! -- update
//! FOR $r IN document("V.xml") ...
//! ```
//!
//! A case holds exactly one schema section, one or more views, and one or
//! more updates — the same shape [`RawPlan`] lowers to, so replay is just
//! [`crate::oracle::run_raw`].

use crate::oracle::RawPlan;

/// Render a raw plan as a corpus file.
pub fn render(plan: &RawPlan, note: &str) -> String {
    let mut out = String::from("# ufilter-fuzz case\n");
    out.push_str(&format!("# seed: {}\n", plan.seed));
    if !note.is_empty() {
        for line in note.lines() {
            out.push_str(&format!("# {line}\n"));
        }
    }
    out.push_str("-- schema\n");
    out.push_str(plan.schema_sql.trim_end());
    out.push('\n');
    for (name, text) in &plan.views {
        out.push_str(&format!("-- view {name}\n"));
        out.push_str(text.trim_end());
        out.push('\n');
    }
    for u in &plan.updates {
        out.push_str("-- update\n");
        out.push_str(u.trim_end());
        out.push('\n');
    }
    out
}

/// Parse a corpus file back into a raw plan.
pub fn parse(text: &str) -> Result<RawPlan, String> {
    let mut seed = 0u64;
    let mut schema_sql: Option<String> = None;
    let mut views: Vec<(String, String)> = Vec::new();
    let mut updates: Vec<String> = Vec::new();

    enum Section {
        None,
        Schema,
        View(String),
        Update,
    }
    let mut current = Section::None;
    let mut buf = String::new();

    let mut flush = |section: &Section, buf: &mut String| -> Result<(), String> {
        let body = std::mem::take(buf).trim().to_string();
        match section {
            Section::None => Ok(()),
            Section::Schema => {
                if schema_sql.replace(body).is_some() {
                    return Err("duplicate -- schema section".into());
                }
                Ok(())
            }
            Section::View(name) => {
                views.push((name.clone(), body));
                Ok(())
            }
            Section::Update => {
                updates.push(body);
                Ok(())
            }
        }
    };

    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# seed:") {
            seed = rest.trim().parse().map_err(|e| format!("bad seed line: {e}"))?;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("-- ") {
            flush(&current, &mut buf)?;
            current = if header.trim() == "schema" {
                Section::Schema
            } else if let Some(name) = header.trim().strip_prefix("view ") {
                Section::View(name.trim().to_string())
            } else if header.trim() == "update" {
                Section::Update
            } else {
                return Err(format!("unknown section header: {line}"));
            };
            continue;
        }
        buf.push_str(line);
        buf.push('\n');
    }
    flush(&current, &mut buf)?;

    let schema_sql = schema_sql.ok_or("missing -- schema section")?;
    if views.is_empty() {
        return Err("no -- view sections".into());
    }
    if updates.is_empty() {
        return Err("no -- update sections".into());
    }
    Ok(RawPlan { seed, schema_sql, views, updates })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_round_trips() {
        let plan = RawPlan {
            seed: 7,
            schema_sql: "CREATE TABLE t(a INT);\nINSERT INTO t VALUES (1);".into(),
            views: vec![("v0".into(), "<V0>\nFOR $b IN x\n</V0>".into())],
            updates: vec!["FOR $r IN document(\"V.xml\")\nUPDATE $r { DELETE $r/x }".into()],
        };
        let text = render(&plan, "example note");
        let back = parse(&text).expect("parses");
        assert_eq!(plan, back);
    }

    #[test]
    fn parse_rejects_incomplete_cases() {
        assert!(parse("# ufilter-fuzz case\n-- schema\nCREATE TABLE t(a INT);").is_err());
        assert!(parse("-- view v\n<V></V>\n-- update\nu").is_err());
        assert!(parse("-- wat\nx").is_err());
    }
}
