//! View-query generator: schema-aware ASTs spanning the supported surface
//! (FLWR nesting, join/local/aggregate predicates, `distinct()`, aggregate
//! and static elements, comment injection) while staying inside the
//! ASG-compilable subset — FOR sources are always base-table scans, every
//! projection names a real column, and every predicate classifies as a
//! join, a local comparison or an aggregate gate.
//!
//! Alongside the AST the generator records the *region structure* (which
//! element tags correspond to which table's rows), which the update
//! generator uses to aim inserts/deletes/replaces at real view regions.

use ufilter_rdb::{CmpOp, Value};
use ufilter_xquery::{
    AggFunc, AggregateExpr, Content, ElementCtor, Flwr, ForBinding, Operand, PathExpr, Predicate,
    Source, ViewQuery,
};

use crate::gen_schema::{ColTy, GenSchema, GenTable, Lit};
use crate::rng::FuzzRng;

const DOC: &str = "default.xml";

/// A projected column element inside a region.
#[derive(Debug, Clone)]
pub struct RegionCol {
    /// Element tag (== column name).
    pub tag: String,
    pub ty: ColTy,
}

/// A constant local predicate on the region's primary table, recorded so
/// the update generator can aim *domain-disjoint* predicates at the same
/// column (the independence analysis's Distinct-region rescue).
#[derive(Debug, Clone)]
pub struct GenPred {
    /// Column name on the region's primary table.
    pub col: String,
    pub op: CmpOp,
    pub value: Value,
}

/// One FLWR-constructed element of the view and what it projects.
#[derive(Debug, Clone)]
pub struct Region {
    /// Constructor tag.
    pub tag: String,
    /// Tag path from the view root down to this region's elements.
    pub steps: Vec<String>,
    /// The region's primary bound table.
    pub table: String,
    /// Projected key column tag, if the key is projected.
    pub key_tag: Option<String>,
    /// Projected non-key column elements.
    pub cols: Vec<RegionCol>,
    /// Nested plain constructors grouping a joined parent table:
    /// `(tag, parent table, its projected columns)`.
    pub groups: Vec<(String, String, Vec<RegionCol>)>,
    /// Nested FLWR regions.
    pub children: Vec<Region>,
    /// Whether the primary binding is `distinct(...)`.
    pub distinct: bool,
    /// Constant local membership predicates on the primary table.
    pub preds: Vec<GenPred>,
    /// Column compared against an aggregate gate, if the region has one.
    pub gate_col: Option<String>,
}

impl Region {
    /// This region and every nested region, depth-first.
    pub fn flatten<'a>(&'a self, out: &mut Vec<&'a Region>) {
        out.push(self);
        for c in &self.children {
            c.flatten(out);
        }
    }
}

/// A standalone aggregate the view projects (the BookStats shape). The
/// update generator's bias mode aims value writes at — and away from —
/// the operand column.
#[derive(Debug, Clone)]
pub struct GenAggregate {
    /// The aggregated table.
    pub table: String,
    /// The operand column; `None` for row counts (`count(table)`).
    pub column: Option<String>,
}

/// A generated view: registration name, AST, region metadata, and whether
/// the rendered text carries an injected comment.
#[derive(Debug, Clone)]
pub struct GenView {
    pub name: String,
    pub query: ViewQuery,
    pub regions: Vec<Region>,
    /// Standalone aggregates projected at the view root.
    pub aggregates: Vec<GenAggregate>,
    pub comment: bool,
}

impl GenView {
    /// The text registered with the catalog (print + optional comment —
    /// comments must strip to whitespace, so the parse is unchanged).
    pub fn text(&self) -> String {
        let printed = ufilter_xquery::print_view_query(&self.query);
        if self.comment {
            printed.replacen('\n', " (: fuzz :)\n", 1)
        } else {
            printed
        }
    }

    /// All regions, nested ones included.
    pub fn all_regions(&self) -> Vec<&Region> {
        let mut out = Vec::new();
        for r in &self.regions {
            r.flatten(&mut out);
        }
        out
    }
}

/// Generate one view over `schema`. `idx` keeps names unique per plan.
pub fn generate(rng: &mut FuzzRng, schema: &GenSchema, idx: usize) -> GenView {
    generate_with(rng, schema, idx, false)
}

/// Bias mode for the independence-acceptance stream: every view projects
/// at least one standalone aggregate (usually over the first region's own
/// table, so region-aimed updates land in the blunt non-injective gate),
/// `distinct()` bindings and local predicates are more frequent, and the
/// recorded [`GenAggregate`]/[`GenPred`] metadata lets the update
/// generator aim at — or provably away from — the read-sets.
pub fn generate_aggregated(rng: &mut FuzzRng, schema: &GenSchema, idx: usize) -> GenView {
    generate_with(rng, schema, idx, true)
}

/// Per-FLWR knobs for the aggregated bias mode. `None` everywhere in the
/// unbiased generator, whose RNG stream must stay byte-identical (corpus
/// `.case` seeds replay through it).
#[derive(Debug, Clone, Copy)]
struct FlwrBias {
    /// Probability the primary binding is `distinct(...)`.
    distinct_p: f64,
    /// Probability a local predicate pins the key column with a value
    /// drawn from real rows — satisfiable, and harmless to value writes.
    key_pred_p: f64,
    /// Project every data column, so the update generator always has a
    /// non-operand column left to write after the avoid set is removed.
    project_all: bool,
}

fn generate_with(rng: &mut FuzzRng, schema: &GenSchema, idx: usize, bias: bool) -> GenView {
    let mut varc = 0usize;
    let mut tagc = 0usize;
    let mut content: Vec<Content> = Vec::new();
    let mut regions: Vec<Region> = Vec::new();
    let mut aggregates: Vec<GenAggregate> = Vec::new();

    let n_flwrs = if rng.chance(if bias { 0.6 } else { 0.3 }) { 2 } else { 1 };
    for i in 0..n_flwrs {
        let t = rng.index(schema.tables.len());
        // Bias: a second FLWR usually rescans the first region's table, so
        // a distinct() binding on one side gives the independence
        // analysis's domain-disjointness rescue a shape to prove.
        let same_table = bias && i == 1 && rng.chance(0.85);
        let table = if same_table {
            schema.table(&regions[0].table).expect("region table exists")
        } else {
            &schema.tables[t]
        };
        // Bias keeps the first (update-target) region injective and fully
        // projected so value writes can flip, and makes a same-table
        // second region a frequent *partially projected* distinct() donor
        // — partial, so a write the rescue admits is not also projected at
        // a second view position.
        let profile = match (bias, same_table) {
            (false, _) => None,
            (true, true) => Some(FlwrBias { distinct_p: 0.7, key_pred_p: 0.0, project_all: false }),
            (true, false) => {
                Some(FlwrBias { distinct_p: 0.08, key_pred_p: 0.65, project_all: true })
            }
        };
        let (flwr, region) =
            gen_flwr(rng, schema, table, Vec::new(), &mut varc, &mut tagc, 0, profile);
        content.push(Content::Flwr(flwr));
        regions.push(region);
    }
    let push_agg = |rng: &mut FuzzRng,
                    forced: Option<&GenTable>,
                    tagc: &mut usize,
                    content: &mut Vec<Content>,
                    aggregates: &mut Vec<GenAggregate>| {
        if let Some(agg) = gen_aggregate(rng, schema, forced) {
            *tagc += 1;
            aggregates.push(GenAggregate { table: agg.table.clone(), column: agg.column.clone() });
            content.push(Content::Element(ElementCtor {
                tag: format!("stat{tagc}"),
                content: vec![Content::Aggregate(agg)],
            }));
        }
    };
    if rng.chance(if bias { 1.0 } else { 0.3 }) {
        // Bias aims the aggregate at a region's own table so updates on
        // that region must pass through the independence analysis.
        let forced = if bias && rng.chance(0.75) { schema.table(&regions[0].table) } else { None };
        push_agg(rng, forced, &mut tagc, &mut content, &mut aggregates);
    }
    if bias && rng.chance(0.35) {
        push_agg(rng, None, &mut tagc, &mut content, &mut aggregates);
    }
    if rng.chance(0.2) {
        tagc += 1;
        content.push(Content::Element(ElementCtor {
            tag: format!("meta{tagc}"),
            content: vec![Content::Text("generated".into())],
        }));
    }

    GenView {
        name: format!("v{idx}"),
        query: ViewQuery { root_tag: format!("V{idx}"), content },
        regions,
        aggregates,
        comment: rng.chance(0.3),
    }
}

/// A FLWR over `table` plus its region record. `steps` is the tag path of
/// the enclosing constructors.
#[allow(clippy::too_many_arguments)]
fn gen_flwr(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    table: &GenTable,
    steps: Vec<String>,
    varc: &mut usize,
    tagc: &mut usize,
    depth: usize,
    bias: Option<FlwrBias>,
) -> (Flwr, Region) {
    let var = format!("v{varc}");
    *varc += 1;
    let distinct = rng.chance(bias.map_or(0.12, |b| b.distinct_p));
    let mut bindings = vec![ForBinding {
        var: var.clone(),
        source: Source::Table { doc: DOC.into(), table: table.name.clone() },
        distinct,
    }];
    let mut predicates: Vec<Predicate> = Vec::new();

    // Optional join with the FK parent (book ⋈ publisher shape).
    let parent_join = match &table.fk {
        Some(fk) if rng.chance(0.45) => {
            let pvar = format!("v{varc}");
            *varc += 1;
            bindings.push(ForBinding {
                var: pvar.clone(),
                source: Source::Table { doc: DOC.into(), table: fk.parent.clone() },
                distinct: false,
            });
            predicates.push(Predicate {
                lhs: Operand::Path(PathExpr { var: var.clone(), steps: vec![fk.column.clone()] }),
                op: CmpOp::Eq,
                rhs: Operand::Path(PathExpr {
                    var: pvar.clone(),
                    steps: vec![fk.parent_key.clone()],
                }),
            });
            Some((pvar, fk.parent.clone()))
        }
        _ => None,
    };

    // Local predicates on the primary table (bias guarantees at least one,
    // giving the disjoint-predicate update strategy something to miss).
    let mut local_preds: Vec<GenPred> = Vec::new();
    for _ in 0..rng.int(if bias.is_some() { 1 } else { 0 }, 2) {
        if let Some(p) = gen_local_pred(rng, table, &var, bias.map_or(0.0, |b| b.key_pred_p)) {
            if let Some(g) = const_pred(&p) {
                local_preds.push(g);
            }
            predicates.push(p);
        }
    }
    // Occasional aggregate gate.
    let mut gate_col: Option<String> = None;
    if rng.chance(0.1) {
        if let Some(p) = gen_agg_pred(rng, table, &var) {
            if let Operand::Path(path) = &p.lhs {
                gate_col = path.steps.first().cloned();
            }
            predicates.push(p);
        }
    }

    // RETURN constructor.
    *tagc += 1;
    let tag = format!("r{}{}", table.name, tagc);
    let mut ret_inner: Vec<Content> = Vec::new();
    let mut region = Region {
        tag: tag.clone(),
        steps: {
            let mut s = steps.clone();
            s.push(tag.clone());
            s
        },
        table: table.name.clone(),
        key_tag: None,
        cols: Vec::new(),
        groups: Vec::new(),
        children: Vec::new(),
        distinct,
        preds: local_preds,
        gate_col,
    };

    // Bias always projects the key: keyed update predicates then pin a
    // real row, so the data-context existence checks pass.
    if rng.chance(if bias.is_some() { 1.0 } else { 0.85 }) {
        ret_inner.push(Content::Projection(PathExpr {
            var: var.clone(),
            steps: vec![table.key.clone()],
        }));
        region.key_tag = Some(table.key.clone());
    }
    if !table.cols.is_empty() {
        let k = if bias.is_some_and(|b| b.project_all) {
            table.cols.len()
        } else {
            rng.int(1, table.cols.len() as i64) as usize
        };
        for i in rng.subset(table.cols.len(), k) {
            let c = &table.cols[i];
            let mut psteps = vec![c.name.clone()];
            // Rare text() projection: renders the value as a bare text
            // node, so it is not a column element of the region.
            if rng.chance(if bias.is_some() { 0.0 } else { 0.08 }) {
                psteps.push("text()".into());
                ret_inner.push(Content::Projection(PathExpr { var: var.clone(), steps: psteps }));
            } else {
                ret_inner.push(Content::Projection(PathExpr { var: var.clone(), steps: psteps }));
                region.cols.push(RegionCol { tag: c.name.clone(), ty: c.ty });
            }
        }
    }

    // Group the joined parent's columns under a nested plain constructor.
    if let Some((pvar, ptable)) = &parent_join {
        if rng.chance(0.7) {
            let parent = schema.table(ptable).expect("parent table exists");
            *tagc += 1;
            let gtag = format!("g{}{}", parent.name, tagc);
            let mut gcols = vec![RegionCol { tag: parent.key.clone(), ty: ColTy::Str }];
            let mut gcontent = vec![Content::Projection(PathExpr {
                var: pvar.clone(),
                steps: vec![parent.key.clone()],
            })];
            if !parent.cols.is_empty() {
                let c = &parent.cols[rng.index(parent.cols.len())];
                gcontent.push(Content::Projection(PathExpr {
                    var: pvar.clone(),
                    steps: vec![c.name.clone()],
                }));
                gcols.push(RegionCol { tag: c.name.clone(), ty: c.ty });
            }
            ret_inner.push(Content::Element(ElementCtor { tag: gtag.clone(), content: gcontent }));
            region.groups.push((gtag, parent.name.clone(), gcols));
        }
    }

    // Nested FLWR over an FK child, correlated to this row (book → review).
    if depth < 2 {
        let children = schema.children_of(&table.name);
        if !children.is_empty() && rng.chance(0.45) {
            let child = children[rng.index(children.len())];
            let nested = bias.map(|b| FlwrBias { distinct_p: 0.05, ..b });
            let (mut cf, creg) =
                gen_flwr(rng, schema, child, region.steps.clone(), varc, tagc, depth + 1, nested);
            let fk = child.fk.as_ref().expect("child has an FK");
            cf.predicates.insert(
                0,
                Predicate {
                    lhs: Operand::Path(PathExpr {
                        var: cf.bindings[0].var.clone(),
                        steps: vec![fk.column.clone()],
                    }),
                    op: CmpOp::Eq,
                    rhs: Operand::Path(PathExpr {
                        var: var.clone(),
                        steps: vec![fk.parent_key.clone()],
                    }),
                },
            );
            ret_inner.push(Content::Flwr(cf));
            region.children.push(creg);
        }
    }

    let flwr = Flwr {
        bindings,
        predicates,
        ret: vec![Content::Element(ElementCtor { tag, content: ret_inner })],
    };
    (flwr, region)
}

/// The recordable `(col, op, literal)` form of a generated predicate.
fn const_pred(p: &Predicate) -> Option<GenPred> {
    let Operand::Path(path) = &p.lhs else { return None };
    let Operand::Literal(v) = &p.rhs else { return None };
    if path.steps.len() != 1 {
        return None;
    }
    Some(GenPred { col: path.steps[0].clone(), op: p.op, value: v.clone() })
}

/// `$var/col θ literal`, with the literal drawn near the table's actual
/// values so predicates are satisfiable about half the time.
/// `key_pred_p > 0` (bias mode only — it draws extra randomness) diverts
/// that share of predicates onto the key column with a real row's value:
/// always satisfiable, and never in the way of a data-column write.
fn gen_local_pred(
    rng: &mut FuzzRng,
    table: &GenTable,
    var: &str,
    key_pred_p: f64,
) -> Option<Predicate> {
    if key_pred_p > 0.0 && !table.rows.is_empty() && rng.chance(key_pred_p) {
        let v = table.rows[rng.index(table.rows.len())][0].text();
        let op = if rng.chance(0.7) { CmpOp::Ne } else { CmpOp::Eq };
        return Some(Predicate {
            lhs: Operand::Path(PathExpr { var: var.to_string(), steps: vec![table.key.clone()] }),
            op,
            rhs: Operand::Literal(Value::Str(v)),
        });
    }
    let names = table.column_names();
    let col = names[rng.index(names.len())].clone();
    let ty = table.column_ty(&col)?;
    let col_pos = names.iter().position(|n| *n == col)?;
    let (op, lit) = match ty {
        ColTy::Str => {
            let v = if rng.chance(0.6) && !table.rows.is_empty() {
                table.rows[rng.index(table.rows.len())][col_pos].text()
            } else {
                "zinc".to_string()
            };
            let op = if rng.chance(0.7) { CmpOp::Eq } else { CmpOp::Ne };
            (op, Value::Str(v))
        }
        ColTy::Int => (num_op(rng), Value::Int(rng.int(-10, 80))),
        ColTy::Double => (num_op(rng), Value::Double(rng.int(-10, 90) as f64)),
    };
    Some(Predicate {
        lhs: Operand::Path(PathExpr::new(var, vec![col.as_str()])),
        op,
        rhs: Operand::Literal(lit),
    })
}

fn num_op(rng: &mut FuzzRng) -> CmpOp {
    *rng.pick(&[CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge])
}

/// An aggregate gate: `$v/num ≤ max(...)` when the table has a numeric
/// column, `count(...) > 0` otherwise.
fn gen_agg_pred(rng: &mut FuzzRng, table: &GenTable, var: &str) -> Option<Predicate> {
    let numeric = table.numeric_cols();
    if let Some(c) = numeric.first() {
        let func = if rng.chance(0.5) { AggFunc::Max } else { AggFunc::Min };
        let op = if func == AggFunc::Max { CmpOp::Le } else { CmpOp::Ge };
        Some(Predicate {
            lhs: Operand::Path(PathExpr::new(var, vec![c.name.as_str()])),
            op,
            rhs: Operand::Aggregate(AggregateExpr {
                func,
                doc: DOC.into(),
                table: table.name.clone(),
                column: Some(c.name.clone()),
            }),
        })
    } else {
        Some(Predicate {
            lhs: Operand::Aggregate(AggregateExpr {
                func: AggFunc::Count,
                doc: DOC.into(),
                table: table.name.clone(),
                column: None,
            }),
            op: CmpOp::Gt,
            rhs: Operand::Literal(Value::Int(0)),
        })
    }
}

/// A standalone aggregate over `forced` or a random table (the BookStats
/// shape).
fn gen_aggregate(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    forced: Option<&GenTable>,
) -> Option<AggregateExpr> {
    let t = match forced {
        Some(t) => t,
        None => &schema.tables[rng.index(schema.tables.len())],
    };
    let numeric = t.numeric_cols();
    if numeric.is_empty() || rng.chance(0.4) {
        return Some(AggregateExpr {
            func: AggFunc::Count,
            doc: DOC.into(),
            table: t.name.clone(),
            column: None,
        });
    }
    let c = numeric[rng.index(numeric.len())];
    let func = *rng.pick(&[AggFunc::Sum, AggFunc::Avg, AggFunc::Max, AggFunc::Min]);
    Some(AggregateExpr {
        func,
        doc: DOC.into(),
        table: t.name.clone(),
        column: Some(c.name.clone()),
    })
}

/// Type-correct fresh value for a column (used by the update generator).
pub fn fresh_value(rng: &mut FuzzRng, ty: ColTy) -> Lit {
    match ty {
        ColTy::Str => {
            Lit::Str(["coral", "ivory", "umber", "sable", "mauve"][rng.index(5)].to_string())
        }
        ColTy::Int => Lit::Int(rng.int(1, 99)),
        ColTy::Double => Lit::Double(rng.int(100, 9900) as f64 / 100.0),
    }
}
