//! # ufilter-fuzz — grammar-based differential fuzzing
//!
//! Seeded generators for schemas+data ([`gen_schema`]), view queries
//! ([`gen_view`]), update statements ([`gen_update`]) and raw wire frames
//! ([`gen_wire`]), a blind execute-recompute differential oracle
//! ([`oracle`]) that cross-checks four check surfaces byte-for-byte and
//! validates accepted updates against the paper's Definition 1 rectangle,
//! a routing-agreement stage ([`route_stage`]) holding the shared path
//! trie to the linear-walk oracle's exact `Route`, greedy counterexample
//! shrinking ([`shrink`]) and a replayable corpus format ([`corpus`]).
//!
//! Everything is a pure function of a `u64` seed; a failure message's seed
//! reproduces the exact plan anywhere. See `docs/FUZZING.md` for the
//! grammars, the oracle's soundness argument, and reproduction recipes.

pub mod corpus;
pub mod gen_schema;
pub mod gen_update;
pub mod gen_view;
pub mod gen_wire;
pub mod oracle;
pub mod rng;
pub mod route_stage;
pub mod shrink;

pub use oracle::{run_raw, run_seed, Divergence, OracleOptions, Plan, RawPlan, RunStats, Surface};
pub use rng::FuzzRng;
pub use route_stage::{run_route_many, RouteStats};

/// A fuzz-run failure: the divergence, plus the minimized plan and the
/// corpus rendering that reproduces it without the generator.
pub struct Failure {
    pub divergence: Divergence,
    pub minimized: RawPlan,
    pub corpus: String,
}

/// Run seeded plans starting at `base_seed` until at least `min_cases`
/// (view, update) pairs have been cross-checked. On the first divergence,
/// shrink it and return the minimized, replayable counterexample.
pub fn run_many(
    base_seed: u64,
    min_cases: usize,
    opts: &OracleOptions,
) -> Result<RunStats, Box<Failure>> {
    let mut stats = RunStats::default();
    let mut seed = base_seed;
    while stats.cases < min_cases {
        let plan = Plan::generate(seed);
        match run_raw(&plan.raw(), opts) {
            Ok(s) => stats.merge(&s),
            Err(div) => {
                let (small, small_div) = shrink::shrink(plan, div, opts, 200);
                let minimized = small.raw();
                let corpus = corpus::render(
                    &minimized,
                    &format!("kind: {}\ndetail: {}", small_div.kind, small_div.detail),
                );
                return Err(Box::new(Failure { divergence: small_div, minimized, corpus }));
            }
        }
        seed += 1;
    }
    Ok(stats)
}

/// The `UFILTER_FUZZ_CASES` knob: minimum number of (view, update) cases a
/// smoke run must cover. Defaults to `default` when unset or unparseable.
pub fn cases_from_env(default: usize) -> usize {
    std::env::var("UFILTER_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}
