//! Seeded randomness for the generators.
//!
//! Everything the fuzzer produces is a pure function of a single `u64`
//! seed: the vendored `rand` stub is splitmix64 under the hood, so a seed
//! printed in a failure message replays the exact same plan on any
//! machine. Sub-generators fork their own streams (`fork`) so that adding
//! draws to one generator does not shift what an unrelated generator sees.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random stream plus convenience pickers.
pub struct FuzzRng {
    inner: StdRng,
}

impl FuzzRng {
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent child stream (stable under later changes to
    /// how many draws the parent makes *after* the fork).
    pub fn fork(&mut self) -> FuzzRng {
        FuzzRng::new(self.u64())
    }

    pub fn u64(&mut self) -> u64 {
        self.inner.gen_range(0..u64::MAX)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform index in `[0, n)`. `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Pick a random subset of `k` distinct indices out of `n`, in order.
    pub fn subset(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates: the first k slots end up uniform.
        for i in 0..k.min(n) {
            let j = self.inner.gen_range(i..n);
            idx.swap(i, j);
        }
        let mut out: Vec<usize> = idx.into_iter().take(k).collect();
        out.sort_unstable();
        out
    }
}
