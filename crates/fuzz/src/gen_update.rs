//! Update-statement generator: region-aware inserts, deletes and replaces
//! aimed at a generated view, plus adversarial variants (unknown targets,
//! predicates outside the view, constraint-violating values) and raw
//! malformed texts.
//!
//! The generator is *blind* to the checker's verdict: it produces a
//! distribution over plausible and implausible updates and lets the
//! differential oracle classify them. Shapes mirror the paper's u1-u13
//! (root inserts of region fragments, keyed deletes, child inserts,
//! attribute replaces).

use ufilter_rdb::{CmpOp, Value};
use ufilter_xml::Document;
use ufilter_xquery::{
    print_update, Operand, PathExpr, Predicate, UpdBinding, UpdateAction, UpdateStmt,
};

use crate::gen_schema::{ColTy, GenSchema, Lit};
use crate::gen_view::{fresh_value, GenView, Region};
use crate::rng::FuzzRng;

const VDOC: &str = "V.xml";

/// One generated update: an AST (printable, parseable) or raw text.
#[derive(Debug, Clone)]
pub enum UpdSpec {
    Ast(UpdateStmt),
    Raw(String),
}

/// A generated update plus bookkeeping for stats and shrinking.
#[derive(Debug, Clone)]
pub struct GenUpdate {
    /// Strategy label (for run statistics and failure messages).
    pub label: &'static str,
    pub spec: UpdSpec,
}

impl GenUpdate {
    /// The update text submitted to every check surface.
    pub fn text(&self) -> String {
        match &self.spec {
            UpdSpec::Ast(u) => print_update(u),
            UpdSpec::Raw(t) => t.clone(),
        }
    }
}

/// Generate one update aimed at `view` (which the oracle will also check
/// against every *other* view in the plan, exercising fan-out routing).
pub fn generate(rng: &mut FuzzRng, schema: &GenSchema, view: &GenView) -> GenUpdate {
    let regions = view.all_regions();
    if regions.is_empty() || rng.chance(0.08) {
        return malformed(rng);
    }
    let region = regions[rng.index(regions.len())];
    let roll = rng.index(100);
    match roll {
        0..=24 => insert_region(rng, schema, region),
        25..=39 => delete_region(rng, schema, region),
        40..=54 => insert_child(rng, schema, region),
        55..=69 => delete_child(rng, region),
        70..=84 => replace_col(rng, schema, region),
        85..=92 => multi_action(rng, schema, region),
        _ => adversarial(rng, schema, region),
    }
}

/// Bias mode for the independence-acceptance stream: aim updates at
/// regions whose table feeds a standalone aggregate, so every generated
/// shape lands in the blunt non-injective gate and exercises the
/// independence analysis. Strategies: value replaces that miss the operand
/// column (should flip to accepted), group-preserving multi-replaces,
/// replaces carrying a predicate provably domain-disjoint from a
/// `distinct()` region's membership predicates, operand-column replaces
/// (must stay rejected), and a residue of ordinary updates for mixture.
pub fn generate_biased(rng: &mut FuzzRng, schema: &GenSchema, view: &GenView) -> GenUpdate {
    let regions = view.all_regions();
    // Hot regions: the region's own table — or a table its deletes cascade
    // into — feeds one of the view's standalone aggregates.
    let hot: Vec<&Region> = regions
        .iter()
        .copied()
        .filter(|r| {
            view.aggregates.iter().any(|a| {
                a.table == r.table || schema.children_of(&r.table).iter().any(|c| c.name == a.table)
            })
        })
        .collect();
    if hot.is_empty() {
        return generate(rng, schema, view);
    }
    // Prefer targets outside every Distinct region: writes landing inside
    // one are correctly Dependent and can never flip.
    let flippable: Vec<&Region> = hot.iter().copied().filter(|r| !subtree_distinct(r)).collect();
    // Best targets are top-level (the addressed element's existence does
    // not hinge on a parent region's membership), have at least one row
    // satisfying their membership predicates, and keep a writable column
    // once the avoid set is carved out.
    let prime: Vec<&Region> = flippable
        .iter()
        .copied()
        .filter(|r| {
            r.steps.len() == 1
                && !live_rows(schema, r, &[]).is_empty()
                && !safe_cols(r, &avoid_for(view, &regions, r)).is_empty()
        })
        .collect();
    let region = if !prime.is_empty() {
        prime[rng.index(prime.len())]
    } else if !flippable.is_empty() {
        flippable[rng.index(flippable.len())]
    } else {
        hot[rng.index(hot.len())]
    };
    let avoid = avoid_for(view, &regions, region);
    let operands: Vec<&str> = view
        .aggregates
        .iter()
        .filter(|a| a.table == region.table)
        .filter_map(|a| a.column.as_deref())
        .collect();
    match rng.index(100) {
        0..=44 => replace_nonoperand(rng, schema, region, &avoid),
        45..=64 => multi_replace_nonoperand(rng, schema, region, &avoid),
        65..=79 => disjoint_pred_replace(rng, schema, &regions, region, &avoid),
        80..=89 => replace_operand(rng, schema, region, &operands),
        _ => generate(rng, schema, view),
    }
}

/// Columns a flip-seeking write against `region` must avoid: aggregate
/// operands, plus everything the unchanged downstream pipeline rejects
/// writes to — membership-predicate and gate columns of any same-table
/// region, and columns the view projects at a second position (sibling
/// regions or parent groups over the same table).
fn avoid_for(view: &GenView, regions: &[&Region], region: &Region) -> Vec<String> {
    let mut avoid: Vec<String> = view
        .aggregates
        .iter()
        .filter(|a| a.table == region.table)
        .filter_map(|a| a.column.clone())
        .collect();
    for r in regions {
        if r.table == region.table {
            avoid.extend(r.preds.iter().map(|p| p.col.clone()));
            avoid.extend(r.gate_col.iter().cloned());
            if r.tag != region.tag {
                avoid.extend(r.cols.iter().map(|c| c.tag.clone()));
            }
        }
        for (_, ptable, gcols) in &r.groups {
            if *ptable == region.table {
                avoid.extend(gcols.iter().map(|c| c.tag.clone()));
            }
        }
    }
    avoid
}

/// Whether `region` or any nested region carries a `distinct()` binding.
fn subtree_distinct(region: &Region) -> bool {
    region.distinct || region.children.iter().any(subtree_distinct)
}

/// Columns of `region` a flip-seeking value write may target.
fn safe_cols<'a>(region: &'a Region, avoid: &[String]) -> Vec<&'a crate::gen_view::RegionCol> {
    region.cols.iter().filter(|c| !avoid.contains(&c.tag)).collect()
}

/// Whether `lit` satisfies `op value` (the update generator's miniature
/// predicate evaluator, for picking keys of rows a region actually shows).
fn pred_holds(lit: &Lit, op: CmpOp, value: &Value) -> bool {
    use std::cmp::Ordering;
    let ord = match (lit, value) {
        (Lit::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
        (Lit::Int(a), Value::Int(b)) => a.cmp(b),
        (Lit::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
        (Lit::Double(a), Value::Double(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
        (Lit::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
        _ => return false,
    };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// The region table's rows that satisfy the region's recorded membership
/// predicates plus `extra` — rows whose view element provably exists (up
/// to aggregate gates and parent membership, which are not modelled).
fn live_rows<'a>(
    schema: &'a GenSchema,
    region: &Region,
    extra: &[(String, CmpOp, Value)],
) -> Vec<&'a Vec<Lit>> {
    let table = schema.table(&region.table).expect("region table exists");
    let names = table.column_names();
    let holds = |row: &[Lit], col: &str, op: CmpOp, v: &Value| {
        names.iter().position(|n| n == col).map(|i| pred_holds(&row[i], op, v)).unwrap_or(true)
    };
    table
        .rows
        .iter()
        .filter(|row| {
            region.preds.iter().all(|p| holds(row, &p.col, p.op, &p.value))
                && extra.iter().all(|(c, op, v)| holds(row, c, *op, v))
        })
        .collect()
}

/// A key predicate whose value comes from a row that satisfies both the
/// region's recorded membership predicates and `extra` — so the addressed
/// view element actually exists and the data-context checks pass.
fn satisfying_key_pred(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    var: &str,
    extra: &[(String, CmpOp, Value)],
) -> Option<Vec<Predicate>> {
    let key_tag = region.key_tag.as_ref()?;
    let rows = live_rows(schema, region, extra);
    if rows.is_empty() {
        return None;
    }
    let row = rows[rng.index(rows.len())];
    Some(vec![Predicate {
        lhs: Operand::Path(PathExpr {
            var: var.to_string(),
            steps: vec![key_tag.clone(), "text()".into()],
        }),
        op: CmpOp::Eq,
        rhs: Operand::Literal(Value::Str(row[0].text())),
    }])
}

/// One keyed single-column replace of `tag` with a fresh value.
fn keyed_replace(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    tag: &str,
    ty: ColTy,
    label: &'static str,
) -> GenUpdate {
    let (bindings, var) = bind_region(region);
    let predicates = satisfying_key_pred(rng, schema, region, &var, &[])
        .unwrap_or_else(|| region_pred(rng, schema, region, &var));
    let mut with = Document::new(tag.to_string());
    let root = with.root();
    let text = with.new_text(fresh_value(rng, ty).text());
    with.append_child(root, text);
    GenUpdate {
        label,
        spec: UpdSpec::Ast(UpdateStmt {
            bindings,
            predicates,
            target: var.clone(),
            actions: vec![UpdateAction::Replace {
                target: PathExpr { var, steps: vec![tag.to_string()] },
                with,
            }],
        }),
    }
}

/// A value write that provably misses every aggregate operand.
fn replace_nonoperand(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    avoid: &[String],
) -> GenUpdate {
    let safe = safe_cols(region, avoid);
    if safe.is_empty() {
        return replace_col(rng, schema, region);
    }
    let c = safe[rng.index(safe.len())];
    keyed_replace(rng, schema, region, &c.tag.clone(), c.ty, "biased-replace")
}

/// Two value writes against the same rows in one statement — still group
/// cardinality preserving, so both must pass the analysis together.
fn multi_replace_nonoperand(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    avoid: &[String],
) -> GenUpdate {
    let safe = safe_cols(region, avoid);
    if safe.len() < 2 {
        return replace_nonoperand(rng, schema, region, avoid);
    }
    let i = rng.index(safe.len());
    let mut j = rng.index(safe.len());
    if j == i {
        j = (j + 1) % safe.len();
    }
    let (a, b) = (safe[i], safe[j]);
    let first = keyed_replace(rng, schema, region, &a.tag.clone(), a.ty, "biased-multi-replace");
    let UpdSpec::Ast(mut ua) = first.spec else { unreachable!() };
    let mut with = Document::new(b.tag.clone());
    let root = with.root();
    let text = with.new_text(fresh_value(rng, b.ty).text());
    with.append_child(root, text);
    ua.actions.push(UpdateAction::Replace {
        target: PathExpr { var: ua.target.clone(), steps: vec![b.tag.clone()] },
        with,
    });
    GenUpdate { label: "biased-multi-replace", spec: UpdSpec::Ast(ua) }
}

/// A non-operand value write whose predicate is the *complement* of a
/// `distinct()` region's membership predicate over the same table — the
/// touched rows are provably invisible to the region, so the analysis's
/// domain-disjointness rescue should admit the update even though the
/// table is Distinct-scanned.
fn disjoint_pred_replace(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    regions: &[&Region],
    region: &Region,
    avoid: &[String],
) -> GenUpdate {
    // Donor: a *different*, distinct() region over the same table whose
    // membership predicate column the target region projects (the update
    // predicate must reference a projected path to validate).
    let donors: Vec<(&Region, &crate::gen_view::GenPred)> = regions
        .iter()
        .copied()
        .filter(|r| r.distinct && r.table == region.table && r.tag != region.tag)
        .flat_map(|r| r.preds.iter().map(move |p| (r, p)))
        .filter(|(_, p)| region.cols.iter().any(|c| c.tag == p.col))
        .collect();
    let Some((_, pred)) = donors.first() else {
        return replace_nonoperand(rng, schema, region, avoid);
    };
    let comp = complement(pred.op);
    // Write a column that is neither an operand nor the proving column (a
    // write to the proving column would void the rescue). `avoid` already
    // excludes every membership-predicate column over this table.
    let safe = safe_cols(region, avoid);
    if safe.is_empty() {
        return replace_nonoperand(rng, schema, region, avoid);
    }
    let c = safe[rng.index(safe.len())];
    let (bindings, var) = bind_region(region);
    // The addressed element must exist: pick a key among rows satisfying
    // the target region's membership predicates AND the complement.
    let extra = [(pred.col.clone(), comp, pred.value.clone())];
    let Some(mut predicates) = satisfying_key_pred(rng, schema, region, &var, &extra) else {
        return replace_nonoperand(rng, schema, region, avoid);
    };
    predicates.push(Predicate {
        lhs: Operand::Path(PathExpr {
            var: var.clone(),
            steps: vec![pred.col.clone(), "text()".into()],
        }),
        op: comp,
        rhs: Operand::Literal(pred.value.clone()),
    });
    let mut with = Document::new(c.tag.clone());
    let root = with.root();
    let text = with.new_text(fresh_value(rng, c.ty).text());
    with.append_child(root, text);
    GenUpdate {
        label: "biased-disjoint",
        spec: UpdSpec::Ast(UpdateStmt {
            bindings,
            predicates,
            target: var.clone(),
            actions: vec![UpdateAction::Replace {
                target: PathExpr { var, steps: vec![c.tag.clone()] },
                with,
            }],
        }),
    }
}

/// The complementary comparison: `complement(op) v` selects exactly the
/// rows `op v` does not, so the two predicate sets are domain-disjoint.
fn complement(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// A value write straight into an aggregate operand column: the analysis
/// must keep rejecting it, with the aggregate named on the wire.
fn replace_operand(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    operands: &[&str],
) -> GenUpdate {
    let hit: Vec<_> = region.cols.iter().filter(|c| operands.contains(&c.tag.as_str())).collect();
    if hit.is_empty() {
        return replace_col(rng, schema, region);
    }
    let c = hit[rng.index(hit.len())];
    keyed_replace(rng, schema, region, &c.tag.clone(), c.ty, "biased-operand")
}

/// `FOR $r IN document(V) UPDATE $r { INSERT <region instance> }` — the u1
/// shape. Only top-level regions can be inserted at the root; nested ones
/// fall through to a child insert.
fn insert_region(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> GenUpdate {
    if region.steps.len() > 1 {
        return insert_child(rng, schema, region);
    }
    let frag = region_fragment(rng, schema, region, 0);
    GenUpdate {
        label: "insert-region",
        spec: UpdSpec::Ast(UpdateStmt {
            bindings: vec![UpdBinding::Document {
                var: "r".into(),
                doc: VDOC.into(),
                steps: vec![],
            }],
            predicates: vec![],
            target: "r".into(),
            actions: vec![UpdateAction::Insert(frag)],
        }),
    }
}

/// `FOR $r …, $x IN $r/…/tag WHERE key UPDATE $r { DELETE $x }` — the
/// u8/u10 shape.
fn delete_region(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> GenUpdate {
    let (bindings, var) = bind_region(region);
    let predicates = region_pred(rng, schema, region, &var);
    GenUpdate {
        label: "delete-region",
        spec: UpdSpec::Ast(UpdateStmt {
            bindings,
            predicates,
            target: "r".into(),
            actions: vec![UpdateAction::Delete(PathExpr { var, steps: vec![] })],
        }),
    }
}

/// `UPDATE $x { INSERT <child> }` — the u3 shape: add a nested-region
/// instance, a group instance, or (adversarially) a bare column element.
fn insert_child(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> GenUpdate {
    let (bindings, var) = bind_region(region);
    let predicates = region_pred(rng, schema, region, &var);
    let frag = child_fragment(rng, schema, region);
    GenUpdate {
        label: "insert-child",
        spec: UpdSpec::Ast(UpdateStmt {
            bindings,
            predicates,
            target: var,
            actions: vec![UpdateAction::Insert(frag)],
        }),
    }
}

/// `UPDATE $x { DELETE $x/tag }` — the u2 shape (delete a nested group,
/// child region, or a non-deletable column element).
fn delete_child(rng: &mut FuzzRng, region: &Region) -> GenUpdate {
    let (bindings, var) = bind_region(region);
    let mut tags: Vec<String> = Vec::new();
    tags.extend(region.groups.iter().map(|(t, _, _)| t.clone()));
    tags.extend(region.children.iter().map(|c| c.tag.clone()));
    tags.extend(region.cols.iter().map(|c| c.tag.clone()));
    if let Some(k) = &region.key_tag {
        tags.push(k.clone());
    }
    let tag = if tags.is_empty() || rng.chance(0.1) {
        "nosuchtag".to_string()
    } else {
        tags[rng.index(tags.len())].clone()
    };
    GenUpdate {
        label: "delete-child",
        spec: UpdSpec::Ast(UpdateStmt {
            bindings,
            predicates: vec![],
            target: var.clone(),
            actions: vec![UpdateAction::Delete(PathExpr { var, steps: vec![tag] })],
        }),
    }
}

/// `UPDATE $x { REPLACE $x/col WITH <col>v</col> }` — the u13 shape.
fn replace_col(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> GenUpdate {
    let (bindings, var) = bind_region(region);
    let predicates = region_pred(rng, schema, region, &var);
    let (tag, val) = match (region.cols.is_empty(), &region.key_tag) {
        (false, _) => {
            let c = &region.cols[rng.index(region.cols.len())];
            (c.tag.clone(), fresh_value(rng, c.ty))
        }
        (true, Some(k)) => (k.clone(), Lit::Str(format!("n{:03}", rng.int(0, 999)))),
        (true, None) => ("nosuchcol".to_string(), Lit::Int(1)),
    };
    let mut with = Document::new(tag.clone());
    let root = with.root();
    let text = with.new_text(val.text());
    with.append_child(root, text);
    GenUpdate {
        label: "replace-col",
        spec: UpdSpec::Ast(UpdateStmt {
            bindings,
            predicates,
            target: var.clone(),
            actions: vec![UpdateAction::Replace {
                target: PathExpr { var, steps: vec![tag] },
                with,
            }],
        }),
    }
}

/// Two actions against the same target in one statement.
fn multi_action(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> GenUpdate {
    let a = insert_child(rng, schema, region);
    let b =
        if rng.chance(0.5) { delete_child(rng, region) } else { replace_col(rng, schema, region) };
    let (UpdSpec::Ast(mut ua), UpdSpec::Ast(ub)) = (a.spec, b.spec) else { unreachable!() };
    ua.actions.extend(ub.actions);
    GenUpdate { label: "multi-action", spec: UpdSpec::Ast(ua) }
}

/// Off-grammar-but-parseable adversaries: unknown region tags, predicates
/// over paths the view does not project, wrong fragment roots.
fn adversarial(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> GenUpdate {
    match rng.index(3) {
        0 => {
            // Target a tag no view constructs.
            GenUpdate {
                label: "unknown-target",
                spec: UpdSpec::Ast(UpdateStmt {
                    bindings: vec![
                        UpdBinding::Document { var: "r".into(), doc: VDOC.into(), steps: vec![] },
                        UpdBinding::Path {
                            var: "x".into(),
                            path: PathExpr { var: "r".into(), steps: vec!["phantom".into()] },
                        },
                    ],
                    predicates: vec![],
                    target: "r".into(),
                    actions: vec![UpdateAction::Delete(PathExpr {
                        var: "x".into(),
                        steps: vec![],
                    })],
                }),
            }
        }
        1 => {
            // Predicate over a path outside the view's projections.
            let (bindings, var) = bind_region(region);
            GenUpdate {
                label: "outside-predicate",
                spec: UpdSpec::Ast(UpdateStmt {
                    bindings,
                    predicates: vec![Predicate {
                        lhs: Operand::Path(PathExpr {
                            var: var.clone(),
                            steps: vec!["unprojected".into(), "text()".into()],
                        }),
                        op: CmpOp::Eq,
                        rhs: Operand::Literal(Value::Str("x".into())),
                    }],
                    target: var.clone(),
                    actions: vec![UpdateAction::Delete(PathExpr { var, steps: vec![] })],
                }),
            }
        }
        _ => {
            // Fragment whose root tag is not the region tag.
            let mut frag = region_fragment(rng, schema, region, 0);
            // Rename by rebuilding under a bogus root.
            let mut bogus = Document::new("imposter");
            let broot = bogus.root();
            for c in frag.children(frag.root()).to_vec() {
                let imported = bogus.import_subtree(&frag, c);
                bogus.append_child(broot, imported);
            }
            frag = bogus;
            GenUpdate {
                label: "wrong-root",
                spec: UpdSpec::Ast(UpdateStmt {
                    bindings: vec![UpdBinding::Document {
                        var: "r".into(),
                        doc: VDOC.into(),
                        steps: vec![],
                    }],
                    predicates: vec![],
                    target: "r".into(),
                    actions: vec![UpdateAction::Insert(frag)],
                }),
            }
        }
    }
}

/// Raw texts that must be rejected as malformed — identically on every
/// surface, without crashing any of them.
fn malformed(rng: &mut FuzzRng) -> GenUpdate {
    let texts = [
        "FOR $r IN document(\"V.xml\") UPDATE $r { }",
        "UPDATE $r { DELETE $x }",
        "FOR $r IN document(\"V.xml\") UPDATE $r { INSERT <a><b></a> }",
        "FOR $r IN document(\"V.xml\") UPDATE $r { DELETE }",
        "FOR $r IN document(\"V.xml\") WHERE UPDATE $r { DELETE $r/x }",
        "not an update at all !!",
        "FOR $r IN document(\"V.xml\")",
    ];
    GenUpdate { label: "malformed", spec: UpdSpec::Raw(texts[rng.index(texts.len())].to_string()) }
}

/// Root binding plus a path binding down to the region's elements.
fn bind_region(region: &Region) -> (Vec<UpdBinding>, String) {
    let bindings = vec![
        UpdBinding::Document { var: "r".into(), doc: VDOC.into(), steps: vec![] },
        UpdBinding::Path {
            var: "x".into(),
            path: PathExpr { var: "r".into(), steps: region.steps.clone() },
        },
    ];
    (bindings, "x".into())
}

/// A key (or column) predicate selecting region instances, with the value
/// drawn from the table's real rows most of the time.
fn region_pred(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    var: &str,
) -> Vec<Predicate> {
    if rng.chance(0.25) {
        return vec![]; // unkeyed: select every instance
    }
    let Some(key_tag) = &region.key_tag else { return vec![] };
    let table = schema.table(&region.table).expect("region table exists");
    let value = if rng.chance(0.8) && !table.rows.is_empty() {
        table.rows[rng.index(table.rows.len())][0].text()
    } else {
        "zzz".to_string()
    };
    vec![Predicate {
        lhs: Operand::Path(PathExpr {
            var: var.to_string(),
            steps: vec![key_tag.clone(), "text()".into()],
        }),
        op: CmpOp::Eq,
        rhs: Operand::Literal(Value::Str(value)),
    }]
}

/// Build a region-instance fragment: `<tag><key>..</key><col>..</col>…`
/// with optional group and child-region instances. `depth` caps recursion.
fn region_fragment(
    rng: &mut FuzzRng,
    schema: &GenSchema,
    region: &Region,
    depth: usize,
) -> Document {
    let mut doc = Document::new(region.tag.clone());
    let root = doc.root();
    let table = schema.table(&region.table).expect("region table exists");

    if let Some(key_tag) = &region.key_tag {
        // Fresh key most of the time; sometimes a duplicate of an existing
        // row (the u4 point-check shape).
        let v = if rng.chance(0.3) && !table.rows.is_empty() {
            table.rows[rng.index(table.rows.len())][0].text()
        } else {
            format!("n{:03}", rng.int(0, 999))
        };
        doc.append_text_element(root, key_tag.clone(), v);
    }
    for c in &region.cols {
        if rng.chance(0.1) {
            continue; // omitted attribute: NOT NULL / completeness paths
        }
        let v = if rng.chance(0.1) {
            // Deliberately ill-typed or constraint-violating value.
            Lit::Str("oops".into())
        } else {
            fresh_value(rng, c.ty)
        };
        doc.append_text_element(root, c.tag.clone(), v.text());
    }
    for (gtag, ptable, gcols) in &region.groups {
        if rng.chance(0.2) {
            continue;
        }
        let parent = schema.table(ptable).expect("group table exists");
        let gel = doc.new_element(gtag.clone());
        doc.append_child(root, gel);
        if rng.chance(0.6) && !parent.rows.is_empty() {
            // Values copied from an existing parent row (context-consistent).
            let prow = &parent.rows[rng.index(parent.rows.len())];
            let names = parent.column_names();
            for gc in gcols {
                if let Some(pos) = names.iter().position(|n| n == &gc.tag) {
                    doc.append_text_element(gel, gc.tag.clone(), prow[pos].text());
                }
            }
        } else {
            for gc in gcols {
                doc.append_text_element(gel, gc.tag.clone(), fresh_value(rng, gc.ty).text());
            }
        }
    }
    if depth < 1 {
        for child in &region.children {
            if rng.chance(0.4) {
                let cfrag = region_fragment(rng, schema, child, depth + 1);
                let imported = doc.import_subtree(&cfrag, cfrag.root());
                doc.append_child(root, imported);
            }
        }
    }
    doc
}

/// A fragment to insert *under* an existing region instance: a child
/// region, a group instance, or a lone column element.
fn child_fragment(rng: &mut FuzzRng, schema: &GenSchema, region: &Region) -> Document {
    if !region.children.is_empty() && rng.chance(0.6) {
        let child = &region.children[rng.index(region.children.len())];
        return region_fragment(rng, schema, child, 1);
    }
    if !region.groups.is_empty() && rng.chance(0.5) {
        let (gtag, ptable, gcols) = &region.groups[rng.index(region.groups.len())];
        let parent = schema.table(ptable).expect("group table exists");
        let mut doc = Document::new(gtag.clone());
        let root = doc.root();
        if !parent.rows.is_empty() && rng.chance(0.7) {
            let prow = &parent.rows[rng.index(parent.rows.len())];
            let names = parent.column_names();
            for gc in gcols {
                if let Some(pos) = names.iter().position(|n| n == &gc.tag) {
                    doc.append_text_element(root, gc.tag.clone(), prow[pos].text());
                }
            }
        } else {
            for gc in gcols {
                doc.append_text_element(root, gc.tag.clone(), fresh_value(rng, gc.ty).text());
            }
        }
        return doc;
    }
    // A bare column element (duplicate attribute / unknown child paths).
    let (tag, ty) = match region.cols.first() {
        Some(c) => (c.tag.clone(), c.ty),
        None => ("stray".to_string(), crate::gen_schema::ColTy::Int),
    };
    let mut doc = Document::new(tag);
    let root = doc.root();
    let text = doc.new_text(fresh_value(rng, ty).text());
    doc.append_child(root, text);
    doc
}
