//! # ufilter-service — the concurrent check server
//!
//! U-Filter's value is *compile once, check many* (paper Fig. 5): a view's
//! ASG and STAR marks are computed once and amortized over a stream of
//! updates. This crate scales that amortization from a single-threaded
//! library call to a long-running, concurrent **service**:
//!
//! * [`catalog::ShardedCatalog`] — an `Arc`-shared, `Sync` view catalog.
//!   Views hash to shards by name; the read-mostly check path takes one
//!   shard read lock, catalog mutations take one targeted write lock, and
//!   only schema-affecting DDL sweeps every shard (under a single
//!   lock-ordering rule that makes deadlock impossible).
//! * [`pool::CheckPool`] — a worker-pool executor (std threads + channels,
//!   no external dependencies). Requests are routed by a deterministic
//!   affinity hash of `(view, update text)`, so repeat-heavy traffic keeps
//!   landing on the worker whose [`ufilter_core::ProbeCache`] is already
//!   warm for it — cache reuse survives concurrency.
//! * [`proto`] + [`server::CheckServer`] — a line-oriented wire protocol
//!   over `std::net` TCP (`CHECK`, `BATCH`, `CHECKALL`, `BATCHALL`,
//!   `CATALOG ADD/DROP/LIST`, `STATS`, `SHUTDOWN`) whose `OK`/`ERR`
//!   replies carry [`ufilter_core::wire`]-encoded outcomes —
//!   byte-identical to what the single-threaded `check-batch` /
//!   `check-all` CLI prints for the same stream. The `CHECKALL` and
//!   `BATCHALL` verbs take *no view name*: the shards' relevance indexes
//!   (`ufilter_route`, via [`ShardedCatalog::route_update`]) pick the
//!   candidate views, and only those run the pipeline.
//!
//! The service is **check-only**: no wire request ever executes a
//! translated update, so worker-private database clones and probe caches
//! stay valid for the server's lifetime, and every reply is a pure
//! function of (catalog, database snapshot, update).
//!
//! ```
//! use std::sync::Arc;
//! use ufilter_core::bookdemo;
//! use ufilter_service::{CheckPool, ShardedCatalog};
//!
//! let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 4));
//! catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
//! let pool = CheckPool::new(Arc::clone(&catalog), &bookdemo::book_db(), 2);
//! let reports = pool.check_one("books", bookdemo::U8);
//! assert!(reports[0].outcome.is_translatable());
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod server;

pub use catalog::{affinity_hash, ShardedCatalog};
pub use metrics::{StatsFamily, STATS_FAMILIES};
pub use pool::{CheckPool, PoolStatsSnapshot};
pub use proto::Request;
pub use server::{CheckServer, ShutdownHandle};
