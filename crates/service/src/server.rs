//! The long-running TCP check server: `std::net` listener, one thread per
//! connection, all connections sharing the [`ShardedCatalog`] and the
//! [`CheckPool`].
//!
//! A connection reads request lines ([`crate::proto`]), dispatches check
//! work to the pool (so affinity routing — not connection identity —
//! decides which worker and which warm cache serves an update), and writes
//! the structured `OK`/`ERR` replies. `SHUTDOWN` flips a shared flag and
//! wakes the accept loop with a loopback connection; the server then stops
//! accepting, joins every connection thread, and drops the pool (joining
//! the workers).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ufilter_core::obs::{self, Verb};
use ufilter_core::wire::{encode_outcome, escape};
use ufilter_core::CheckReport;
use ufilter_rdb::Db;

use crate::catalog::ShardedCatalog;
use crate::metrics::{self, STATS_FAMILIES};
use crate::pool::CheckPool;
use crate::proto::{err_reply, parse_batch_item, parse_batchall_item, parse_request, Request};

/// Longest request line the server will buffer before giving up on the
/// connection. Escaped view/update texts are a few KB; this leaves three
/// orders of magnitude of headroom while bounding what one client can make
/// the server allocate.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Counters the `STATS` command reports (monotonic, server lifetime).
#[derive(Debug, Default)]
struct ServerStats {
    connections: AtomicUsize,
    requests: AtomicUsize,
    errors: AtomicUsize,
}

/// A bound, not-yet-running check server.
pub struct CheckServer {
    listener: TcpListener,
    addr: SocketAddr,
    catalog: Arc<ShardedCatalog>,
    pool: Arc<CheckPool>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    slow_ms: Option<u64>,
}

impl CheckServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawn a
    /// pool of `workers` check workers, each owning a clone of `db`.
    pub fn bind(
        addr: &str,
        catalog: Arc<ShardedCatalog>,
        db: &Db,
        workers: usize,
    ) -> std::io::Result<CheckServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(CheckPool::new(Arc::clone(&catalog), db, workers));
        Ok(CheckServer {
            listener,
            addr,
            catalog,
            pool,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(ServerStats::default()),
            slow_ms: None,
        })
    }

    /// Log any request slower than `ms` milliseconds to stderr as a
    /// single-line structured record with a per-request trace id
    /// (`SLOW trace=<16hex> verb=<verb> dur_us=<n> request=<escaped>`).
    /// `None` (the default) disables slow logging.
    pub fn set_slow_ms(&mut self, ms: Option<u64>) {
        self.slow_ms = ms;
    }

    /// The address the server actually bound (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop the server from another thread (same effect
    /// as a client sending `SHUTDOWN`).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle { flag: Arc::clone(&self.shutdown), addr: self.addr }
    }

    /// Accept connections until `SHUTDOWN`, then drain: joins every
    /// connection thread and the worker pool before returning.
    pub fn run(self) -> std::io::Result<()> {
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            self.stats.connections.fetch_add(1, Ordering::Relaxed);
            let conn = Connection {
                catalog: Arc::clone(&self.catalog),
                pool: Arc::clone(&self.pool),
                shutdown: Arc::clone(&self.shutdown),
                stats: Arc::clone(&self.stats),
                addr: self.addr,
                slow_ms: self.slow_ms,
            };
            conns.push(std::thread::spawn(move || conn.serve(stream)));
        }
        for handle in conns {
            let _ = handle.join();
        }
        // Clean shutdown: fold the log into a fresh snapshot so the next
        // start replays one compact file instead of the whole append
        // history. Best-effort — a failed compaction leaves the (already
        // fsynced) log authoritative.
        if let Some(store) = self.catalog.store() {
            let _ = store.lock().expect("catalog store lock").compact();
        }
        Ok(())
    }
}

/// Stops a running [`CheckServer`] from outside a connection.
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flip the shutdown flag and wake the accept loop.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake.
        let _ = TcpStream::connect(self.addr);
    }
}

struct Connection {
    catalog: Arc<ShardedCatalog>,
    pool: Arc<CheckPool>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    addr: SocketAddr,
    slow_ms: Option<u64>,
}

impl Connection {
    fn serve(self, stream: TcpStream) {
        // Short read timeouts keep idle connections responsive to shutdown
        // without a dedicated poll thread.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let Ok(reader_stream) = stream.try_clone() else { return };
        let mut reader = BufReader::new(reader_stream);
        let mut writer = BufWriter::new(stream);
        let mut line = String::new();
        loop {
            line.clear();
            let Some(n) = self.read_line(&mut reader, &mut line) else { return };
            if n == 0 {
                return; // client closed the connection
            }
            if line.trim().is_empty() {
                continue;
            }
            self.stats.requests.fetch_add(1, Ordering::Relaxed);
            let stop = match parse_request(&line) {
                Ok(req) => self.handle(req, &mut reader, &mut writer, &line),
                Err(detail) => {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    self.reply(&mut writer, &err_reply(&detail))
                }
            };
            if stop.is_none() {
                return;
            }
            if stop == Some(true) {
                self.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(self.addr); // wake the accept loop
                return;
            }
        }
    }

    /// Read one line, retrying through read timeouts (checking the shutdown
    /// flag between attempts). `None` means the connection should close.
    ///
    /// Accumulates raw bytes and converts to UTF-8 only at a complete line
    /// boundary — `BufRead::read_line` would fail if a read timeout split a
    /// multi-byte character mid-sequence (escaped payloads pass non-ASCII
    /// through raw).
    fn read_line(&self, reader: &mut BufReader<TcpStream>, line: &mut String) -> Option<usize> {
        let mut bytes: Vec<u8> = Vec::new();
        loop {
            // A line that never ends is not this protocol: close rather than
            // buffer without bound (a client streaming newline-free data
            // would otherwise grow this allocation until OOM).
            if bytes.len() > MAX_LINE_BYTES {
                return None;
            }
            let (used, done) = match reader.fill_buf() {
                Ok([]) => (0, true), // EOF; deliver what we have (may be 0)
                Ok(buf) => match buf.iter().position(|b| *b == b'\n') {
                    Some(pos) => {
                        bytes.extend_from_slice(&buf[..=pos]);
                        (pos + 1, true)
                    }
                    None => {
                        bytes.extend_from_slice(buf);
                        (buf.len(), false)
                    }
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return None;
                    }
                    continue;
                }
                Err(_) => return None,
            };
            reader.consume(used);
            if done {
                break;
            }
        }
        // A non-UTF-8 request is not speaking this protocol: close.
        let text = String::from_utf8(bytes).ok()?;
        line.push_str(&text);
        Some(text.len())
    }

    /// Write one reply line. `Some(false)` keeps the connection open.
    fn reply(&self, writer: &mut BufWriter<TcpStream>, text: &str) -> Option<bool> {
        writeln!(writer, "{text}").ok()?;
        writer.flush().ok()?;
        Some(false)
    }

    /// Handle one parsed request, wrapped with observability: per-verb
    /// latency recording (pool-backed verbs record themselves inside the
    /// pool, so both TCP and in-process callers hit the same histograms)
    /// and the `--slow-ms` structured slow-request log.
    fn handle(
        &self,
        req: Request,
        reader: &mut BufReader<TcpStream>,
        writer: &mut BufWriter<TcpStream>,
        line: &str,
    ) -> Option<bool> {
        let recorded = match &req {
            Request::CatalogAdd { .. } => Some(Verb::CatalogAdd),
            Request::CatalogDrop { .. } => Some(Verb::CatalogDrop),
            Request::CatalogList => Some(Verb::CatalogList),
            Request::CatalogVerify => Some(Verb::CatalogVerify),
            Request::Stats => Some(Verb::Stats),
            Request::Metrics => Some(Verb::Metrics),
            Request::Ping => Some(Verb::Ping),
            // CHECK/BATCH/CHECKALL/BATCHALL latency is recorded by the pool
            // entry points; SHUTDOWN is terminal and fires once.
            _ => None,
        };
        let wire_verb = req.wire_verb();
        // The slow log works even with metrics disabled, so it times with
        // its own clock rather than obs::clock().
        let slow_from = self.slow_ms.map(|_| Instant::now());
        let span = if recorded.is_some() { obs::clock() } else { None };
        let out = self.handle_inner(req, reader, writer);
        if let Some(verb) = recorded {
            obs::verb_elapsed(verb, span);
        }
        if let (Some(started), Some(threshold)) = (slow_from, self.slow_ms) {
            let dur = started.elapsed();
            if dur >= Duration::from_millis(threshold) {
                let shown: String = line.trim_end().chars().take(200).collect();
                eprintln!(
                    "SLOW trace={:016x} verb={wire_verb} dur_us={} request={}",
                    obs::next_trace_id(),
                    dur.as_micros(),
                    escape(&shown),
                );
            }
        }
        out
    }

    /// Handle one parsed request. `None` = close connection, `Some(true)` =
    /// server shutdown requested, `Some(false)` = keep serving.
    fn handle_inner(
        &self,
        req: Request,
        reader: &mut BufReader<TcpStream>,
        writer: &mut BufWriter<TcpStream>,
    ) -> Option<bool> {
        match req {
            Request::Ping => self.reply(writer, "OK pong"),
            Request::Shutdown => {
                // Flush the log before acknowledging: once the client has
                // read "OK bye", every mutation it was acknowledged for is
                // on disk even if the process dies before the clean
                // compaction. (Appends already fsync individually; this is
                // a defensive barrier, and it must precede the reply.)
                if let Some(store) = self.catalog.store() {
                    let _ = store.lock().expect("catalog store lock").sync();
                }
                self.reply(writer, "OK bye")?;
                Some(true)
            }
            Request::Check { view, update } => {
                let reports = self.pool.check_one(&view, &update);
                self.reply(writer, &format!("OK {}", report_line(&reports)))
            }
            Request::Batch { count } => {
                let mut items: Vec<(String, String)> = Vec::with_capacity(count);
                let mut bad: Option<String> = None;
                // Always consume exactly `count` item lines, even after a
                // malformed one — replying ERR early would leave the rest of
                // the batch in the stream to be misread as top-level
                // requests, desyncing every later request/reply pair.
                for _ in 0..count {
                    let mut line = String::new();
                    let n = self.read_line(reader, &mut line)?;
                    if n == 0 {
                        return None; // client hung up mid-batch
                    }
                    if bad.is_some() {
                        continue; // draining
                    }
                    match parse_batch_item(&line) {
                        Ok(item) => items.push(item),
                        Err(detail) => bad = Some(detail),
                    }
                }
                if let Some(detail) = bad {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    return self.reply(writer, &err_reply(&detail));
                }
                let report = self.pool.check_stream(&items);
                writeln!(writer, "OK {}", items.len()).ok()?;
                for item in &report.items {
                    for r in &item.reports {
                        writeln!(
                            writer,
                            "ITEM {} {} {}",
                            item.index,
                            item.view,
                            encode_outcome(&r.outcome)
                        )
                        .ok()?;
                    }
                }
                let s = report.stats;
                writeln!(
                    writer,
                    "END items={} parse_hits={} probe_hits={} probe_misses={} groups={}",
                    s.items, s.parse_hits, s.probe_hits, s.probe_misses, s.target_groups
                )
                .ok()?;
                writer.flush().ok()?;
                Some(false)
            }
            Request::CheckAll { update } => {
                let report = self.pool.check_all(&update);
                writeln!(writer, "OK {}", report.items.len()).ok()?;
                for item in &report.items {
                    for r in &item.reports {
                        writeln!(writer, "ITEM {} {}", item.view, encode_outcome(&r.outcome))
                            .ok()?;
                    }
                }
                let f = report.fanout;
                writeln!(
                    writer,
                    "END views={} candidates={} pruned={} fallbacks={}",
                    f.views, f.candidates, f.pruned, f.fallbacks
                )
                .ok()?;
                writer.flush().ok()?;
                Some(false)
            }
            Request::BatchAll { count } => {
                let mut updates: Vec<String> = Vec::with_capacity(count);
                let mut bad: Option<String> = None;
                // Same drain discipline as BATCH: consume exactly `count`
                // item lines even after a malformed one, so the connection
                // never desyncs.
                for _ in 0..count {
                    let mut line = String::new();
                    let n = self.read_line(reader, &mut line)?;
                    if n == 0 {
                        return None; // client hung up mid-batch
                    }
                    if bad.is_some() {
                        continue; // draining
                    }
                    match parse_batchall_item(&line) {
                        Ok(update) => updates.push(update),
                        Err(detail) => bad = Some(detail),
                    }
                }
                if let Some(detail) = bad {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    return self.reply(writer, &err_reply(&detail));
                }
                let report = self.pool.check_all_batch(&updates);
                writeln!(writer, "OK {}", updates.len()).ok()?;
                for item in &report.items {
                    for r in &item.reports {
                        writeln!(
                            writer,
                            "ITEM {} {} {}",
                            item.update,
                            item.view,
                            encode_outcome(&r.outcome)
                        )
                        .ok()?;
                    }
                }
                let f = report.fanout;
                writeln!(
                    writer,
                    "END items={} fanout_requests={} candidates={} pruned={} fallbacks={}",
                    updates.len(),
                    f.fanout_requests,
                    f.candidates,
                    f.pruned,
                    f.fallbacks
                )
                .ok()?;
                writer.flush().ok()?;
                Some(false)
            }
            Request::CatalogAdd { name, view_text } => match self.catalog.add(&name, &view_text) {
                Ok(info) => self.reply(
                    writer,
                    &format!("OK added {} reads={}", info.name, info.relations.join(",")),
                ),
                Err(e) => {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    self.reply(writer, &err_reply(&e.to_string()))
                }
            },
            Request::CatalogDrop { name } => match self.catalog.drop_view(&name) {
                Ok(()) => self.reply(writer, &format!("OK dropped {name}")),
                Err(e) => {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    self.reply(writer, &err_reply(&e.to_string()))
                }
            },
            Request::CatalogList => {
                let views = self.catalog.list();
                writeln!(writer, "OK {}", views.len()).ok()?;
                for v in views {
                    writeln!(
                        writer,
                        "VIEW {} reads={} cached={}",
                        v.name,
                        v.relations.join(","),
                        v.cached
                    )
                    .ok()?;
                }
                writer.flush().ok()?;
                Some(false)
            }
            Request::CatalogVerify => {
                let Some(store) = self.catalog.store() else {
                    self.stats.errors.fetch_add(1, Ordering::Relaxed);
                    return self.reply(
                        writer,
                        &err_reply("no durable store attached (start the server with --data-dir)"),
                    );
                };
                let dir = store.lock().expect("catalog store lock").dir().to_path_buf();
                match ufilter_core::CatalogStore::verify(&dir) {
                    Ok(report) => {
                        // Does folding the on-disk records reproduce the
                        // live view set?
                        let live: Vec<String> =
                            self.catalog.list().into_iter().map(|v| v.name).collect();
                        let matches = if live == report.views { "yes" } else { "no" };
                        self.reply(
                            writer,
                            &format!(
                                "OK generation={} snapshot_records={} log_records={} \
                                 torn_bytes={} stale_log={} views={} ddl={} match={matches}",
                                report.generation,
                                report.snapshot_records,
                                report.log_records,
                                report.torn_bytes,
                                report.stale_log,
                                report.views.len(),
                                report.ddl_records,
                            ),
                        )
                    }
                    Err(e) => {
                        self.stats.errors.fetch_add(1, Ordering::Relaxed);
                        self.reply(writer, &err_reply(&e.to_string()))
                    }
                }
            }
            Request::Stats => {
                let p = self.pool.stats();
                // Persistence counters are all zero when the server runs
                // without --data-dir (the keys are still present — the
                // reply format does not depend on configuration).
                let (appends, syncs, compactions, replayed) = match self.catalog.store() {
                    Some(store) => {
                        let s = store.lock().expect("catalog store lock").stats();
                        (s.appends, s.syncs, s.compactions, s.recovered_records)
                    }
                    None => (0, 0, 0, 0),
                };
                // Key order is a stable part of the reply format; the index
                // counters (`fanout_requests` onward) always come last, in
                // this order — the fan-out counters, then the routing-index
                // gauges (`trie_*`) — and the CI smoke script parses them
                // by name.
                let trie = self.catalog.index_stats();
                let indep = ufilter_core::independence::stats();
                self.reply(
                    writer,
                    &format!(
                        "OK workers={} shards={} views={} connections={} requests={} errors={} \
                         jobs={} checked={} probe_hits={} probe_misses={} compile_hits={} \
                         persist_appends={appends} persist_syncs={syncs} \
                         persist_compactions={compactions} persist_replayed={replayed} \
                         fanout_requests={} candidates={} pruned={} fallbacks={} \
                         trie_nodes={} trie_postings={} trie_bytes={} trie_inserts={} \
                         trie_removes={} independence_checked={} independence_independent={} \
                         independence_dependent={} independence_unknown={}",
                        self.pool.workers(),
                        self.catalog.shard_count(),
                        self.catalog.len(),
                        self.stats.connections.load(Ordering::Relaxed),
                        self.stats.requests.load(Ordering::Relaxed),
                        self.stats.errors.load(Ordering::Relaxed),
                        p.jobs,
                        p.items,
                        p.probe_hits,
                        p.probe_misses,
                        self.catalog.compile_cache_hits(),
                        p.fanout_requests,
                        p.fanout_candidates,
                        p.fanout_pruned,
                        p.fanout_fallbacks,
                        trie.nodes,
                        trie.postings,
                        trie.bytes,
                        trie.inserts,
                        trie.removes,
                        indep.checked,
                        indep.independent,
                        indep.dependent,
                        indep.unknown,
                    ),
                )
            }
            Request::Metrics => {
                let lines = self.metrics_lines();
                writeln!(writer, "OK {}", lines.len()).ok()?;
                for l in &lines {
                    writeln!(writer, "{l}").ok()?;
                }
                writer.flush().ok()?;
                Some(false)
            }
        }
    }

    /// The Prometheus exposition: every `STATS` value as a typed family
    /// (same live sources as the `STATS` reply, in [`STATS_FAMILIES`]
    /// order) plus every histogram as a quantile summary.
    fn metrics_lines(&self) -> Vec<String> {
        let p = self.pool.stats();
        let (appends, syncs, compactions, replayed) = match self.catalog.store() {
            Some(store) => {
                let s = store.lock().expect("catalog store lock").stats();
                (s.appends, s.syncs, s.compactions, s.recovered_records)
            }
            None => (0, 0, 0, 0),
        };
        let trie = self.catalog.index_stats();
        let indep = ufilter_core::independence::stats();
        let values: [u64; STATS_FAMILIES.len()] = [
            self.pool.workers() as u64,
            self.catalog.shard_count() as u64,
            self.catalog.len() as u64,
            self.stats.connections.load(Ordering::Relaxed) as u64,
            self.stats.requests.load(Ordering::Relaxed) as u64,
            self.stats.errors.load(Ordering::Relaxed) as u64,
            p.jobs as u64,
            p.items as u64,
            p.probe_hits as u64,
            p.probe_misses as u64,
            self.catalog.compile_cache_hits() as u64,
            appends,
            syncs,
            compactions,
            replayed as u64,
            p.fanout_requests as u64,
            p.fanout_candidates as u64,
            p.fanout_pruned as u64,
            p.fanout_fallbacks as u64,
            trie.nodes as u64,
            trie.postings as u64,
            trie.bytes as u64,
            trie.inserts,
            trie.removes,
            indep.checked,
            indep.independent,
            indep.dependent,
            indep.unknown,
        ];
        metrics::render(&values, &obs::snapshot())
    }
}

/// Tab-join the wire outcomes of one update's action reports (the `CHECK`
/// reply payload).
pub fn report_line(reports: &[CheckReport]) -> String {
    reports.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<String>>().join("\t")
}

/// Escape helper re-exported for clients building requests.
pub fn escape_payload(s: &str) -> String {
    escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use ufilter_core::bookdemo;

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("server accepts");
            Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream }
        }

        fn send(&mut self, line: &str) {
            writeln!(self.writer, "{line}").unwrap();
            self.writer.flush().unwrap();
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("server replies");
            line.trim_end().to_string()
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    fn spawn_book_server(workers: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 4));
        catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
        let db = bookdemo::book_db();
        let server = CheckServer::bind("127.0.0.1:0", catalog, &db, workers).expect("binds");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().expect("serves"));
        (addr, handle)
    }

    #[test]
    fn full_session_over_tcp() {
        let (addr, handle) = spawn_book_server(2);
        let mut c = Client::connect(addr);

        assert_eq!(c.roundtrip("PING"), "OK pong");

        // CHECK: u8 is translatable, u10 is not; both come back as OK with
        // a wire outcome.
        let ok = c.roundtrip(&crate::proto::check_request("books", bookdemo::U8));
        assert!(ok.starts_with("OK translatable"), "{ok}");
        let rejected = c.roundtrip(&crate::proto::check_request("books", bookdemo::U10));
        assert!(rejected.starts_with("OK untranslatable"), "{rejected}");

        // Catalog mutation over the wire.
        let added = c.roundtrip(&crate::proto::catalog_add_request("books2", bookdemo::BOOK_VIEW));
        assert!(added.starts_with("OK added books2"), "{added}");
        assert_eq!(c.roundtrip("CATALOG LIST"), "OK 2");
        assert!(c.recv().starts_with("VIEW books "));
        assert!(c.recv().starts_with("VIEW books2 "));
        let dup = c.roundtrip(&crate::proto::catalog_add_request("books2", bookdemo::BOOK_VIEW));
        assert!(dup.starts_with("ERR "), "{dup}");
        assert!(c.roundtrip("CATALOG DROP books2").starts_with("OK dropped"));

        // BATCH: three items, replies in input order, END carries stats.
        c.send("BATCH 3");
        for u in [bookdemo::U8, bookdemo::U10, bookdemo::U8] {
            c.send(&crate::proto::batch_item("books", u));
        }
        assert_eq!(c.recv(), "OK 3");
        let items: Vec<String> = (0..3).map(|_| c.recv()).collect();
        assert!(items[0].starts_with("ITEM 0 books translatable"), "{}", items[0]);
        assert!(items[1].starts_with("ITEM 1 books untranslatable"), "{}", items[1]);
        assert!(items[2].starts_with("ITEM 2 books translatable"), "{}", items[2]);
        assert!(c.recv().starts_with("END items=3 "));

        // A malformed BATCH item drains the remaining item lines before
        // the ERR reply, so the connection stays in sync.
        c.send("BATCH 2");
        c.send("malformed-no-space");
        c.send(&crate::proto::batch_item("books", bookdemo::U8));
        assert!(c.recv().starts_with("ERR "), "malformed batch item rejected");
        assert_eq!(c.roundtrip("PING"), "OK pong", "connection still in sync after batch ERR");

        // Unknown commands keep the connection usable.
        assert!(c.roundtrip("FROBNICATE").starts_with("ERR "));
        let stats = c.roundtrip("STATS");
        assert!(stats.starts_with("OK workers=2 "), "{stats}");
        assert!(stats.contains("views=1"), "{stats}");

        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().expect("clean shutdown");
    }

    #[test]
    fn checkall_and_batchall_fan_out_over_tcp() {
        let (addr, handle) = spawn_book_server(2);
        let mut c = Client::connect(addr);

        // CHECKALL: one registered view, one candidate, END with counters.
        c.send(&crate::proto::checkall_request(bookdemo::U8));
        assert_eq!(c.recv(), "OK 1");
        let item = c.recv();
        assert!(item.starts_with("ITEM books translatable"), "{item}");
        let end = c.recv();
        assert!(end.starts_with("END views=1 candidates=1 pruned=0 fallbacks=0"), "{end}");

        // BATCHALL: two updates, items keyed by update index, END counters.
        c.send("BATCHALL 2");
        c.send(&crate::proto::batchall_item(bookdemo::U8));
        c.send(&crate::proto::batchall_item(bookdemo::U10));
        assert_eq!(c.recv(), "OK 2");
        let first = c.recv();
        assert!(first.starts_with("ITEM 0 books translatable"), "{first}");
        let second = c.recv();
        assert!(second.starts_with("ITEM 1 books untranslatable"), "{second}");
        let end = c.recv();
        assert!(end.starts_with("END items=2 fanout_requests=2 candidates=2 "), "{end}");

        // A malformed BATCHALL item drains before the ERR reply.
        c.send("BATCHALL 2");
        c.send("raw spaces are not escaped");
        c.send(&crate::proto::batchall_item(bookdemo::U8));
        assert!(c.recv().starts_with("ERR "), "malformed batchall item rejected");
        assert_eq!(c.roundtrip("PING"), "OK pong", "connection in sync after batchall ERR");

        // STATS carries the fan-out counters and the routing-index gauges,
        // stable-ordered at the tail.
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("fanout_requests=3"), "{stats}");
        let keys: Vec<&str> = stats.split(' ').filter_map(|kv| kv.split('=').next()).collect();
        let tail = &keys[keys.len() - 13..];
        assert_eq!(
            tail,
            [
                "fanout_requests",
                "candidates",
                "pruned",
                "fallbacks",
                "trie_nodes",
                "trie_postings",
                "trie_bytes",
                "trie_inserts",
                "trie_removes",
                "independence_checked",
                "independence_independent",
                "independence_dependent",
                "independence_unknown"
            ],
            "{stats}"
        );
        // One registered view populates the trie: nodes, postings and at
        // least one recorded insert.
        let gauge = |key: &str| -> u64 {
            stats
                .split(' ')
                .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("missing {key} in {stats}"))
                .parse()
                .unwrap()
        };
        assert!(gauge("trie_nodes") > 0, "{stats}");
        assert!(gauge("trie_postings") > 0, "{stats}");
        assert!(gauge("trie_bytes") > 0, "{stats}");
        assert!(gauge("trie_inserts") >= 1, "{stats}");

        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().expect("clean shutdown");
    }

    #[test]
    fn metrics_reports_prometheus_families_after_traffic() {
        let (addr, handle) = spawn_book_server(2);
        let mut c = Client::connect(addr);

        // Traffic first, so the check-stage histograms have samples.
        let ok = c.roundtrip(&crate::proto::check_request("books", bookdemo::U8));
        assert!(ok.starts_with("OK "), "{ok}");
        c.send(&crate::proto::checkall_request(bookdemo::U8));
        assert_eq!(c.recv(), "OK 1");
        c.recv(); // ITEM
        c.recv(); // END

        let header = c.roundtrip("METRICS");
        let n: usize = header.strip_prefix("OK ").expect(&header).parse().unwrap();
        let lines: Vec<String> = (0..n).map(|_| c.recv()).collect();
        assert!(n > 50, "full exposition, not a stub: {n} lines");

        let value_of = |prefix: &str| -> f64 {
            lines
                .iter()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("no line starts with {prefix}"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        // Exposition-format sanity: HELP/TYPE for every STATS family, and
        // the per-server gauges carry this server's live values.
        for family in STATS_FAMILIES {
            assert!(
                lines.iter().any(|l| *l == format!("# TYPE {} {}", family.family, family.kind)),
                "missing TYPE for {}",
                family.family
            );
        }
        assert_eq!(value_of("ufilter_workers "), 2.0);
        assert_eq!(value_of("ufilter_views "), 1.0);
        assert!(value_of("ufilter_requests_total ") >= 3.0);

        // The histogram summaries saw the traffic above. The obs registry
        // is process-global (shared with sibling tests), so only >= holds.
        for prefix in [
            "ufilter_check_stage_duration_seconds_count{stage=\"parse\"}",
            "ufilter_check_stage_duration_seconds_count{stage=\"validate\"}",
            "ufilter_check_stage_duration_seconds_count{stage=\"star\"}",
            "ufilter_request_duration_seconds_count{verb=\"check\"}",
            "ufilter_request_duration_seconds_count{verb=\"checkall\"}",
            "ufilter_queue_wait_seconds_count",
            "ufilter_shard_lock_hold_seconds_count{kind=\"read\"}",
            "ufilter_route_candidates_count",
        ] {
            assert!(value_of(prefix) >= 1.0, "{prefix} has no samples");
        }
        // Quantiles are ordered and the labels are well-formed.
        let p50 = value_of("ufilter_request_duration_seconds{verb=\"check\",quantile=\"0.5\"}");
        let p999 = value_of("ufilter_request_duration_seconds{verb=\"check\",quantile=\"0.999\"}");
        assert!(p50 > 0.0 && p999 >= p50, "p50={p50} p999={p999}");

        // A request's own latency lands after its reply renders, so the
        // METRICS verb only shows up from the second scrape on.
        let header = c.roundtrip("METRICS");
        let n: usize = header.strip_prefix("OK ").expect(&header).parse().unwrap();
        let lines: Vec<String> = (0..n).map(|_| c.recv()).collect();
        let metrics_count = lines
            .iter()
            .find(|l| l.starts_with("ufilter_request_duration_seconds_count{verb=\"metrics\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap();
        assert!(metrics_count >= 1.0, "second scrape sees the first METRICS request");

        // The connection is still in sync and STATS is untouched.
        assert_eq!(c.roundtrip("PING"), "OK pong");
        assert!(c.roundtrip("METRICS extra").starts_with("ERR "));
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().unwrap();
    }

    #[test]
    fn concurrent_connections_get_consistent_answers() {
        let (addr, handle) = spawn_book_server(4);
        let clients: Vec<std::thread::JoinHandle<Vec<String>>> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr);
                    (0..5)
                        .map(|i| {
                            let u = if i % 2 == 0 { bookdemo::U8 } else { bookdemo::U10 };
                            c.roundtrip(&crate::proto::check_request("books", u))
                        })
                        .collect()
                })
            })
            .collect();
        let answers: Vec<Vec<String>> = clients.into_iter().map(|h| h.join().unwrap()).collect();
        for a in &answers {
            assert_eq!(a, &answers[0], "every client sees identical outcomes");
        }
        let mut c = Client::connect(addr);
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().unwrap();
    }

    #[test]
    fn durable_server_restarts_warm_with_identical_wire_replies() {
        use std::sync::Mutex;
        use ufilter_core::CatalogStore;

        let dir =
            std::env::temp_dir().join(format!("ufilter-server-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let spawn_durable = |dir: &std::path::Path| {
            let mut db = bookdemo::book_db();
            let store = CatalogStore::open(dir).unwrap();
            let mut catalog = ShardedCatalog::new(bookdemo::book_schema(), 4);
            catalog.replay(&mut db, store.records()).unwrap();
            catalog.attach_store(Arc::new(Mutex::new(store)));
            let server =
                CheckServer::bind("127.0.0.1:0", Arc::new(catalog), &db, 2).expect("binds");
            let addr = server.local_addr();
            (addr, std::thread::spawn(move || server.run().expect("serves")))
        };

        // Session 1: add two views, capture LIST + CHECK replies, shut down.
        let (addr, handle) = spawn_durable(&dir);
        let mut c = Client::connect(addr);
        for name in ["books", "books2"] {
            let added = c.roundtrip(&crate::proto::catalog_add_request(name, bookdemo::BOOK_VIEW));
            assert!(added.starts_with("OK added"), "{added}");
        }
        let verify = c.roundtrip("CATALOG VERIFY");
        assert!(verify.starts_with("OK generation=1 "), "{verify}");
        assert!(verify.ends_with("match=yes"), "{verify}");
        let capture = |c: &mut Client| {
            let mut lines = vec![c.roundtrip("CATALOG LIST")];
            for _ in 0..2 {
                lines.push(c.recv());
            }
            lines.push(c.roundtrip(&crate::proto::check_request("books", bookdemo::U8)));
            lines.push(c.roundtrip(&crate::proto::check_request("books2", bookdemo::U10)));
            lines
        };
        let before = capture(&mut c);
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("persist_appends=2"), "{stats}");
        assert!(stats.contains("persist_replayed=0"), "{stats}");
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().unwrap();

        // Session 2: same data dir, nothing re-added — clean shutdown left
        // a gen-2 snapshot, replay rebuilds the same catalog.
        let (addr, handle) = spawn_durable(&dir);
        let mut c = Client::connect(addr);
        let after = capture(&mut c);
        assert_eq!(before, after, "wire replies identical across restart");
        let stats = c.roundtrip("STATS");
        assert!(stats.contains("persist_replayed=2"), "{stats}");
        let verify = c.roundtrip("CATALOG VERIFY");
        assert!(verify.starts_with("OK generation=2 "), "{verify}");
        assert!(verify.ends_with("match=yes"), "{verify}");
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_without_store_is_an_error() {
        let (addr, handle) = spawn_book_server(1);
        let mut c = Client::connect(addr);
        let reply = c.roundtrip("CATALOG VERIFY");
        assert!(reply.starts_with("ERR "), "{reply}");
        assert!(reply.contains("data-dir"), "{reply}");
        assert_eq!(c.roundtrip("SHUTDOWN"), "OK bye");
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_handle_stops_the_server() {
        let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 2));
        let db = bookdemo::book_db();
        let server = CheckServer::bind("127.0.0.1:0", catalog, &db, 1).unwrap();
        let shutdown = server.shutdown_handle();
        let handle = std::thread::spawn(move || server.run().unwrap());
        shutdown.shutdown();
        handle.join().expect("run() returns after shutdown_handle");
    }
}
