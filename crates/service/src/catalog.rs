//! The sharded concurrent catalog: an `Arc`-shareable, `Sync` wrapper that
//! spreads registered views over N independently-locked [`ViewCatalog`]
//! shards.
//!
//! Views hash to shards by name ([`ShardedCatalog::shard_of`]), so the
//! read-mostly check path takes exactly one shard **read** lock, while
//! catalog mutations (`add`/`drop_view`) take one targeted shard **write**
//! lock. Only guarded DDL — which changes the schema every shard compiles
//! against — locks all shards, and it does so under the crate's single
//! lock-ordering rule:
//!
//! > **Lock order:** shard locks are only ever acquired in ascending shard
//! > index, and no thread holds two shard locks unless it is the DDL path
//! > acquiring *all* of them (ascending). Check/list paths lock one shard
//! > at a time.
//!
//! That rule makes deadlock impossible: every multi-lock acquisition is a
//! prefix-ordered sweep, and single-lock acquisitions cannot form a cycle.

use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use ufilter_core::catalog::is_schema_ddl;
use ufilter_core::obs::{self, LockKind};
use ufilter_core::{
    BatchItemReport, BatchReport, BatchStats, CatalogError, CatalogStore, Footprint, IndexStats,
    LogRecord, ProbeCache, ReplayStats, Route, UFilterConfig, ViewCatalog, ViewInfo,
};
use ufilter_rdb::{DatabaseSchema, Db, ExecOutcome, Parser, Stmt};
use ufilter_xquery::UpdateStmt;

/// FNV-1a 64-bit hash — deterministic across runs and processes, so view →
/// shard and (view, update) → worker routing is stable (std's default
/// hasher is randomly seeded per `RandomState`, which would make routing
/// unreproducible between a server and its replay).
pub fn affinity_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        // Separator so ("ab","c") and ("a","bc") hash apart.
        h ^= 0x1f;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// A concurrent, sharded view catalog. See the [module docs](self) for the
/// locking design; per-shard semantics are exactly [`ViewCatalog`]'s
/// (compile-once cache, RESTRICT DDL guard, batch amortization).
pub struct ShardedCatalog {
    shards: Vec<RwLock<ViewCatalog>>,
    /// Shared durable store (see [`ufilter_core::persist`]): one log for
    /// the whole catalog, so record order is exactly acknowledgment order
    /// across shards. Each shard holds a clone for its own `add`/`drop`
    /// appends; this handle serves guarded-DDL appends and the service's
    /// `STATS`/`SHUTDOWN`/`CATALOG VERIFY` paths.
    store: Option<Arc<Mutex<CatalogStore>>>,
}

impl ShardedCatalog {
    /// A catalog of `shards` shards (at least 1) over `schema`, with the
    /// default pipeline config.
    pub fn new(schema: DatabaseSchema, shards: usize) -> ShardedCatalog {
        ShardedCatalog::with_config(schema, UFilterConfig::default(), shards)
    }

    /// [`new`](Self::new) with an explicit pipeline configuration.
    pub fn with_config(
        schema: DatabaseSchema,
        config: UFilterConfig,
        shards: usize,
    ) -> ShardedCatalog {
        let shards = shards.max(1);
        ShardedCatalog {
            shards: (0..shards)
                .map(|_| RwLock::new(ViewCatalog::new(schema.clone()).with_config(config)))
                .collect(),
            store: None,
        }
    }

    /// Attach a durable store to every shard (and keep a handle for the
    /// DDL/service paths): from now on all catalog mutations append their
    /// record before acknowledging. Call **after** [`replay`](Self::replay)
    /// and before the catalog is shared (`&mut self` enforces both).
    pub fn attach_store(&mut self, store: Arc<Mutex<CatalogStore>>) {
        for shard in &self.shards {
            shard.write().expect("catalog shard lock poisoned").attach_store(Arc::clone(&store));
        }
        self.store = Some(store);
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Arc<Mutex<CatalogStore>>> {
        self.store.as_ref()
    }

    /// Rebuild the catalog from recovered records: `Add`s rehydrate into
    /// their name's shard, `Drop`s unregister from it, `Ddl`s re-execute
    /// through the all-shards guarded path — exactly the work the original
    /// session did, so list order, relevance routing and check outcomes
    /// come out identical. Must run before [`attach_store`](Self::attach_store).
    pub fn replay(&self, db: &mut Db, records: &[LogRecord]) -> Result<ReplayStats, CatalogError> {
        if self.store.is_some() {
            return Err(CatalogError::Persist {
                detail: "replay must run before attach_store (records would be re-appended)".into(),
            });
        }
        let mut stats = ReplayStats::default();
        for record in records {
            stats.records += 1;
            match record {
                LogRecord::Add { name, view_text, deps, cached, artifact } => {
                    stats.adds += 1;
                    let rehydrated = self
                        .write(self.shard_of(name))
                        .add_rehydrated(name, view_text, deps, *cached, artifact)?;
                    if rehydrated {
                        stats.rehydrated += 1;
                    } else {
                        stats.recompiled += 1;
                    }
                }
                LogRecord::Drop { name } => {
                    stats.drops += 1;
                    self.write(self.shard_of(name)).drop_view(name)?;
                }
                LogRecord::Ddl { sql } => {
                    stats.ddl += 1;
                    self.execute_guarded(db, sql)?;
                }
            }
        }
        Ok(stats)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a view name hashes to.
    pub fn shard_of(&self, view: &str) -> usize {
        (affinity_hash(&[view]) % self.shards.len() as u64) as usize
    }

    fn read(&self, i: usize) -> RwLockReadGuard<'_, ViewCatalog> {
        self.shards[i].read().expect("catalog shard lock poisoned")
    }

    fn write(&self, i: usize) -> RwLockWriteGuard<'_, ViewCatalog> {
        self.shards[i].write().expect("catalog shard lock poisoned")
    }

    /// Register `view_text` under `name` (one shard write lock). A name may
    /// exist in at most one shard by construction, so [`ViewCatalog::add`]'s
    /// duplicate check remains authoritative.
    pub fn add(&self, name: &str, view_text: &str) -> Result<ViewInfo, CatalogError> {
        let span = obs::clock();
        let out = self.write(self.shard_of(name)).add(name, view_text);
        obs::lock_hold_elapsed(LockKind::Write, span);
        out
    }

    /// Unregister `name` (one shard write lock).
    pub fn drop_view(&self, name: &str) -> Result<(), CatalogError> {
        let span = obs::clock();
        let out = self.write(self.shard_of(name)).drop_view(name);
        obs::lock_hold_elapsed(LockKind::Write, span);
        out
    }

    /// All registered views in name order (read locks, one shard at a time,
    /// ascending).
    pub fn list(&self) -> Vec<ViewInfo> {
        let mut out: Vec<ViewInfo> = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.read(i).list());
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Total number of registered views.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).len()).sum()
    }

    /// Whether no view is registered in any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compile-once cache hits summed over all shards.
    pub fn compile_cache_hits(&self) -> usize {
        (0..self.shards.len()).map(|i| self.read(i).compile_cache_hits()).sum()
    }

    /// Names of registered views (any shard) that read `relation`, in
    /// ascending name order.
    pub fn dependents_of(&self, relation: &str) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for i in 0..self.shards.len() {
            out.extend(self.read(i).dependents_of(relation));
        }
        out.sort();
        out
    }

    /// Route a parsed update across every shard's relevance index: the
    /// merged candidate set (ascending name order) plus summed per-level
    /// pruning counters. Read locks, one shard at a time, ascending — the
    /// lock-ordering rule.
    pub fn route_update(&self, u: &UpdateStmt) -> Route {
        // One footprint extraction per request, shared by every shard.
        let fp = Footprint::of(u);
        let mut merged = Route::default();
        for i in 0..self.shards.len() {
            let route = self.read(i).route_footprint(&fp);
            merged.views += route.views;
            merged.pruned_tags += route.pruned_tags;
            merged.pruned_paths += route.pruned_paths;
            merged.pruned_preds += route.pruned_preds;
            merged.fallback |= route.fallback;
            merged.candidates.extend(route.candidates);
        }
        merged.candidates.sort();
        merged
    }

    /// The views a parsed update could possibly affect, across all shards,
    /// in ascending name order (a sound superset — see `ufilter_route`).
    pub fn relevant_views(&self, u: &UpdateStmt) -> Vec<String> {
        self.route_update(u).candidates
    }

    /// Routing-index gauges summed over every shard's trie (read locks,
    /// one shard at a time, ascending): live nodes, posting entries,
    /// approximate resident bytes, and incremental insert/remove counts
    /// since the process started. The service `STATS` verb reports these.
    pub fn index_stats(&self) -> IndexStats {
        let mut merged = IndexStats::default();
        for i in 0..self.shards.len() {
            merged.merge(&self.read(i).index_stats());
        }
        merged
    }

    /// The RESTRICT rule across every shard: reject schema-affecting DDL on
    /// a relation any registered view reads. Advisory only — the atomic
    /// guard-and-execute is [`execute_guarded`](Self::execute_guarded),
    /// which re-checks under write locks.
    pub fn guard_ddl(&self, stmt: &Stmt) -> Result<(), CatalogError> {
        for i in 0..self.shards.len() {
            self.read(i).guard_ddl(stmt)?;
        }
        Ok(())
    }

    /// Parse `sql`, then [`execute_guarded_stmt`](Self::execute_guarded_stmt).
    /// With a store attached, successfully-executed schema DDL is appended
    /// once (by this wrapper, not per shard — the statement path below has
    /// no SQL text to log). See [`ViewCatalog::execute_guarded`] for the
    /// re-execute-on-replay rationale.
    pub fn execute_guarded(&self, db: &mut Db, sql: &str) -> Result<ExecOutcome, CatalogError> {
        let stmt =
            Parser::parse_stmt(sql).map_err(|e| CatalogError::Sql { detail: e.to_string() })?;
        let ddl = is_schema_ddl(&stmt);
        let out = self.execute_guarded_stmt(db, stmt)?;
        if ddl {
            if let Some(store) = &self.store {
                store
                    .lock()
                    .expect("catalog store lock")
                    .append(&LogRecord::Ddl { sql: sql.to_string() })
                    .map_err(|e| CatalogError::Persist { detail: e.to_string() })?;
            }
        }
        Ok(out)
    }

    /// Guard and execute one statement atomically with respect to catalog
    /// mutation: **all** shard write locks are taken (ascending index — the
    /// lock-ordering rule), the guard is evaluated under them, the statement
    /// runs against `db`, and on schema-affecting DDL every shard adopts the
    /// new schema before any lock is released. Concurrent checks therefore
    /// never observe a half-updated catalog.
    pub fn execute_guarded_stmt(
        &self,
        db: &mut Db,
        stmt: Stmt,
    ) -> Result<ExecOutcome, CatalogError> {
        let span = obs::clock();
        let mut guards: Vec<RwLockWriteGuard<'_, ViewCatalog>> =
            (0..self.shards.len()).map(|i| self.write(i)).collect();
        let out = Self::run_under_guards(&mut guards, db, stmt);
        drop(guards);
        obs::lock_hold_elapsed(LockKind::Write, span);
        out
    }

    /// [`execute_guarded_stmt`](Self::execute_guarded_stmt)'s body with
    /// every shard write lock already held.
    fn run_under_guards(
        guards: &mut [RwLockWriteGuard<'_, ViewCatalog>],
        db: &mut Db,
        stmt: Stmt,
    ) -> Result<ExecOutcome, CatalogError> {
        for shard in guards.iter() {
            shard.guard_ddl(&stmt)?;
        }
        let ddl = is_schema_ddl(&stmt);
        let out = db.run(stmt).map_err(|e| CatalogError::Sql { detail: e.to_string() })?;
        if ddl {
            for shard in guards.iter_mut() {
                shard.set_schema(db.schema().clone());
            }
        }
        Ok(out)
    }

    /// Check a stream of `(global index, view, update text)` items, sharing
    /// `cache` across the whole call. Items are grouped by shard; each
    /// shard's sub-batch runs under that shard's read lock (one at a time,
    /// ascending — the lock-ordering rule), then reports are re-indexed to
    /// the caller's global indices and merged back into index order.
    ///
    /// Outcomes are identical to a single [`ViewCatalog`] holding every
    /// view: grouping by shard only changes *which* probe scans are shared,
    /// never any per-item classification (batch checking is check-only, so
    /// probe results cannot be invalidated mid-call).
    pub fn check_indexed(
        &self,
        items: &[(usize, &str, &str)],
        db: &mut Db,
        cache: &mut ProbeCache,
    ) -> (Vec<BatchItemReport>, BatchStats) {
        // shard → (global indices, borrowed sub-stream), preserving input
        // order. Borrowed all the way down (`check_batch_refs`): the hot
        // path never clones a view name or update text.
        type ShardSlice<'a> = (Vec<usize>, Vec<(&'a str, &'a str)>);
        let mut per_shard: Vec<ShardSlice> = vec![(Vec::new(), Vec::new()); self.shards.len()];
        for (index, view, text) in items.iter().copied() {
            let (globals, sub) = &mut per_shard[self.shard_of(view)];
            globals.push(index);
            sub.push((view, text));
        }
        let mut out: Vec<BatchItemReport> = Vec::with_capacity(items.len());
        let mut stats = BatchStats::default();
        for (shard, (globals, sub)) in per_shard.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let span = obs::clock();
            let report = self.read(shard).check_batch_refs(&sub, db, cache);
            obs::lock_hold_elapsed(LockKind::Read, span);
            stats.merge(&report.stats);
            for mut item in report.items {
                item.index = globals[item.index];
                out.push(item);
            }
        }
        out.sort_by_key(|i| i.index);
        (out, stats)
    }

    /// Single-threaded convenience over [`check_indexed`](Self::check_indexed)
    /// with `(view, text)` pairs indexed by position, packaged as a
    /// [`BatchReport`].
    pub fn check_batch_text(&self, items: &[(String, String)], db: &mut Db) -> BatchReport {
        let indexed: Vec<(usize, &str, &str)> =
            items.iter().enumerate().map(|(i, (v, t))| (i, v.as_str(), t.as_str())).collect();
        let (items, stats) = self.check_indexed(&indexed, db, &mut ProbeCache::new());
        BatchReport { items, stats }
    }
}

// The whole point of the sharded catalog: it can be shared across worker
// threads behind an Arc.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<ShardedCatalog>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ufilter_core::bookdemo;

    #[test]
    fn affinity_hash_is_stable_and_separator_aware() {
        assert_eq!(affinity_hash(&["books"]), affinity_hash(&["books"]));
        assert_ne!(affinity_hash(&["ab", "c"]), affinity_hash(&["a", "bc"]));
    }

    #[test]
    fn add_list_drop_across_shards() {
        let cat = ShardedCatalog::new(bookdemo::book_schema(), 4);
        for name in ["a", "b", "c", "d", "e"] {
            cat.add(name, bookdemo::BOOK_VIEW).unwrap();
        }
        assert_eq!(cat.len(), 5);
        let names: Vec<String> = cat.list().into_iter().map(|v| v.name).collect();
        assert_eq!(names, ["a", "b", "c", "d", "e"]);
        assert!(cat.add("a", bookdemo::BOOK_VIEW).is_err(), "duplicate rejected");
        cat.drop_view("c").unwrap();
        assert_eq!(cat.len(), 4);
        assert!(cat.drop_view("c").is_err());
    }

    #[test]
    fn sharded_outcomes_match_single_catalog() {
        let mut single = ViewCatalog::new(bookdemo::book_schema());
        single.add("books", bookdemo::BOOK_VIEW).unwrap();
        let sharded = ShardedCatalog::new(bookdemo::book_schema(), 3);
        sharded.add("books", bookdemo::BOOK_VIEW).unwrap();

        let stream: Vec<(String, String)> = [bookdemo::U8, bookdemo::U10, bookdemo::U13]
            .iter()
            .map(|u| ("books".to_string(), u.to_string()))
            .collect();
        let mut db1 = bookdemo::book_db();
        let mut db2 = bookdemo::book_db();
        let a = single.check_batch_text(&stream, &mut db1);
        let b = sharded.check_batch_text(&stream, &mut db2);
        let wire = |r: &BatchReport| -> Vec<String> {
            r.items
                .iter()
                .flat_map(|i| {
                    i.reports.iter().map(|r| ufilter_core::wire::encode_outcome(&r.outcome))
                })
                .collect()
        };
        assert_eq!(wire(&a), wire(&b));
    }

    #[test]
    fn ddl_guard_spans_all_shards() {
        let cat = ShardedCatalog::new(bookdemo::book_schema(), 4);
        cat.add("books", bookdemo::BOOK_VIEW).unwrap();
        let mut db = bookdemo::book_db();
        let e = cat.execute_guarded(&mut db, "DROP TABLE review").unwrap_err();
        assert!(e.to_string().contains("books"), "{e}");
        // A relation no view reads can be created and dropped; afterwards
        // every shard has adopted the refreshed schema.
        cat.execute_guarded(&mut db, "CREATE TABLE scratch (id INTEGER)").unwrap();
        assert!(cat.guard_ddl(&Parser::parse_stmt("DROP TABLE scratch").unwrap()).is_ok());
        cat.execute_guarded(&mut db, "DROP TABLE scratch").unwrap();
        for i in 0..cat.shard_count() {
            assert!(cat.read(i).schema().table("scratch").is_none(), "shard {i} schema stale");
        }
    }

    #[test]
    fn relevant_views_merge_across_shards_in_name_order() {
        let cat = ShardedCatalog::new(bookdemo::book_schema(), 4);
        for name in ["d", "b", "a", "c"] {
            cat.add(name, bookdemo::BOOK_VIEW).unwrap();
        }
        let u = ufilter_xquery::parse_update(bookdemo::U8).unwrap();
        assert_eq!(cat.relevant_views(&u), ["a", "b", "c", "d"]);
        let route = cat.route_update(&u);
        assert_eq!(route.views, 4);
        assert_eq!(route.pruned(), 0);
        assert!(!route.fallback);
    }

    #[test]
    fn durable_sharded_catalog_replays_to_identical_state() {
        let dir =
            std::env::temp_dir().join(format!("ufilter-sharded-replay-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = bookdemo::book_db();

        // Session 1: mutate through every durable path.
        let mut cat = ShardedCatalog::new(bookdemo::book_schema(), 4);
        cat.attach_store(Arc::new(Mutex::new(CatalogStore::open(&dir).unwrap())));
        for name in ["a", "b", "c"] {
            cat.add(name, bookdemo::BOOK_VIEW).unwrap();
        }
        cat.drop_view("b").unwrap();
        cat.execute_guarded(&mut db, "CREATE TABLE scratch (id INTEGER)").unwrap();
        let before: Vec<(String, bool)> =
            cat.list().into_iter().map(|v| (v.name, v.cached)).collect();

        // Session 2: recover from disk alone.
        let mut db2 = bookdemo::book_db();
        let store = CatalogStore::open(&dir).unwrap();
        let mut cat2 = ShardedCatalog::new(bookdemo::book_schema(), 4);
        let stats = cat2.replay(&mut db2, store.records()).unwrap();
        cat2.attach_store(Arc::new(Mutex::new(store)));
        assert_eq!((stats.adds, stats.drops, stats.ddl), (3, 1, 1));
        assert_eq!(stats.rehydrated, 3, "artifacts (or the cache) served every add");
        let after: Vec<(String, bool)> =
            cat2.list().into_iter().map(|v| (v.name, v.cached)).collect();
        assert_eq!(before, after, "list (with cached flags) is byte-identical");
        assert!(db2.schema().table("scratch").is_some(), "DDL re-executed on replay");

        // Replay after attach is a usage error, not silent double-logging.
        assert!(cat2.replay(&mut db2, &[]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_view_gets_per_item_report() {
        let cat = ShardedCatalog::new(bookdemo::book_schema(), 2);
        let mut db = bookdemo::book_db();
        let report =
            cat.check_batch_text(&[("ghost".to_string(), bookdemo::U8.to_string())], &mut db);
        assert_eq!(report.items.len(), 1);
        assert!(!report.items[0].reports[0].outcome.is_translatable());
    }
}
