//! The line-oriented wire protocol (ADR in `docs/ARCHITECTURE.md`).
//!
//! Every request is one line of space-separated tokens; free-text fields
//! (update text, view definitions, error details) travel percent-escaped
//! with [`ufilter_core::wire::escape`], so the framing never depends on
//! payload content. Replies start with `OK` or `ERR`:
//!
//! ```text
//! --> CHECK <view> <escaped-update>
//! <-- OK <wire-outcome>[\t<wire-outcome>...]
//!
//! --> BATCH <n>            (followed by n lines: <view> <escaped-update>)
//! <-- OK <n>
//! <-- ITEM <index> <view> <wire-outcome>        (one line per action report)
//! <-- END items=<n> parse_hits=<..> probe_hits=<..> probe_misses=<..> groups=<..>
//!
//! --> CHECKALL <escaped-update>                 (no view: fan out to candidates)
//! <-- OK <candidates>
//! <-- ITEM <view> <wire-outcome>                (candidate views, name order)
//! <-- END views=<..> candidates=<..> pruned=<..> fallbacks=<..>
//!
//! --> BATCHALL <n>         (followed by n lines: <escaped-update>)
//! <-- OK <n>
//! <-- ITEM <update-index> <view> <wire-outcome>
//! <-- END items=<n> fanout_requests=<..> candidates=<..> pruned=<..> fallbacks=<..>
//!
//! --> CATALOG ADD <name> <escaped-view-text>
//! <-- OK added <name> reads=<r1,r2,...>
//! --> CATALOG DROP <name>
//! <-- OK dropped <name>
//! --> CATALOG LIST
//! <-- OK <n>               (followed by n lines: VIEW <name> reads=<...> cached=<bool>)
//! --> CATALOG VERIFY       (read-only integrity check of the durable store)
//! <-- OK generation=<..> snapshot_records=<..> log_records=<..> torn_bytes=<..>
//!        stale_log=<..> views=<..> ddl=<..> match=<yes|no>
//!
//! --> STATS
//! <-- OK workers=<..> shards=<..> views=<..> requests=<..> checked=<..> ...
//! --> METRICS
//! <-- OK <n>               (followed by n raw Prometheus text-format lines)
//! --> PING
//! <-- OK pong
//! --> SHUTDOWN
//! <-- OK bye               (server stops accepting and drains)
//! ```
//!
//! Any malformed or unknown request gets `ERR <escaped-detail>` and leaves
//! the connection usable.

use ufilter_core::wire::{escape, unescape};

/// Upper bound on the `BATCH`/`BATCHALL` item count. The count arrives
/// before any item line and sizes server-side buffers, so it must be capped
/// at parse time; anything above this is a protocol error, not a request.
pub const MAX_BATCH_ITEMS: usize = 65_536;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `CHECK <view> <escaped-update>` — check one update (unescaped here).
    Check {
        /// Target view name.
        view: String,
        /// The update text, already unescaped.
        update: String,
    },
    /// `BATCH <n>` — the next `n` lines are batch items.
    Batch {
        /// Number of item lines that follow.
        count: usize,
    },
    /// `CHECKALL <escaped-update>` — fan one update out to every candidate
    /// view the relevance index routes it to.
    CheckAll {
        /// The update text, already unescaped.
        update: String,
    },
    /// `BATCHALL <n>` — the next `n` lines are escaped updates, each
    /// fanned out to its candidate views.
    BatchAll {
        /// Number of update lines that follow.
        count: usize,
    },
    /// `CATALOG ADD <name> <escaped-view-text>`.
    CatalogAdd {
        /// Registration name.
        name: String,
        /// View query text, already unescaped.
        view_text: String,
    },
    /// `CATALOG DROP <name>`.
    CatalogDrop {
        /// Name to unregister.
        name: String,
    },
    /// `CATALOG LIST`.
    CatalogList,
    /// `CATALOG VERIFY` — read-only integrity check of the attached
    /// durable store (errors when the server runs without `--data-dir`).
    CatalogVerify,
    /// `STATS` — one-line server/pool counters.
    Stats,
    /// `METRICS` — multi-line Prometheus text exposition (histogram
    /// summaries + every `STATS` counter as a typed family).
    Metrics,
    /// `PING` — liveness probe.
    Ping,
    /// `SHUTDOWN` — stop accepting connections and drain.
    Shutdown,
}

impl Request {
    /// The wire verb this request arrived as (stable lowercase label for
    /// slow-request logs and per-verb latency families).
    pub fn wire_verb(&self) -> &'static str {
        match self {
            Request::Check { .. } => "check",
            Request::Batch { .. } => "batch",
            Request::CheckAll { .. } => "checkall",
            Request::BatchAll { .. } => "batchall",
            Request::CatalogAdd { .. } => "catalog_add",
            Request::CatalogDrop { .. } => "catalog_drop",
            Request::CatalogList => "catalog_list",
            Request::CatalogVerify => "catalog_verify",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Parse one request line. `Err` carries a human-readable detail suitable
/// for an `ERR` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.splitn(3, ' ');
    let verb = parts.next().unwrap_or_default();
    match verb {
        "CHECK" => {
            let view = parts.next().filter(|v| !v.is_empty()).ok_or("CHECK needs a view name")?;
            let escaped = parts.next().ok_or("CHECK needs an escaped update")?;
            if escaped.contains(' ') {
                return Err("CHECK takes exactly two operands (is the update escaped?)".into());
            }
            let update = unescape(escaped).map_err(|e| e.to_string())?;
            Ok(Request::Check { view: view.to_string(), update })
        }
        "BATCH" | "BATCHALL" => {
            let count: usize = parts
                .next()
                .ok_or_else(|| format!("{verb} needs an item count"))?
                .parse()
                .map_err(|_| format!("{verb} count must be a non-negative integer"))?;
            if parts.next().is_some() {
                return Err(format!("{verb} takes exactly one operand"));
            }
            // The count sizes server-side buffers before any item line is
            // read, so an absurd value must be refused here — otherwise a
            // one-line request commits the server to allocating for it.
            if count > MAX_BATCH_ITEMS {
                return Err(format!("{verb} count {count} exceeds the limit ({MAX_BATCH_ITEMS})"));
            }
            Ok(if verb == "BATCH" { Request::Batch { count } } else { Request::BatchAll { count } })
        }
        "CHECKALL" => {
            let escaped = parts.next().ok_or("CHECKALL needs an escaped update")?;
            if escaped.is_empty() || escaped.contains(' ') || parts.next().is_some() {
                return Err("CHECKALL takes exactly one operand (is the update escaped?)".into());
            }
            Ok(Request::CheckAll { update: unescape(escaped).map_err(|e| e.to_string())? })
        }
        "CATALOG" => match parts.next() {
            Some("ADD") => {
                let rest = parts.next().ok_or("CATALOG ADD needs <name> <escaped-view>")?;
                let (name, text) =
                    rest.split_once(' ').ok_or("CATALOG ADD needs <name> <escaped-view>")?;
                if name.is_empty() || text.contains(' ') {
                    return Err(
                        "CATALOG ADD takes exactly two operands (is the view text escaped?)".into(),
                    );
                }
                Ok(Request::CatalogAdd {
                    name: name.to_string(),
                    view_text: unescape(text).map_err(|e| e.to_string())?,
                })
            }
            Some("DROP") => {
                let name = parts.next().filter(|n| !n.is_empty() && !n.contains(' '));
                Ok(Request::CatalogDrop {
                    name: name.ok_or("CATALOG DROP needs exactly one name")?.to_string(),
                })
            }
            Some("LIST") => match parts.next() {
                None => Ok(Request::CatalogList),
                Some(_) => Err("CATALOG LIST takes no operands".into()),
            },
            Some("VERIFY") => match parts.next() {
                None => Ok(Request::CatalogVerify),
                Some(_) => Err("CATALOG VERIFY takes no operands".into()),
            },
            other => Err(format!("unknown CATALOG subcommand {other:?} (ADD/DROP/LIST/VERIFY)")),
        },
        "STATS" | "METRICS" | "PING" | "SHUTDOWN" => {
            if parts.next().is_some() {
                return Err(format!("{verb} takes no operands"));
            }
            Ok(match verb {
                "STATS" => Request::Stats,
                "METRICS" => Request::Metrics,
                "PING" => Request::Ping,
                _ => Request::Shutdown,
            })
        }
        "" => Err("empty request".into()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parse one `BATCH` item line: `<view> <escaped-update>`.
pub fn parse_batch_item(line: &str) -> Result<(String, String), String> {
    let line = line.trim_end_matches(['\r', '\n']);
    let (view, text) = line.split_once(' ').ok_or("batch item needs <view> <escaped-update>")?;
    if view.is_empty() || text.contains(' ') {
        return Err("batch item takes exactly <view> <escaped-update>".into());
    }
    Ok((view.to_string(), unescape(text).map_err(|e| e.to_string())?))
}

/// Parse one `BATCHALL` item line: a single `<escaped-update>` token.
pub fn parse_batchall_item(line: &str) -> Result<String, String> {
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() || line.contains(' ') {
        return Err("batchall item takes exactly one <escaped-update>".into());
    }
    unescape(line).map_err(|e| e.to_string())
}

/// Format an `ERR` reply line (detail escaped, so always one line).
pub fn err_reply(detail: &str) -> String {
    format!("ERR {}", escape(detail))
}

/// Format a `CHECK` request line.
pub fn check_request(view: &str, update: &str) -> String {
    format!("CHECK {view} {}", escape(update))
}

/// Format a `CHECKALL` request line.
pub fn checkall_request(update: &str) -> String {
    format!("CHECKALL {}", escape(update))
}

/// Format a `BATCHALL` item line.
pub fn batchall_item(update: &str) -> String {
    escape(update)
}

/// Format a `BATCH` item line.
pub fn batch_item(view: &str, update: &str) -> String {
    format!("{view} {}", escape(update))
}

/// Format a `CATALOG ADD` request line.
pub fn catalog_add_request(name: &str, view_text: &str) -> String {
    format!("CATALOG ADD {name} {}", escape(view_text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_request_roundtrips_multiline_update() {
        let update = "FOR $r IN document(\"V.xml\")\nUPDATE $r { DELETE $b }";
        let line = check_request("books", update);
        assert!(!line.contains('\n'));
        assert_eq!(
            parse_request(&line).unwrap(),
            Request::Check { view: "books".into(), update: update.into() }
        );
    }

    #[test]
    fn catalog_requests_parse() {
        assert_eq!(
            parse_request(&catalog_add_request("v1", "FOR $x ...")).unwrap(),
            Request::CatalogAdd { name: "v1".into(), view_text: "FOR $x ...".into() }
        );
        assert_eq!(
            parse_request("CATALOG DROP v1").unwrap(),
            Request::CatalogDrop { name: "v1".into() }
        );
        assert_eq!(parse_request("CATALOG LIST").unwrap(), Request::CatalogList);
        assert!(parse_request("CATALOG LIST extra").is_err());
        assert_eq!(parse_request("CATALOG VERIFY").unwrap(), Request::CatalogVerify);
        assert!(parse_request("CATALOG VERIFY now").is_err());
        assert!(parse_request("CATALOG NUKE v1").is_err());
    }

    #[test]
    fn zero_operand_verbs_reject_operands() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        assert!(parse_request("PING now").is_err());
        assert!(parse_request("METRICS now").is_err());
    }

    #[test]
    fn wire_verbs_are_stable_lowercase_labels() {
        assert_eq!(Request::Metrics.wire_verb(), "metrics");
        assert_eq!(Request::Check { view: "v".into(), update: "u".into() }.wire_verb(), "check");
        assert_eq!(Request::CatalogList.wire_verb(), "catalog_list");
        assert_eq!(Request::Shutdown.wire_verb(), "shutdown");
    }

    #[test]
    fn batch_header_and_items_parse() {
        assert_eq!(parse_request("BATCH 3").unwrap(), Request::Batch { count: 3 });
        assert!(parse_request("BATCH").is_err());
        assert!(parse_request("BATCH many").is_err());
        // The count pre-sizes server buffers; absurd values are refused at
        // parse time (surfaced by wire-frame fuzzing).
        assert_eq!(
            parse_request(&format!("BATCH {MAX_BATCH_ITEMS}")).unwrap(),
            Request::Batch { count: MAX_BATCH_ITEMS }
        );
        assert!(parse_request(&format!("BATCH {}", MAX_BATCH_ITEMS + 1)).is_err());
        assert!(parse_request("BATCHALL 99999999999").is_err());
        let (view, text) = parse_batch_item(&batch_item("books", "a b\nc")).unwrap();
        assert_eq!((view.as_str(), text.as_str()), ("books", "a b\nc"));
        assert!(parse_batch_item("no-space-here").is_err());
    }

    #[test]
    fn checkall_and_batchall_parse() {
        let update = "FOR $r IN document(\"V.xml\")\nUPDATE $r { DELETE $b }";
        assert_eq!(
            parse_request(&checkall_request(update)).unwrap(),
            Request::CheckAll { update: update.into() }
        );
        assert!(parse_request("CHECKALL").is_err());
        assert!(parse_request("CHECKALL two words").is_err());
        assert_eq!(parse_request("BATCHALL 2").unwrap(), Request::BatchAll { count: 2 });
        assert!(parse_request("BATCHALL many").is_err());
        assert_eq!(parse_batchall_item(&batchall_item("a b\nc")).unwrap(), "a b\nc");
        assert!(parse_batchall_item("raw space").is_err());
        assert!(parse_batchall_item("").is_err());
    }

    #[test]
    fn malformed_lines_yield_err_not_panic() {
        for bad in ["", "WAT", "CHECK", "CHECK v", "CHECK v %zz"] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
        assert!(err_reply("two words, a comma").starts_with("ERR "));
        assert!(!err_reply("a b").contains(" b"), "detail is escaped");
    }
}
