//! Prometheus text-format rendering for the `METRICS` wire verb.
//!
//! Two sources feed one exposition:
//!
//! * every `STATS` counter/gauge, re-emitted as a typed family via the
//!   [`STATS_FAMILIES`] table (the drift guard asserts the table's keys
//!   are exactly the pinned `STATS` reply keys, in order, so the two
//!   surfaces cannot silently diverge);
//! * every [`ufilter_core::obs`] histogram, rendered as a Prometheus
//!   **summary** (quantile labels `0.5/0.9/0.99/0.999` plus `_sum` and
//!   `_count`) — the 976-bucket log-linear layout is far too fine to ship
//!   as a native histogram type, and quantiles are what the layer exists
//!   to expose. Durations are scaled to seconds per Prometheus convention.
//!
//! Every family is rendered unconditionally (zero counts included), so
//! scrapers and the CI smoke can assert on family *presence* regardless of
//! traffic shape or server configuration.

use ufilter_core::obs::{HistogramSnapshot, MetricsSnapshot, Stage, Verb};

/// One `STATS` key's Prometheus identity.
#[derive(Debug, Clone, Copy)]
pub struct StatsFamily {
    /// The key as it appears in the pinned `STATS` reply.
    pub stats_key: &'static str,
    /// The Prometheus family name.
    pub family: &'static str,
    /// `"counter"` or `"gauge"`.
    pub kind: &'static str,
    /// The `# HELP` text.
    pub help: &'static str,
}

const fn fam(
    stats_key: &'static str,
    family: &'static str,
    kind: &'static str,
    help: &'static str,
) -> StatsFamily {
    StatsFamily { stats_key, family, kind, help }
}

/// Every `STATS` key, **in the pinned `STATS` reply order**, with its
/// Prometheus family. The drift-guard test holds this table and the wire
/// reply to each other.
pub const STATS_FAMILIES: &[StatsFamily] = &[
    fam("workers", "ufilter_workers", "gauge", "Check-pool worker threads."),
    fam("shards", "ufilter_shards", "gauge", "Catalog shards."),
    fam("views", "ufilter_views", "gauge", "Registered views."),
    fam("connections", "ufilter_connections_total", "counter", "TCP connections accepted."),
    fam("requests", "ufilter_requests_total", "counter", "Requests parsed and handled."),
    fam("errors", "ufilter_errors_total", "counter", "Requests answered with ERR."),
    fam("jobs", "ufilter_jobs_total", "counter", "Jobs dispatched to pool workers."),
    fam("checked", "ufilter_checked_total", "counter", "Stream items checked."),
    fam(
        "probe_hits",
        "ufilter_probe_hits_total",
        "counter",
        "Context probes served from a warm worker cache.",
    ),
    fam(
        "probe_misses",
        "ufilter_probe_misses_total",
        "counter",
        "Context probes that had to scan.",
    ),
    fam(
        "compile_hits",
        "ufilter_compile_hits_total",
        "counter",
        "View compilations served from the compile-once cache.",
    ),
    fam(
        "persist_appends",
        "ufilter_persist_appends_total",
        "counter",
        "Records appended to the durable catalog log.",
    ),
    fam(
        "persist_syncs",
        "ufilter_persist_syncs_total",
        "counter",
        "Fsyncs of the durable catalog log.",
    ),
    fam(
        "persist_compactions",
        "ufilter_persist_compactions_total",
        "counter",
        "Snapshot compactions of the durable catalog.",
    ),
    fam("persist_replayed", "ufilter_persist_replayed", "gauge", "Records replayed at startup."),
    fam(
        "fanout_requests",
        "ufilter_fanout_requests_total",
        "counter",
        "CHECKALL/BATCHALL updates routed through the relevance index.",
    ),
    fam(
        "candidates",
        "ufilter_fanout_candidates_total",
        "counter",
        "Candidate (view, update) checks dispatched by fan-out.",
    ),
    fam(
        "pruned",
        "ufilter_fanout_pruned_total",
        "counter",
        "Views pruned by the relevance index without running the pipeline.",
    ),
    fam(
        "fallbacks",
        "ufilter_fanout_fallbacks_total",
        "counter",
        "Fan-out requests the index could not classify.",
    ),
    fam(
        "trie_nodes",
        "ufilter_trie_nodes",
        "gauge",
        "Live nodes in the shared path-trie routing index.",
    ),
    fam("trie_postings", "ufilter_trie_postings", "gauge", "Posting entries in the routing trie."),
    fam(
        "trie_bytes",
        "ufilter_trie_bytes",
        "gauge",
        "Approximate resident bytes of the routing trie.",
    ),
    fam(
        "trie_inserts",
        "ufilter_trie_inserts_total",
        "counter",
        "View signatures inserted into the routing trie.",
    ),
    fam(
        "trie_removes",
        "ufilter_trie_removes_total",
        "counter",
        "View signatures removed from the routing trie.",
    ),
    fam(
        "independence_checked",
        "ufilter_independence_checked_total",
        "counter",
        "Blunt non-injective rejections re-examined by the independence analysis.",
    ),
    fam(
        "independence_independent",
        "ufilter_independence_independent_total",
        "counter",
        "Independence verdicts that admitted the update to the unchanged pipeline.",
    ),
    fam(
        "independence_dependent",
        "ufilter_independence_dependent_total",
        "counter",
        "Independence rejections with a named blocking read-set entry.",
    ),
    fam(
        "independence_unknown",
        "ufilter_independence_unknown_total",
        "counter",
        "Independence rejections where the write-set could not be bounded.",
    ),
];

/// The quantiles every summary family exposes.
const QUANTILES: [(&str, f64); 4] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)];

/// Append one summary family. `labels` is either empty or a single
/// `key="value"` pair; `scale` converts recorded units to exposed units
/// (1e-9 for nanosecond durations → seconds, 1.0 for plain counts).
fn push_summary(
    out: &mut Vec<String>,
    family: &str,
    help: &str,
    series: &[(&str, &HistogramSnapshot)],
    scale: f64,
) {
    out.push(format!("# HELP {family} {help}"));
    out.push(format!("# TYPE {family} summary"));
    for (labels, snap) in series {
        let sep = if labels.is_empty() { "" } else { "," };
        for (name, q) in QUANTILES {
            out.push(format!(
                "{family}{{{labels}{sep}quantile=\"{name}\"}} {}",
                snap.quantile(q) as f64 * scale
            ));
        }
        let braced = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        out.push(format!("{family}_sum{braced} {}", snap.sum() as f64 * scale));
        out.push(format!("{family}_count{braced} {}", snap.count()));
    }
}

/// Render the full exposition: one line per element of the returned `Vec`
/// (no trailing newlines). `stats_values` are the `STATS` reply values in
/// [`STATS_FAMILIES`] order; `snap` is the merged histogram snapshot.
pub fn render(stats_values: &[u64], snap: &MetricsSnapshot) -> Vec<String> {
    assert_eq!(
        stats_values.len(),
        STATS_FAMILIES.len(),
        "one value per STATS family, in table order"
    );
    let mut out = Vec::new();
    for (family, value) in STATS_FAMILIES.iter().zip(stats_values) {
        out.push(format!("# HELP {} {}", family.family, family.help));
        out.push(format!("# TYPE {} {}", family.family, family.kind));
        out.push(format!("{} {value}", family.family));
    }

    let stage_labels: Vec<String> =
        Stage::ALL.iter().map(|s| format!("stage=\"{}\"", s.name())).collect();
    let stage_series: Vec<(&str, &HistogramSnapshot)> =
        Stage::ALL.iter().zip(&stage_labels).map(|(s, l)| (l.as_str(), snap.stage(*s))).collect();
    push_summary(
        &mut out,
        "ufilter_check_stage_duration_seconds",
        "Per-stage check-pipeline span duration.",
        &stage_series,
        1e-9,
    );

    let verb_labels: Vec<String> =
        Verb::ALL.iter().map(|v| format!("verb=\"{}\"", v.name())).collect();
    let verb_series: Vec<(&str, &HistogramSnapshot)> =
        Verb::ALL.iter().zip(&verb_labels).map(|(v, l)| (l.as_str(), snap.verb(*v))).collect();
    push_summary(
        &mut out,
        "ufilter_request_duration_seconds",
        "Request latency by wire verb.",
        &verb_series,
        1e-9,
    );

    push_summary(
        &mut out,
        "ufilter_queue_wait_seconds",
        "Time a pool job waited before a worker picked it up.",
        &[("", &snap.queue_wait)],
        1e-9,
    );
    push_summary(
        &mut out,
        "ufilter_shard_lock_hold_seconds",
        "Shard-lock acquire plus hold time by kind.",
        &[("kind=\"read\"", &snap.lock_read), ("kind=\"write\"", &snap.lock_write)],
        1e-9,
    );
    push_summary(
        &mut out,
        "ufilter_persist_append_seconds",
        "Durable-log append (write) latency.",
        &[("", &snap.persist_append)],
        1e-9,
    );
    push_summary(
        &mut out,
        "ufilter_persist_fsync_seconds",
        "Durable-log fsync latency.",
        &[("", &snap.persist_fsync)],
        1e-9,
    );
    push_summary(
        &mut out,
        "ufilter_route_candidates",
        "Candidate views per routed fan-out update.",
        &[("", &snap.route_candidates)],
        1.0,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_emits_every_family_even_when_empty() {
        let values = vec![0u64; STATS_FAMILIES.len()];
        let lines = render(&values, &MetricsSnapshot::empty());
        for family in STATS_FAMILIES {
            assert!(
                lines.iter().any(|l| l.starts_with(&format!("{} ", family.family))),
                "missing value line for {}",
                family.family
            );
        }
        for needed in [
            "ufilter_check_stage_duration_seconds{stage=\"star\",quantile=\"0.99\"}",
            "ufilter_request_duration_seconds{verb=\"check\",quantile=\"0.5\"}",
            "ufilter_queue_wait_seconds{quantile=\"0.999\"}",
            "ufilter_shard_lock_hold_seconds{kind=\"write\",quantile=\"0.9\"}",
            "ufilter_persist_fsync_seconds_count",
            "ufilter_route_candidates_sum",
        ] {
            assert!(lines.iter().any(|l| l.starts_with(needed)), "missing {needed}");
        }
        // One line each, and every value token parses as a plain float.
        for line in lines.iter().filter(|l| !l.starts_with('#')) {
            assert!(!line.contains('\n'));
            let token = line.rsplit(' ').next().unwrap();
            assert!(token.parse::<f64>().is_ok(), "unparsable value in {line}");
            assert!(!token.contains('e'), "scientific notation in {line}");
        }
    }

    #[test]
    fn durations_scale_to_seconds_without_scientific_notation() {
        let mut snap = MetricsSnapshot::empty();
        let h = ufilter_core::obs::Histogram::new();
        h.record(1_500); // 1.5 µs
        snap.queue_wait = h.snapshot();
        let values = vec![0u64; STATS_FAMILIES.len()];
        let lines = render(&values, &snap);
        let sum = lines
            .iter()
            .find(|l| l.starts_with("ufilter_queue_wait_seconds_sum"))
            .expect("sum line");
        let token = sum.split(' ').nth(1).unwrap();
        let value: f64 = token.parse().unwrap();
        assert!((value - 1.5e-6).abs() < 1e-12, "{sum}");
        assert!(!token.contains('e'), "no scientific notation: {sum}");
    }
}
