//! The worker-pool executor: N std threads fanning check requests over the
//! shared [`ShardedCatalog`], with deterministic **affinity routing** so
//! probe-cache reuse survives concurrency.
//!
//! Each worker owns a private [`Db`] clone and one long-lived
//! [`ProbeCache`]. Routing is by `hash(view, update text)` — every
//! occurrence of the same update against the same view lands on the same
//! worker, so repeat-heavy streams keep hitting that worker's warm cache
//! (and its materialized `TAB_…` tables stay fresh, because no other view's
//! probes thrash them). Plain per-view routing would cap the usable
//! parallelism at the number of registered views; hashing the update text
//! in keeps the affinity property *and* balances a skewed stream.
//!
//! The pool is check-only: workers never execute translations, so their
//! private databases stay byte-identical to the snapshot taken at pool
//! construction and cached probe results stay valid for the pool's
//! lifetime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use ufilter_core::obs::{self, Stage, Verb};
use ufilter_core::{
    BatchItemReport, BatchReport, BatchStats, CheckReport, FanoutItem, FanoutReport, FanoutStats,
    ProbeCache, Route,
};
use ufilter_rdb::Db;
use ufilter_xquery::parse_update;

use crate::catalog::{affinity_hash, ShardedCatalog};

/// One routed unit of work: a slice of a stream plus the channel to send
/// the worker's partial report back on.
struct Job {
    items: Vec<(usize, String, String)>,
    reply: Sender<(Vec<BatchItemReport>, BatchStats)>,
    /// Dispatch time (None when metrics are disabled); the receiving worker
    /// records the queue wait.
    enqueued: Option<Instant>,
}

/// Monotonic counters the pool aggregates across workers (read by the
/// server's `STATS` command).
#[derive(Debug, Default)]
pub struct PoolStats {
    jobs: AtomicUsize,
    items: AtomicUsize,
    probe_hits: AtomicUsize,
    probe_misses: AtomicUsize,
    fanout_requests: AtomicUsize,
    fanout_candidates: AtomicUsize,
    fanout_pruned: AtomicUsize,
    fanout_fallbacks: AtomicUsize,
}

/// A point-in-time copy of [`PoolStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Jobs dispatched to workers.
    pub jobs: usize,
    /// Stream items checked.
    pub items: usize,
    /// Context probes answered from a worker's warm cache.
    pub probe_hits: usize,
    /// Context probes that had to scan.
    pub probe_misses: usize,
    /// `CHECKALL`/`BATCHALL` updates routed through the relevance index.
    pub fanout_requests: usize,
    /// Candidate (view, update) checks those requests dispatched.
    pub fanout_candidates: usize,
    /// Views the index pruned without running the pipeline.
    pub fanout_pruned: usize,
    /// Requests the index could not classify (checked against every view).
    pub fanout_fallbacks: usize,
}

impl PoolStats {
    fn record(&self, items: usize, stats: &BatchStats) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(items, Ordering::Relaxed);
        self.probe_hits.fetch_add(stats.probe_hits, Ordering::Relaxed);
        self.probe_misses.fetch_add(stats.probe_misses, Ordering::Relaxed);
    }

    fn record_fanout(&self, stats: &FanoutStats) {
        self.fanout_requests.fetch_add(stats.fanout_requests, Ordering::Relaxed);
        self.fanout_candidates.fetch_add(stats.candidates, Ordering::Relaxed);
        self.fanout_pruned.fetch_add(stats.pruned, Ordering::Relaxed);
        self.fanout_fallbacks.fetch_add(stats.fallbacks, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            jobs: self.jobs.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            probe_hits: self.probe_hits.load(Ordering::Relaxed),
            probe_misses: self.probe_misses.load(Ordering::Relaxed),
            fanout_requests: self.fanout_requests.load(Ordering::Relaxed),
            fanout_candidates: self.fanout_candidates.load(Ordering::Relaxed),
            fanout_pruned: self.fanout_pruned.load(Ordering::Relaxed),
            fanout_fallbacks: self.fanout_fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// The worker-pool executor. Construct once, share behind an `Arc`, call
/// [`check_stream`](CheckPool::check_stream) from any number of threads.
pub struct CheckPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
    catalog: Arc<ShardedCatalog>,
}

impl CheckPool {
    /// Spawn `workers` (at least 1) threads, each owning a clone of `db`
    /// and an empty probe cache, all sharing `catalog`.
    pub fn new(catalog: Arc<ShardedCatalog>, db: &Db, workers: usize) -> CheckPool {
        let workers = workers.max(1);
        let stats = Arc::new(PoolStats::default());
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job>();
            let catalog = Arc::clone(&catalog);
            let stats = Arc::clone(&stats);
            let mut db = db.clone();
            handles.push(std::thread::spawn(move || worker_main(catalog, &mut db, rx, stats)));
            senders.push(tx);
        }
        CheckPool { senders, handles, stats, catalog }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The worker a `(view, update text)` pair is routed to.
    pub fn route(&self, view: &str, text: &str) -> usize {
        (affinity_hash(&[view, text]) % self.senders.len() as u64) as usize
    }

    /// Counters aggregated across all workers.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.stats.snapshot()
    }

    /// Check a whole stream: partition by affinity, fan the partitions out,
    /// and reassemble per-item reports in input order. Per-item outcomes
    /// are byte-identical (in wire form) to a single-threaded
    /// [`ShardedCatalog::check_batch_text`] of the same stream — routing
    /// only decides which worker's cache absorbs which probes.
    pub fn check_stream(&self, items: &[(String, String)]) -> BatchReport {
        let span = obs::clock();
        let report = self.stream_inner(items);
        obs::verb_elapsed(Verb::Batch, span);
        report
    }

    fn stream_inner(&self, items: &[(String, String)]) -> BatchReport {
        let mut per_worker: Vec<Vec<(usize, String, String)>> =
            vec![Vec::new(); self.senders.len()];
        for (i, (view, text)) in items.iter().enumerate() {
            per_worker[self.route(view, text)].push((i, view.clone(), text.clone()));
        }
        let (reply, inbox): (Sender<_>, Receiver<_>) = channel();
        let mut expected = 0;
        for (w, job_items) in per_worker.into_iter().enumerate() {
            if job_items.is_empty() {
                continue;
            }
            expected += 1;
            self.senders[w]
                .send(Job { items: job_items, reply: reply.clone(), enqueued: obs::clock() })
                .expect("worker thread alive while pool exists");
        }
        drop(reply);
        let mut out: Vec<BatchItemReport> = Vec::with_capacity(items.len());
        let mut stats = BatchStats::default();
        for _ in 0..expected {
            let (part, part_stats) = inbox.recv().expect("worker replies before dropping job");
            out.extend(part);
            stats.merge(&part_stats);
        }
        out.sort_by_key(|i| i.index);
        BatchReport { items: out, stats }
    }

    /// Check a single update (a one-item [`check_stream`](Self::check_stream)).
    pub fn check_one(&self, view: &str, text: &str) -> Vec<CheckReport> {
        let span = obs::clock();
        let mut report =
            self.stream_inner(std::slice::from_ref(&(view.to_string(), text.to_string())));
        obs::verb_elapsed(Verb::Check, span);
        report.items.remove(0).reports
    }

    /// Catalog-wide fan-out for one update: route it through the shards'
    /// relevance indexes, then dispatch the surviving (candidate view,
    /// update) pairs across the workers by the usual affinity hash. Items
    /// come back in candidate-name order with outcomes byte-identical (in
    /// wire form) to a per-view `CHECK` of each candidate.
    pub fn check_all(&self, update_text: &str) -> FanoutReport {
        let span = obs::clock();
        let report = self.fan_out_inner(std::slice::from_ref(&update_text.to_string()));
        obs::verb_elapsed(Verb::CheckAll, span);
        report
    }

    /// [`check_all`](Self::check_all) over a stream of updates (the
    /// `BATCHALL` verb): one routing pass, then a single fan-out of every
    /// surviving pair so affinity routing and warm caches amortize across
    /// the whole stream. Items are sorted by `(update index, view name)`.
    ///
    /// Candidates ship to workers as raw `(view, text)` pairs, so a text
    /// is re-parsed by each worker partition that receives it (the batch
    /// engine dedupes within a partition) — bounded by the worker count,
    /// not the candidate count; carrying parsed statements through the
    /// job channel is not worth the structural cost at today's sizes.
    ///
    /// Routing and dispatch are two steps, each individually consistent
    /// but not atomic together: a view dropped concurrently between them
    /// yields the same per-item "no view named …" report a direct `CHECK`
    /// of that view would produce at dispatch time (and a concurrently
    /// *added* view may be missed by this request — it was not registered
    /// when routing ran). Holding every shard lock across the pipeline
    /// run would serialize the whole service against its slowest check,
    /// so the catalog deliberately does not offer that.
    pub fn check_all_batch(&self, updates: &[String]) -> FanoutReport {
        let span = obs::clock();
        let report = self.fan_out_inner(updates);
        obs::verb_elapsed(Verb::BatchAll, span);
        report
    }

    fn fan_out_inner(&self, updates: &[String]) -> FanoutReport {
        let mut fanout = FanoutStats { views: self.catalog.len(), ..FanoutStats::default() };
        // (update index, candidate view) for every surviving pair. Updates
        // that fail to parse are deliberately fanned out to *all* views:
        // the batch engine reproduces the same per-view malformed report
        // the brute-force loop yields, so outcomes stay byte-identical.
        let mut work: Vec<(usize, String)> = Vec::new();
        for (ui, text) in updates.iter().enumerate() {
            let span = obs::clock();
            let parsed = parse_update(text);
            obs::stage_elapsed(Stage::Parse, span);
            match parsed {
                Ok(u) => {
                    let span = obs::clock();
                    let route = self.catalog.route_update(&u);
                    obs::stage_elapsed(Stage::Route, span);
                    obs::record_route_candidates(route.candidates.len());
                    fanout.absorb(&route);
                    work.extend(route.candidates.into_iter().map(|v| (ui, v)));
                }
                Err(_) => {
                    let all: Vec<String> =
                        self.catalog.list().into_iter().map(|v| v.name).collect();
                    fanout.absorb(&Route {
                        views: all.len(),
                        candidates: all.clone(),
                        fallback: true,
                        ..Route::default()
                    });
                    work.extend(all.into_iter().map(|v| (ui, v)));
                }
            }
        }
        self.stats.record_fanout(&fanout);
        let stream: Vec<(String, String)> =
            work.iter().map(|(ui, view)| (view.clone(), updates[*ui].clone())).collect();
        let batch = self.stream_inner(&stream);
        let mut items: Vec<FanoutItem> = batch
            .items
            .into_iter()
            .map(|item| {
                let (ui, view) = &work[item.index];
                FanoutItem { update: *ui, view: view.clone(), reports: item.reports }
            })
            .collect();
        items.sort_by(|a, b| (a.update, a.view.as_str()).cmp(&(b.update, b.view.as_str())));
        FanoutReport { items, fanout, batch: batch.stats }
    }
}

impl Drop for CheckPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join so no worker
        // outlives the pool (and any panic surfaces here).
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(
    catalog: Arc<ShardedCatalog>,
    db: &mut Db,
    rx: Receiver<Job>,
    stats: Arc<PoolStats>,
) {
    // One cache for the worker's lifetime: probe results and TAB_ freshness
    // both refer to this worker's private db, so sharing the cache across
    // jobs (and across views routed here) is sound.
    let mut cache = ProbeCache::new();
    while let Ok(job) = rx.recv() {
        obs::queue_wait_elapsed(job.enqueued);
        let borrowed: Vec<(usize, &str, &str)> =
            job.items.iter().map(|(i, v, t)| (*i, v.as_str(), t.as_str())).collect();
        let (items, batch_stats) = catalog.check_indexed(&borrowed, db, &mut cache);
        stats.record(items.len(), &batch_stats);
        // A dropped receiver (caller gave up) is not a worker error.
        let _ = job.reply.send((items, batch_stats));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufilter_core::bookdemo;
    use ufilter_core::wire::encode_outcome;

    fn book_pool(workers: usize) -> (CheckPool, Arc<ShardedCatalog>) {
        let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 4));
        catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
        let db = bookdemo::book_db();
        (CheckPool::new(Arc::clone(&catalog), &db, workers), catalog)
    }

    fn wire_lines(report: &BatchReport) -> Vec<String> {
        report
            .items
            .iter()
            .flat_map(|i| i.reports.iter().map(|r| encode_outcome(&r.outcome)))
            .collect()
    }

    #[test]
    fn pool_outcomes_match_single_threaded_batch() {
        let stream: Vec<(String, String)> =
            [bookdemo::U8, bookdemo::U10, bookdemo::U13, bookdemo::U8, bookdemo::U5]
                .iter()
                .map(|u| ("books".to_string(), u.to_string()))
                .collect();
        for workers in [1, 2, 4] {
            let (pool, catalog) = book_pool(workers);
            let mut db = bookdemo::book_db();
            let serial = catalog.check_batch_text(&stream, &mut db);
            let pooled = pool.check_stream(&stream);
            assert_eq!(wire_lines(&serial), wire_lines(&pooled), "workers={workers}");
            // Input order survives the fan-out.
            let indices: Vec<usize> = pooled.items.iter().map(|i| i.index).collect();
            assert_eq!(indices, (0..stream.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn affinity_routing_is_deterministic() {
        let (pool, _catalog) = book_pool(4);
        let a = pool.route("books", bookdemo::U8);
        assert_eq!(a, pool.route("books", bookdemo::U8));
        // Stats accumulate across calls.
        pool.check_one("books", bookdemo::U8);
        pool.check_one("books", bookdemo::U8);
        let s = pool.stats();
        assert_eq!(s.items, 2);
        assert!(s.probe_hits >= 1, "second identical check hits the warm cache: {s:?}");
    }

    #[test]
    fn check_all_routes_to_candidates_and_matches_per_view_checks() {
        let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 4));
        catalog.add("z_books", bookdemo::BOOK_VIEW).unwrap();
        catalog.add("a_books", bookdemo::BOOK_VIEW).unwrap();
        let db = bookdemo::book_db();
        let pool = CheckPool::new(Arc::clone(&catalog), &db, 2);
        let report = pool.check_all(bookdemo::U8);
        // Both registrations are candidates, in name order.
        let views: Vec<&str> = report.items.iter().map(|i| i.view.as_str()).collect();
        assert_eq!(views, ["a_books", "z_books"]);
        for item in &report.items {
            let direct = pool.check_one(&item.view, bookdemo::U8);
            assert_eq!(
                item.reports.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>(),
                direct.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>(),
                "{}: fan-out diverged from a direct CHECK",
                item.view
            );
        }
        let s = pool.stats();
        assert_eq!(s.fanout_requests, 1);
        assert_eq!(s.fanout_candidates, 2);
        assert_eq!(s.fanout_fallbacks, 0);
    }

    #[test]
    fn unparsable_checkall_falls_back_to_every_view() {
        let (pool, _catalog) = book_pool(2);
        let report = pool.check_all("this is not an update");
        assert_eq!(report.items.len(), 1, "one registered view, one malformed report");
        assert_eq!(report.fanout.fallbacks, 1);
        assert!(
            encode_outcome(&report.items[0].reports[0].outcome).starts_with("invalid malformed"),
            "{:?}",
            report.items[0].reports[0].outcome
        );
    }

    #[test]
    fn warm_cache_survives_across_requests() {
        let (pool, _catalog) = book_pool(2);
        let first = pool.check_one("books", bookdemo::U8);
        let hits_after_first = pool.stats().probe_hits;
        let second = pool.check_one("books", bookdemo::U8);
        assert_eq!(
            first.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>(),
            second.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>(),
        );
        assert!(pool.stats().probe_hits > hits_after_first, "repeat probe served from cache");
    }
}
