//! Concurrency stress: N threads hammer one [`ShardedCatalog`] with a mix
//! of single checks, batch checks, catalog add/drop churn and guarded DDL,
//! then every thread's per-operation outcomes are compared against a
//! single-threaded replay of the same schedule.
//!
//! The schedules are designed so each operation's observable outcome is
//! independent of cross-thread interleaving (threads own disjoint view
//! names and scratch relations, and the only shared-relation DDL is one
//! that is *always* rejected), which is exactly the determinism the
//! service's locking must preserve: concurrency may change who waits, but
//! never what anything returns.

use std::sync::Arc;

use ufilter_core::bookdemo;
use ufilter_core::wire::encode_outcome;
use ufilter_rdb::Db;
use ufilter_service::ShardedCatalog;

const THREADS: usize = 4;
const ITERS: usize = 10;

/// Run one thread's deterministic schedule, returning a flat log of
/// observable outcomes (one string per observation).
fn run_schedule(t: usize, catalog: &ShardedCatalog, db: &mut Db) -> Vec<String> {
    let va = format!("stress{t}_a");
    let vb = format!("stress{t}_b");
    let scratch = format!("stress_scratch{t}");
    let mut log = Vec::new();
    let mut note = |tag: &str, s: String| log.push(format!("{tag}: {s}"));

    for i in 0..ITERS {
        // Catalog add (the duplicate-add in later iterations exercises the
        // error path deterministically: the name is always free here).
        let added = catalog.add(&va, bookdemo::BOOK_VIEW).expect("own name is free");
        note("add_a", format!("{} reads {}", added.name, added.relations.join(",")));
        catalog.add(&vb, bookdemo::BOOK_VIEW).expect("own name is free");
        note("add_dup", format!("{:?}", catalog.add(&va, bookdemo::BOOK_VIEW).is_err()));

        // Single check + a mixed batch across both of this thread's views.
        let single = catalog.check_batch_text(&[(va.clone(), bookdemo::U8.to_string())], db);
        note("check", encode_outcome(&single.items[0].reports[0].outcome));
        let stream: Vec<(String, String)> = vec![
            (va.clone(), bookdemo::U10.to_string()),
            (vb.clone(), bookdemo::U13.to_string()),
            (va.clone(), bookdemo::U8.to_string()),
        ];
        let batch = catalog.check_batch_text(&stream, db);
        for item in &batch.items {
            for r in &item.reports {
                note("batch", format!("{} {}", item.index, encode_outcome(&r.outcome)));
            }
        }

        // Guarded DDL. Dropping `review` must always be RESTRICTed (this
        // thread's own views read it, whatever the others are doing);
        // creating/dropping the thread-private scratch table must always
        // succeed. Error text is not compared — it may name other threads'
        // views — only the accept/reject decision is.
        note(
            "ddl_review",
            format!("{}", catalog.execute_guarded(db, "DROP TABLE review").is_err()),
        );
        let create = format!("CREATE TABLE {scratch} (id INTEGER)");
        note("ddl_create", format!("{}", catalog.execute_guarded(db, &create).is_ok()));
        let drop = format!("DROP TABLE {scratch}");
        note("ddl_drop", format!("{}", catalog.execute_guarded(db, &drop).is_ok()));

        // Churn: unregister both views; iteration i+1 re-adds them.
        catalog.drop_view(&va).expect("registered above");
        catalog.drop_view(&vb).expect("registered above");
        note("drop_gone", format!("{:?}", catalog.drop_view(&va).is_err()));
        note("iter", i.to_string());
    }
    log
}

#[test]
fn concurrent_schedules_match_single_threaded_replay() {
    // Concurrent run: THREADS threads over one sharded catalog, each with
    // its own database clone (the service's worker model).
    let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 4));
    let base = bookdemo::book_db();
    let concurrent: Vec<Vec<String>> = {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let catalog = Arc::clone(&catalog);
                let mut db = base.clone();
                std::thread::spawn(move || run_schedule(t, &catalog, &mut db))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no thread panicked")).collect()
    };
    assert!(catalog.is_empty(), "every thread cleaned up its views");

    // Single-threaded replay of the identical schedules, thread-major.
    let replay_catalog = ShardedCatalog::new(bookdemo::book_schema(), 4);
    let replayed: Vec<Vec<String>> = (0..THREADS)
        .map(|t| {
            let mut db = base.clone();
            run_schedule(t, &replay_catalog, &mut db)
        })
        .collect();

    for t in 0..THREADS {
        assert_eq!(
            concurrent[t], replayed[t],
            "thread {t}: concurrent outcomes diverge from serial replay"
        );
    }
}

#[test]
fn concurrent_checks_against_fixed_catalog_are_stable() {
    // Read-mostly path: no catalog churn at all, many threads checking the
    // same views; all must see identical wire outcomes.
    let catalog = Arc::new(ShardedCatalog::new(bookdemo::book_schema(), 2));
    catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
    let base = bookdemo::book_db();
    let expected: Vec<String> = {
        let mut db = base.clone();
        let stream: Vec<(String, String)> = [bookdemo::U8, bookdemo::U10, bookdemo::U13]
            .iter()
            .map(|u| ("books".to_string(), u.to_string()))
            .collect();
        catalog
            .check_batch_text(&stream, &mut db)
            .items
            .iter()
            .flat_map(|i| i.reports.iter().map(|r| encode_outcome(&r.outcome)))
            .collect()
    };
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let catalog = Arc::clone(&catalog);
            let mut db = base.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let stream: Vec<(String, String)> =
                        [bookdemo::U8, bookdemo::U10, bookdemo::U13]
                            .iter()
                            .map(|u| ("books".to_string(), u.to_string()))
                            .collect();
                    let got: Vec<String> = catalog
                        .check_batch_text(&stream, &mut db)
                        .items
                        .iter()
                        .flat_map(|i| i.reports.iter().map(|r| encode_outcome(&r.outcome)))
                        .collect();
                    assert_eq!(got, expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no checker thread panicked");
    }
}
