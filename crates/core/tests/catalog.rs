//! ViewCatalog semantics: registration, compile-once caching, the DDL
//! RESTRICT guard, and batch-vs-single-shot outcome equivalence.

use ufilter_core::bookdemo;
use ufilter_core::catalog::{CatalogError, ViewCatalog};
use ufilter_core::CheckOutcome;
use ufilter_rdb::DeletePolicy;
use ufilter_tpch::{generate, stream, stream_views, Scale, StreamSpec};

fn book_catalog() -> ViewCatalog {
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    c.add("books", bookdemo::BOOK_VIEW).expect("BookView registers");
    c
}

#[test]
fn duplicate_registration_rejected() {
    let mut c = book_catalog();
    match c.add("books", bookdemo::BOOK_VIEW) {
        Err(CatalogError::DuplicateView { name }) => assert_eq!(name, "books"),
        other => panic!("expected DuplicateView, got {other:?}"),
    }
    assert_eq!(c.len(), 1);
}

#[test]
fn compile_cache_hits_on_identical_text_under_another_name() {
    let mut c = book_catalog();
    let info = c.add("books2", bookdemo::BOOK_VIEW).unwrap();
    assert!(info.cached, "second registration of identical text reuses the artifact");
    assert_eq!(c.compile_cache_hits(), 1);
}

#[test]
fn compile_cache_survives_drop_and_ignores_whitespace() {
    let mut c = book_catalog();
    c.drop_view("books").unwrap();
    // Same query, different formatting: still a cache hit.
    let reformatted = bookdemo::BOOK_VIEW.split_whitespace().collect::<Vec<_>>().join("  \n ");
    let info = c.add("books", &reformatted).unwrap();
    assert!(info.cached, "canonicalization should defeat formatting changes");
    assert_eq!(c.compile_cache_hits(), 1);
}

#[test]
fn quoted_literals_are_not_canonicalized() {
    // Changing whitespace *inside* a string literal is a different view.
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    let a = r#"<V>FOR $b IN document("default.xml")/book/row WHERE $b/title = "a b" RETURN {<book>$b/bookid</book>}</V>"#;
    let b = r#"<V>FOR $b IN document("default.xml")/book/row WHERE $b/title = "a  b" RETURN {<book>$b/bookid</book>}</V>"#;
    c.add("va", a).unwrap();
    let info = c.add("vb", b).unwrap();
    assert!(!info.cached, "literal content differs; must recompile");
}

#[test]
fn compile_failure_is_structured() {
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    match c.add("bad", "this is not a view query") {
        Err(CatalogError::Compile { name, error }) => {
            assert_eq!(name, "bad");
            assert_eq!(error.cause(), "parse");
        }
        other => panic!("expected Compile error, got {other:?}"),
    }
    assert!(c.is_empty());
}

#[test]
fn ddl_on_relation_with_dependent_views_is_rejected() {
    let mut c = book_catalog();
    let mut db = bookdemo::book_db();
    match c.execute_guarded(&mut db, "DROP TABLE review") {
        Err(CatalogError::DependentViews { relation, views }) => {
            assert_eq!(relation, "review");
            assert_eq!(views, vec!["books".to_string()]);
        }
        other => panic!("expected DependentViews, got {other:?}"),
    }
    // The table is untouched.
    assert_eq!(db.row_count("review"), 2);
}

#[test]
fn ddl_allowed_after_dependent_view_dropped() {
    let mut c = book_catalog();
    let mut db = bookdemo::book_db();
    c.drop_view("books").unwrap();
    // review has no FK referrers, so the engine accepts the drop once the
    // catalog stops guarding it.
    c.execute_guarded(&mut db, "DROP TABLE review").expect("no dependents left");
    assert!(db.schema().table("review").is_none());
}

#[test]
fn non_ddl_statements_pass_the_guard() {
    let mut c = book_catalog();
    let mut db = bookdemo::book_db();
    let out = c
        .execute_guarded(&mut db, "INSERT INTO review VALUES ('98003', '009', 'ok', 'Ann')")
        .expect("DML is not guarded");
    assert_eq!(out.affected, 1);
}

#[test]
fn dependents_of_tracks_view_relations() {
    let c = book_catalog();
    assert_eq!(c.dependents_of("BOOK"), vec!["books".to_string()]);
    assert!(c.dependents_of("nation").is_empty());
}

/// The acceptance bar: a mixed batch's per-update outcomes must be exactly
/// the single-shot `check` outcomes, fixture by fixture.
#[test]
fn mixed_batch_matches_single_shot_on_book_fixtures() {
    let c = book_catalog();
    let filter = bookdemo::book_filter();

    // u8 (unconditionally translatable), u10 (untranslatable), u13
    // (translatable insert), plus a repeat of u8 to exercise the caches.
    let stream: Vec<(String, String)> = [bookdemo::U8, bookdemo::U10, bookdemo::U13, bookdemo::U8]
        .iter()
        .map(|u| ("books".to_string(), u.to_string()))
        .collect();

    let mut batch_db = bookdemo::book_db();
    let batch = c.check_batch_text(&stream, &mut batch_db);
    assert_eq!(batch.items.len(), 4);
    assert_eq!(batch.stats.parse_hits, 1, "the repeated u8 text parses once");
    assert!(batch.stats.probe_hits > 0, "the repeated u8 probe comes from cache");

    for (i, (_, text)) in stream.iter().enumerate() {
        let mut single_db = bookdemo::book_db();
        let single = filter.check(text, &mut single_db);
        let batched = &batch.items[i];
        assert_eq!(batched.index, i);
        assert_eq!(single.len(), batched.reports.len(), "item {i}: action count");
        for (s, b) in single.iter().zip(&batched.reports) {
            assert_eq!(s.outcome, b.outcome, "item {i}: outcome diverged");
        }
    }
}

/// Unknown views and unparsable updates degrade to per-item invalid
/// reports; the rest of the batch is unaffected.
#[test]
fn bad_items_do_not_abort_the_batch() {
    let c = book_catalog();
    let mut db = bookdemo::book_db();
    let stream = vec![
        ("nosuch".to_string(), bookdemo::U8.to_string()),
        ("books".to_string(), "FOR gibberish".to_string()),
        ("books".to_string(), bookdemo::U8.to_string()),
    ];
    let batch = c.check_batch_text(&stream, &mut db);
    assert!(matches!(batch.items[0].reports[0].outcome, CheckOutcome::Invalid(_)));
    assert!(matches!(batch.items[1].reports[0].outcome, CheckOutcome::Invalid(_)));
    assert!(batch.items[2].reports[0].outcome.is_translatable());
}

/// Batch outcomes on a generated TPC-H stream are identical to per-update
/// single-shot checks across all three catalog views.
#[test]
fn tpch_stream_batch_matches_single_shot() {
    let scale = Scale::tiny();
    let db = generate(scale, 11, DeletePolicy::Cascade);
    let mut catalog = ViewCatalog::new(db.schema().clone());
    for (name, text) in stream_views() {
        catalog.add(name, text).unwrap();
    }

    let s = stream(StreamSpec { len: 40, distinct_keys: 5 }, scale, 11);
    let mut batch_db = db.clone();
    let batch = catalog.check_batch_text(&s, &mut batch_db);
    assert_eq!(batch.items.len(), s.len());
    assert!(batch.stats.probe_hits > 0, "a 5-key pool must produce probe reuse");
    assert!(batch.stats.target_groups < s.len(), "grouping must collapse targets");

    for (i, (view, text)) in s.iter().enumerate() {
        let mut single_db = db.clone();
        let single = catalog.get(view).unwrap().check(text, &mut single_db);
        let batched = &batch.items[i];
        assert_eq!(single.len(), batched.reports.len(), "item {i}: action count");
        for (sr, br) in single.iter().zip(&batched.reports) {
            assert_eq!(sr.outcome, br.outcome, "item {i} ({view}): outcome diverged\n{text}");
        }
    }
}

/// list() reports names in order with their dependency sets.
#[test]
fn list_reports_relations() {
    let mut c = book_catalog();
    c.add("books2", bookdemo::BOOK_VIEW).unwrap();
    let infos = c.list();
    assert_eq!(infos.len(), 2);
    assert_eq!(infos[0].name, "books");
    assert!(infos[0].relations.iter().any(|r| r == "book"));
    assert!(infos[1].cached);
}

/// A `with_config` change must never be served a cache artifact compiled
/// under a different mode/strategy.
#[test]
fn compile_cache_is_config_aware() {
    use ufilter_core::{StarMode, Strategy, UFilterConfig};
    let mut c = book_catalog();
    let mut strict = std::mem::replace(&mut c, ViewCatalog::new(bookdemo::book_schema()))
        .with_config(UFilterConfig { mode: StarMode::Strict, strategy: Strategy::Hybrid });
    let info = strict.add("books2", bookdemo::BOOK_VIEW).unwrap();
    assert!(!info.cached, "different config must recompile");
    assert_eq!(strict.get("books2").unwrap().config.mode, StarMode::Strict);
    // Same config again: now it hits.
    let info = strict.add("books3", bookdemo::BOOK_VIEW).unwrap();
    assert!(info.cached);
}

/// After guarded DDL goes through, the catalog compiles later views against
/// the *current* schema, not the snapshot taken at construction.
#[test]
fn execute_guarded_refreshes_the_schema_snapshot() {
    let mut c = book_catalog();
    let mut db = bookdemo::book_db();
    c.execute_guarded(
        &mut db,
        "CREATE TABLE extra( id VARCHAR2(5), CONSTRAINTS EPK PRIMARYKEY (id))",
    )
    .expect("new table passes the guard");
    let v = r#"<V>FOR $x IN document("default.xml")/extra/row RETURN {<e>$x/id</e>}</V>"#;
    let info = c.add("vextra", v).expect("view over the new relation compiles");
    assert_eq!(info.relations, vec!["extra".to_string()]);
    assert_eq!(c.dependents_of("extra"), vec!["vextra".to_string()]);
}

/// The determinism guarantee: every name list the catalog returns —
/// `list`, `dependents_of`, `relevant_views` — is ascending-name-sorted,
/// regardless of registration order.
#[test]
fn name_lists_are_sorted_regardless_of_registration_order() {
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    for name in ["zeta", "alpha", "mid", "beta"] {
        c.add(name, bookdemo::BOOK_VIEW).unwrap();
    }
    let expected = ["alpha", "beta", "mid", "zeta"];
    let listed: Vec<String> = c.list().into_iter().map(|v| v.name).collect();
    assert_eq!(listed, expected);
    assert_eq!(c.dependents_of("book"), expected);
    assert_eq!(c.dependents_of("REVIEW"), expected, "dependency lookup is case-insensitive");
    let u = ufilter_xquery::parse_update(bookdemo::U8).unwrap();
    assert_eq!(c.relevant_views(&u), expected);
    // Dropping from the middle keeps the rest sorted.
    c.drop_view("beta").unwrap();
    assert_eq!(c.dependents_of("book"), ["alpha", "mid", "zeta"]);
    assert_eq!(c.relevant_views(&u), ["alpha", "mid", "zeta"]);
}

/// `check_all` runs the identical pipeline on candidates: its wire
/// outcomes per candidate equal a direct per-view `check`.
#[test]
fn check_all_candidates_match_direct_checks() {
    use ufilter_core::wire::encode_outcome;
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    c.add("books", bookdemo::BOOK_VIEW).unwrap();
    for (name, text) in bookdemo::book_view_variants(6) {
        c.add(&name, &text).unwrap();
    }
    for (_, update) in bookdemo::all_updates() {
        let mut db = bookdemo::book_db();
        let report = c.check_all(update, &mut db);
        for item in &report.items {
            let mut db2 = bookdemo::book_db();
            let direct = c.get(&item.view).unwrap().check(update, &mut db2);
            assert_eq!(
                item.reports.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>(),
                direct.iter().map(|r| encode_outcome(&r.outcome)).collect::<Vec<_>>(),
                "{}: fan-out diverged from a direct check",
                item.view
            );
        }
        assert_eq!(
            report.fanout.candidates + report.fanout.pruned,
            report.fanout.views * report.fanout.fanout_requests,
            "candidates + pruned must account for every view"
        );
    }
}

/// `check_batch` must stay side-effect-free even under the hybrid strategy
/// with the caller already holding a transaction (the one case where the
/// strategy's execute-and-rollback trick cannot run in place).
#[test]
fn hybrid_check_batch_inside_caller_transaction_is_side_effect_free() {
    use ufilter_core::{Strategy, UFilterConfig};
    let mut c = ViewCatalog::new(bookdemo::book_schema())
        .with_config(UFilterConfig { strategy: Strategy::Hybrid, ..Default::default() });
    c.add("books", bookdemo::BOOK_VIEW).unwrap();

    let mut db = bookdemo::book_db();
    let before = db.dump();
    db.begin().unwrap();
    let stream = vec![
        ("books".to_string(), bookdemo::U8.to_string()),
        ("books".to_string(), bookdemo::U13.to_string()),
    ];
    let batch = c.check_batch_text(&stream, &mut db);
    assert!(batch.items[0].reports[0].outcome.is_translatable());
    assert!(batch.items[1].reports[0].outcome.is_translatable());
    db.commit().unwrap();
    assert_eq!(db.dump(), before, "check-only batch must not mutate the database");
}

/// After guarded DDL changes the schema, the compile-once cache must not
/// resurrect artifacts compiled against the old schema.
#[test]
fn compile_cache_cleared_by_guarded_ddl() {
    let mut c = book_catalog();
    let mut db = bookdemo::book_db();
    c.drop_view("books").unwrap();
    c.execute_guarded(&mut db, "DROP TABLE review").expect("no dependents");
    // Re-adding the same text must recompile against the current schema
    // and fail (BookView reads the dropped `review` relation) — not hit
    // the stale cache and register a view over a missing table.
    match c.add("books", bookdemo::BOOK_VIEW) {
        Err(CatalogError::Compile { error, .. }) => assert_eq!(error.cause(), "asg"),
        other => panic!("expected a Compile error against the new schema, got {other:?}"),
    }
}

/// Comments lex as whitespace, so two views differing only in `(: … :)`
/// comments are the same view — one compile-cache entry, not two.
#[test]
fn comments_share_compile_cache_entries() {
    let mut c = book_catalog();
    let commented = format!(
        "(: leading (: nested :) comment :)\n{}\n(: trailing :)",
        bookdemo::BOOK_VIEW.replace("RETURN{", "(: inline, (: nested :) before return :)RETURN{")
    );
    let info = c.add("books_commented", &commented).unwrap();
    assert!(info.cached, "comment-only differences must hit the compile cache");
    assert_eq!(c.compile_cache_hits(), 1);
}

/// `(:` inside a string literal is data, not a comment opener: stripping
/// it would silently change the view (and key two different views alike).
#[test]
fn comment_markers_inside_literals_are_data() {
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    let a = r#"<V>FOR $b IN document("default.xml")/book/row WHERE $b/title = "x" RETURN {<book>$b/bookid</book>}</V>"#;
    let b = r#"<V>FOR $b IN document("default.xml")/book/row WHERE $b/title = "(: x :)" RETURN {<book>$b/bookid</book>}</V>"#;
    c.add("va", a).unwrap();
    let info = c.add("vb", b).unwrap();
    assert!(!info.cached, "literal content differs; must recompile");
    // And the literal-bearing view still compiles (the "comment" survived
    // stripping to reach the parser as a string).
    assert_eq!(c.len(), 2);
}

/// Regression: a probe result cached before a schema change must not
/// answer a probe issued after it. Scenario: check (cache fills) → drop
/// view → guarded DDL drops and re-creates the base tables empty → re-add
/// view → re-check the same update with the SAME cache. Fresh truth: the
/// context element no longer exists (tables are empty), so the update is
/// untranslatable at the data-context step; a stale cache would replay the
/// old probe rows and accept it.
#[test]
fn stale_probe_cache_does_not_survive_schema_change() {
    use ufilter_core::ProbeCache;
    let mut c = book_catalog();
    let mut db = bookdemo::book_db();
    let mut cache = ProbeCache::new();
    let stream = vec![("books".to_string(), bookdemo::U8.to_string())];

    let first = c.check_batch_text_with_cache(&stream, &mut db, &mut cache);
    assert!(first.items[0].reports[0].outcome.is_translatable(), "u8 accepted on real data");

    // Tear the world down: unguard, drop (FK leaves first), re-create empty.
    c.drop_view("books").unwrap();
    for t in ["review", "book", "publisher"] {
        c.execute_guarded(&mut db, &format!("DROP TABLE {t}")).expect("unguarded drop");
    }
    for stmt in bookdemo::ddl("CASCADE") {
        c.execute_guarded(&mut db, &stmt).expect("re-create");
    }
    c.add("books", bookdemo::BOOK_VIEW).expect("recompiles against the new schema");

    let second = c.check_batch_text_with_cache(&stream, &mut db, &mut cache);
    let outcome = &second.items[0].reports[0].outcome;
    assert!(
        matches!(
            outcome,
            CheckOutcome::Untranslatable { step: ufilter_core::CheckStep::DataContext, .. }
        ),
        "stale probe cache survived the schema change: {outcome:?}"
    );
    // And the outcome equals a fresh-cache check, not merely "different".
    let fresh = c.check_batch_text_with_cache(&stream, &mut db, &mut ProbeCache::new());
    assert_eq!(
        ufilter_core::wire::encode_outcome(outcome),
        ufilter_core::wire::encode_outcome(&fresh.items[0].reports[0].outcome)
    );
}

/// The non-injective classification never reaches Step 3, so it can never
/// populate (or consult) the probe cache — there is no staleness channel
/// through aggregate-region outcomes.
#[test]
fn aggregate_classification_bypasses_the_probe_cache() {
    use ufilter_core::ProbeCache;
    let mut c = ViewCatalog::new(bookdemo::book_schema());
    c.add(
        "agg",
        "<V> FOR $b IN document(\"d\")/book/row \
         RETURN { <b> $b/bookid, <n> count(document(\"d\")/review/row) </n> </b> } </V>",
    )
    .expect("aggregate view compiles");
    let mut db = bookdemo::book_db();
    let mut cache = ProbeCache::new();
    let stream = vec![(
        "agg".to_string(),
        r#"FOR $b IN document("V.xml")/b UPDATE $b { DELETE $b }"#.to_string(),
    )];
    let report = c.check_batch_text_with_cache(&stream, &mut db, &mut cache);
    assert!(matches!(
        &report.items[0].reports[0].outcome,
        CheckOutcome::Untranslatable { step: ufilter_core::CheckStep::NonInjective, .. }
    ));
    assert_eq!(cache.hits() + cache.misses(), 0, "no probe ran for an aggregate rejection");
}

/// Malformed text (dangling `(:`) must never canonicalize down to a valid
/// view's cache key: it has to miss the cache and fail compilation.
#[test]
fn unterminated_comment_never_shares_a_cache_key() {
    let mut c = book_catalog();
    let malformed = format!("{} (: dangling", bookdemo::BOOK_VIEW);
    match c.add("broken", &malformed) {
        Err(CatalogError::Compile { name, .. }) => assert_eq!(name, "broken"),
        other => panic!("malformed view hit the compile cache: {other:?}"),
    }
    assert_eq!(c.len(), 1);
    assert_eq!(c.compile_cache_hits(), 0);
}
