//! The thirteen updates of Figs. 4 and 10 must classify exactly as the
//! paper says, and every accepted update must satisfy Definition 1's
//! rectangle rule after translation.

use ufilter_core::bookdemo::{self, all_updates};
use ufilter_core::{
    apply_and_verify, CheckOutcome, CheckStep, Condition, RectangleVerdict, StarMode, Strategy,
    UFilter, UFilterConfig,
};

fn check(update: &str) -> CheckOutcome {
    let filter = bookdemo::book_filter();
    let mut db = bookdemo::book_db();
    let reports = filter.check(update, &mut db);
    assert_eq!(reports.len(), 1, "single-action update");
    reports.into_iter().next().unwrap().outcome
}

#[test]
fn u1_invalid_check_and_not_null() {
    // Example 1: empty title (NOT NULL) and price 0.00 (CHECK).
    let out = check(bookdemo::U1);
    assert!(out.is_invalid(), "u1 must be invalid, got: {out}");
}

#[test]
fn u2_valid_but_untranslatable_at_star() {
    // Example 2: deleting a publisher under a book → view side effect.
    let out = check(bookdemo::U2);
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::Star),
        other => panic!("u2 must be untranslatable at Step 2, got: {other}"),
    }
}

#[test]
fn u3_untranslatable_at_context_check() {
    // Example 3: the book "DB2 Universal Database" is not in the view.
    let out = check(bookdemo::U3);
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::DataContext),
        other => panic!("u3 must fail the context check, got: {other}"),
    }
}

#[test]
fn u4_untranslatable_at_point_check_refined() {
    // Example 3 / §6.2: book key (98001) already exists.
    let out = check(bookdemo::U4);
    match out {
        CheckOutcome::Untranslatable { step, reason } => {
            assert_eq!(step, CheckStep::DataPoint, "u4 dies at the point check: {reason}");
        }
        other => panic!("u4 must be untranslatable, got: {other}"),
    }
}

#[test]
fn u4_untranslatable_at_star_in_strict_mode() {
    // Observation 2 taken literally: vC1 is unsafe-insert.
    let filter = bookdemo::book_filter()
        .with_config(UFilterConfig { mode: StarMode::Strict, strategy: Strategy::Outside });
    let mut db = bookdemo::book_db();
    let out = filter.check(bookdemo::U4, &mut db).remove(0).outcome;
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::Star),
        other => panic!("strict mode: u4 must die at Step 2, got: {other}"),
    }
}

#[test]
fn u5_invalid_predicate_outside_view() {
    // price > 50 against a price < 50 view.
    let out = check(bookdemo::U5);
    match &out {
        CheckOutcome::Invalid(r) => {
            assert!(r.to_string().contains("predicate"), "{r}");
        }
        other => panic!("u5 must be invalid, got: {other}"),
    }
}

#[test]
fn u6_invalid_non_deletable_leaf() {
    let out = check(bookdemo::U6);
    match &out {
        CheckOutcome::Invalid(r) => assert!(r.to_string().contains("deletable"), "{r}"),
        other => panic!("u6 must be invalid, got: {other}"),
    }
}

#[test]
fn u7_invalid_missing_publisher() {
    let out = check(bookdemo::U7);
    match &out {
        CheckOutcome::Invalid(r) => {
            assert!(r.to_string().contains("publisher"), "{r}");
        }
        other => panic!("u7 must be invalid, got: {other}"),
    }
}

#[test]
fn u8_unconditionally_translatable() {
    let out = check(bookdemo::U8);
    match &out {
        CheckOutcome::Translatable { conditions, translation } => {
            assert!(conditions.is_empty(), "u8 is unconditional, got {conditions:?}");
            assert!(!translation.is_empty());
            // The correct translation deletes from review.
            assert!(translation[0].to_string().starts_with("DELETE FROM review"));
        }
        other => panic!("u8 must be unconditionally translatable, got: {other}"),
    }
}

#[test]
fn u9_conditionally_translatable_minimization() {
    let out = check(bookdemo::U9);
    match &out {
        CheckOutcome::Translatable { conditions, translation } => {
            assert_eq!(conditions, &vec![Condition::TranslationMinimization]);
            // Anchor delete on book; the shared publisher is retained.
            assert!(translation.iter().any(|s| s.to_string().starts_with("DELETE FROM book")));
            assert!(!translation.iter().any(|s| s.to_string().contains("DELETE FROM publisher")));
        }
        other => panic!("u9 must be conditionally translatable, got: {other}"),
    }
}

#[test]
fn u10_untranslatable_unsafe_delete() {
    let out = check(bookdemo::U10);
    match out {
        CheckOutcome::Untranslatable { step, reason } => {
            assert_eq!(step, CheckStep::Star);
            assert!(reason.contains("unsafe-delete"), "{reason}");
        }
        other => panic!("u10 must be untranslatable, got: {other}"),
    }
}

#[test]
fn u11_untranslatable_context_missing() {
    // "Programming in Unix" fails year > 1990: not in the view.
    let out = check(bookdemo::U11);
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::DataContext),
        other => panic!("u11 must fail the context check, got: {other}"),
    }
}

#[test]
fn u12_translatable_zero_effect() {
    // "Data on the Web" is in the view but has no reviews: the update is
    // accepted and the translation touches nothing.
    let out = check(bookdemo::U12);
    match &out {
        CheckOutcome::Translatable { conditions, .. } => {
            assert!(conditions.is_empty());
        }
        other => panic!("u12 must be translatable, got: {other}"),
    }
}

#[test]
fn u13_translatable_insert_uses_probe_bookid() {
    let out = check(bookdemo::U13);
    match &out {
        CheckOutcome::Translatable { translation, .. } => {
            let sql: Vec<String> = translation.iter().map(|s| s.to_string()).collect();
            // §6.1's U1: INSERT INTO review VALUES "98003", "001", …
            assert!(
                sql.iter().any(|s| s.starts_with("INSERT INTO review") && s.contains("'98003'")),
                "translated SQL: {sql:?}"
            );
        }
        other => panic!("u13 must be translatable, got: {other}"),
    }
}

#[test]
fn full_taxonomy_matches_paper() {
    // One table-driven pass over all thirteen updates (paper labels).
    let expected: Vec<(&str, &str)> = vec![
        ("u1", "invalid"),
        ("u2", "untranslatable"),
        ("u3", "untranslatable"),
        ("u4", "untranslatable"),
        ("u5", "invalid"),
        ("u6", "invalid"),
        ("u7", "invalid"),
        ("u8", "unconditionally translatable"),
        ("u9", "conditionally translatable"),
        ("u10", "untranslatable"),
        ("u11", "untranslatable"),
        ("u12", "unconditionally translatable"),
        ("u13", "unconditionally translatable"),
    ];
    for ((name, update), (ename, elabel)) in all_updates().into_iter().zip(expected) {
        assert_eq!(name, ename);
        let out = check(update);
        assert_eq!(out.label(), elabel, "{name} classified as {out}");
    }
}

#[test]
fn rectangle_rule_holds_for_all_accepted_updates() {
    // Definition 1: for every update U-Filter lets through, applying the
    // translation and re-materializing must equal applying the update to
    // the materialized view.
    let filter = bookdemo::book_filter();
    for (name, update) in all_updates() {
        let mut db = bookdemo::book_db();
        let (accepted, verdict) = apply_and_verify(&filter, update, &mut db).unwrap();
        if accepted {
            assert_eq!(
                verdict,
                Some(RectangleVerdict::Holds),
                "{name}: accepted translation must satisfy the rectangle rule"
            );
        }
    }
}

#[test]
fn rejected_updates_leave_database_unchanged() {
    let filter = bookdemo::book_filter();
    for (name, update) in all_updates() {
        let mut db = bookdemo::book_db();
        let before = db.dump();
        let reports = filter.check(update, &mut db);
        if !reports[0].outcome.is_translatable() {
            // Drop probe materializations before comparing.
            for t in ["TAB_book", "TAB_publisher", "TAB_review", "TAB_BookView"] {
                let _ = db.drop_table(t);
            }
            assert_eq!(db.dump(), before, "{name}: rejected update must not mutate");
        }
    }
}

#[test]
fn strategies_agree_on_acceptance() {
    // Hybrid and outside must accept/reject the same updates (they differ
    // in cost and failure style, not in semantics).
    for (name, update) in all_updates() {
        let mut labels = Vec::new();
        for strategy in [Strategy::Outside, Strategy::Hybrid] {
            let filter = bookdemo::book_filter()
                .with_config(UFilterConfig { mode: StarMode::Refined, strategy });
            let mut db = bookdemo::book_db();
            let out = filter.apply(update, &mut db).remove(0).outcome;
            labels.push(out.is_translatable());
        }
        assert_eq!(labels[0], labels[1], "{name}: strategies disagree");
    }
}

#[test]
fn schema_only_check_needs_no_database() {
    let filter = bookdemo::book_filter();
    // u10 dies at Step 2 — no data needed.
    let out = filter.check_schema(bookdemo::U10).remove(0).outcome;
    assert!(matches!(out, CheckOutcome::Untranslatable { step: CheckStep::Star, .. }));
    // u8 passes both schema steps.
    let out = filter.check_schema(bookdemo::U8).remove(0).outcome;
    assert!(out.is_translatable());
}

#[test]
fn compile_rejects_unsupported_views() {
    // Aggregates over base-table scans are in the subset now…
    UFilter::compile("<V> <n> count(document(\"d\")/book/row) </n> </V>", &bookdemo::book_schema())
        .expect("aggregates over base scans compile");
    // …but an aggregate over a *variable path* still is not (its input is
    // view output, not a base scan).
    let err = UFilter::compile(
        "<V> FOR $b IN document(\"d\")/book/row RETURN { count($b/price) } </V>",
        &bookdemo::book_schema(),
    )
    .err()
    .expect("variable-path aggregates are outside the subset");
    assert!(err.to_string().contains("document"), "{err}");
    // if/then/else remains a Fig. 12 exclusion.
    let err = UFilter::compile(
        "<V> FOR $b IN document(\"d\")/book/row RETURN { if ($b/price) then $b/price else $b/title } </V>",
        &bookdemo::book_schema(),
    )
    .err()
    .expect("conditionals are outside the subset");
    assert!(err.to_string().contains("if"), "{err}");
}
