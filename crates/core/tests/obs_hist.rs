//! Property tests for the log-linear observability histogram: the bucketed
//! quantiles must track an exact sorted-vector oracle to within one bucket,
//! merge must be order-insensitive, and the bucket scheme must be exact at
//! its edges.

use proptest::prelude::*;
use ufilter_core::obs::{bucket_index, bucket_lower, bucket_upper, Histogram, BUCKETS};

/// The exact quantile the histogram approximates: the rank-⌈q·n⌉ element
/// (1-based) of the sorted sample, matching `HistogramSnapshot::quantile`.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The histogram quantile lands in the same bucket as the exact
    /// sorted-vector quantile — i.e. the only error is bucket rounding,
    /// never rank arithmetic.
    #[test]
    fn quantiles_match_sorted_vector_oracle_to_bucket_precision(
        mut values in prop::collection::vec(0u64..u64::MAX, 1..400),
        // Probe fixed quantiles plus a random one.
        q_extra in 0.001f64..1.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999, q_extra] {
            let exact = oracle_quantile(&values, q);
            let approx = snap.quantile(q);
            prop_assert_eq!(
                bucket_index(approx),
                bucket_index(exact),
                "q={}: approx {} and exact {} fall in different buckets",
                q, approx, exact
            );
            // And the approximation is the bucket's inclusive upper bound,
            // so it never understates the exact value's bucket.
            prop_assert!(approx >= exact || bucket_upper(bucket_index(exact)) == approx);
        }
    }

    /// Merging snapshots is commutative and associative: any merge order
    /// over a partition of the samples yields the same snapshot.
    #[test]
    fn merge_is_commutative_and_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..100),
        b in prop::collection::vec(0u64..u64::MAX, 0..100),
        c in prop::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        // c ⊕ b ⊕ a (commuted)
        let mut commuted = sc.clone();
        commuted.merge(&sb);
        commuted.merge(&sa);

        prop_assert_eq!(left.count(), right.count());
        prop_assert_eq!(left.sum(), right.sum());
        prop_assert_eq!(left.max(), right.max());
        prop_assert_eq!(left.count(), commuted.count());
        prop_assert_eq!(left.sum(), commuted.sum());
        prop_assert_eq!(left.max(), commuted.max());
        // Bucket-for-bucket equality, probed through quantiles.
        for q in [0.001, 0.25, 0.5, 0.75, 0.99, 1.0] {
            prop_assert_eq!(left.quantile(q), right.quantile(q));
            prop_assert_eq!(left.quantile(q), commuted.quantile(q));
        }
    }

    /// Round-trip: every value lands in a bucket whose [lower, upper]
    /// range contains it.
    #[test]
    fn bucket_bounds_contain_their_values(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower(i) <= v, "lower({}) = {} > {}", i, bucket_lower(i), v);
        prop_assert!(v <= bucket_upper(i), "upper({}) = {} < {}", i, bucket_upper(i), v);
    }
}

#[test]
fn edge_values_record_exactly() {
    // 0, sub-microsecond values, and u64::MAX all record and read back.
    let h = Histogram::new();
    h.record(0);
    h.record(1); // 1ns
    h.record(999); // sub-µs
    h.record(u64::MAX);
    let snap = h.snapshot();
    assert_eq!(snap.count(), 4);
    assert_eq!(snap.max(), u64::MAX);
    // Values below 16 are exact (dedicated unit buckets).
    assert_eq!(bucket_lower(bucket_index(0)), 0);
    assert_eq!(bucket_upper(bucket_index(0)), 0);
    assert_eq!(bucket_lower(bucket_index(1)), 1);
    assert_eq!(bucket_upper(bucket_index(1)), 1);
    // u64::MAX maps to the last bucket whose upper bound is saturated.
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    // The p100 quantile is the max bucket's upper bound.
    assert_eq!(snap.quantile(1.0), u64::MAX);
    // p25 of {0, 1, 999, MAX} is the rank-1 element: exactly 0.
    assert_eq!(snap.quantile(0.25), 0);
}
