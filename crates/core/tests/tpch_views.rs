//! The §7.2 evaluation views behave as the paper claims: every internal
//! node of Vsuccess is unconditionally updatable, Vfail's nested region is
//! untranslatable, Vbush passes Rule 1, and accepted updates satisfy the
//! rectangle rule on generated data.

use ufilter_core::{
    apply_and_verify, blind_apply, CheckOutcome, CheckStep, RectangleVerdict, UFilter,
};
use ufilter_rdb::DeletePolicy;
use ufilter_tpch::{generate, tpch_schema, updates, Scale, V_BUSH, V_FAIL, V_SUCCESS};

fn filter_for(view: &str) -> UFilter {
    UFilter::compile(view, &tpch_schema(DeletePolicy::Cascade)).expect("view compiles")
}

#[test]
fn vsuccess_every_internal_node_clean_and_safe() {
    let f = filter_for(V_SUCCESS);
    for n in f.asg.internal_nodes() {
        let uc = n.ucontext.expect("marked");
        let up = n.upoint.expect("marked");
        assert!(uc.safe_delete && uc.safe_insert, "<{}> must be safe, got {uc}", n.tag);
        assert_eq!(up, ufilter_asg::UPoint::Clean, "<{}> must be clean", n.tag);
    }
}

#[test]
fn vsuccess_deletes_all_levels_translatable_and_correct() {
    let f = filter_for(V_SUCCESS);
    let cases: Vec<(&str, String)> = vec![
        ("region", updates::delete_region(2)),
        ("nation", updates::delete_nation(7)),
        ("customer", updates::delete_customer(3)),
        ("order", updates::delete_order(5)),
        ("lineitem", updates::delete_lineitems_of_order(5)),
    ];
    for (level, update) in cases {
        let mut db = generate(Scale::tiny(), 11, DeletePolicy::Cascade);
        let (accepted, verdict) = apply_and_verify(&f, &update, &mut db).unwrap();
        assert!(accepted, "{level} delete must be accepted");
        assert_eq!(verdict, Some(RectangleVerdict::Holds), "{level} delete side-effect-free");
    }
}

#[test]
fn vfail_nested_region_marked_unsafe_delete() {
    let f = filter_for(V_FAIL);
    let region = f.asg.resolve_path(&["region"])[0];
    let uc = f.asg.node(region).ucontext.expect("marked");
    assert!(!uc.safe_delete, "nested <region> must be unsafe-delete");
    // The republished list itself is also unsafe-delete (same relation).
    let list = f.asg.resolve_path(&["regionlist"])[0];
    assert!(!f.asg.node(list).ucontext.unwrap().safe_delete);
}

#[test]
fn vfail_delete_rejected_at_star_in_constant_time() {
    let f = filter_for(V_FAIL);
    let out = f.check_schema(&updates::fail_delete_region(1)).remove(0).outcome;
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::Star),
        other => panic!("Vfail region delete must die at STAR, got {other}"),
    }
}

#[test]
fn vfail_blind_baseline_detects_side_effect_and_rolls_back() {
    // The Fig. 14 baseline: execute blindly, compare views, roll back.
    let f = filter_for(V_FAIL);
    let mut db = generate(Scale::tiny(), 13, DeletePolicy::Cascade);
    let before = db.dump();
    let out = blind_apply(&f, &updates::fail_delete_region(1), &mut db).unwrap();
    assert!(out.rolled_back, "the blind delete must be detected as a side effect");
    assert_eq!(db.dump(), before, "rollback must restore the database");
}

#[test]
fn vsuccess_blind_baseline_commits_clean_updates() {
    let f = filter_for(V_SUCCESS);
    let mut db = generate(Scale::tiny(), 13, DeletePolicy::Cascade);
    let out = blind_apply(&f, &updates::delete_lineitems_of_order(4), &mut db).unwrap();
    assert!(!out.rolled_back);
}

#[test]
fn vbush_compiles_with_safe_marks() {
    let f = filter_for(V_BUSH);
    // Rule 1 must NOT fire: extensions join through unique keys.
    for n in f.asg.internal_nodes() {
        let uc = n.ucontext.expect("marked");
        assert!(uc.safe_delete, "<{}> must be safe-delete in Vbush, got {uc}", n.tag);
    }
}

#[test]
fn vbush_lineitem_delete_round_trips() {
    let f = filter_for(V_BUSH);
    let mut db = generate(Scale::tiny(), 17, DeletePolicy::Cascade);
    let (accepted, verdict) =
        apply_and_verify(&f, &updates::bush_delete_lineitems(6), &mut db).unwrap();
    assert!(accepted);
    assert_eq!(verdict, Some(RectangleVerdict::Holds));
}

#[test]
fn vlinear_insert_lineitem_round_trips() {
    // Fig. 15's workload: insert a new lineitem into an order.
    let f = filter_for(V_SUCCESS);
    let mut db = generate(Scale::tiny(), 19, DeletePolicy::Cascade);
    let before = db.row_count("lineitem");
    let (accepted, verdict) =
        apply_and_verify(&f, &updates::insert_lineitem(3, 99), &mut db).unwrap();
    assert!(accepted, "lineitem insert must be accepted");
    assert_eq!(verdict, Some(RectangleVerdict::Holds));
    assert_eq!(db.row_count("lineitem"), before + 1);
}

#[test]
fn duplicate_lineitem_insert_rejected_at_point_check() {
    let f = filter_for(V_SUCCESS);
    let mut db = generate(Scale::tiny(), 19, DeletePolicy::Cascade);
    // linenumber 1 of order 3 exists by construction.
    let out = f.check(&updates::insert_lineitem(3, 1), &mut db).remove(0).outcome;
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::DataPoint),
        other => panic!("duplicate key insert must die at the point check, got {other}"),
    }
}

#[test]
fn missing_order_context_rejected() {
    let f = filter_for(V_SUCCESS);
    let mut db = generate(Scale::tiny(), 19, DeletePolicy::Cascade);
    let out = f.check(&updates::insert_lineitem(999_999, 1), &mut db).remove(0).outcome;
    match out {
        CheckOutcome::Untranslatable { step, .. } => assert_eq!(step, CheckStep::DataContext),
        other => panic!("absent order must die at the context check, got {other}"),
    }
}
