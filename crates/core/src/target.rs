//! Resolving an update statement against the view ASG: which schema node is
//! being inserted into / deleted, and what the update's predicates mean in
//! relational terms.

use std::collections::HashMap;

use ufilter_asg::{AsgNodeId, AsgNodeKind, ViewAsg};
use ufilter_rdb::{CmpOp, ColRef, Value};
use ufilter_xml::Document;
use ufilter_xquery::{Operand, UpdBinding, UpdateAction, UpdateKind, UpdateStmt};

use crate::outcome::InvalidReason;

/// One resolvable action of an update statement, tied to ASG nodes.
#[derive(Debug, Clone)]
pub struct ResolvedAction {
    /// Insert / delete / replace.
    pub kind: UpdateKind,
    /// The ASG node the action creates or removes instances of.
    pub node: AsgNodeId,
    /// The node bound by `UPDATE $var` — the context element.
    pub context_node: AsgNodeId,
    /// Update WHERE predicates, relation-qualified and typed.
    pub predicates: Vec<(ColRef, CmpOp, Value)>,
    /// Fragment for inserts/replacements.
    pub fragment: Option<Document>,
}

/// Resolve every action of `u` against the ASG. Returns per-action
/// resolutions, or the Step-1 invalidity that prevented resolution.
pub fn resolve(asg: &ViewAsg, u: &UpdateStmt) -> Result<Vec<ResolvedAction>, InvalidReason> {
    // Bind each variable to an ASG node by walking tag paths.
    let mut var_nodes: HashMap<String, AsgNodeId> = HashMap::new();
    for b in &u.bindings {
        let node = match b {
            UpdBinding::Document { var, steps, .. } => {
                let steps: Vec<&str> = steps.iter().map(String::as_str).collect();
                let node = resolve_steps(asg, asg.root(), &steps, var)?;
                var_nodes.insert(var.clone(), node);
                node
            }
            UpdBinding::Path { var, path } => {
                let base = *var_nodes.get(&path.var).ok_or_else(|| InvalidReason::Malformed {
                    detail: format!("unbound variable ${}", path.var),
                })?;
                let steps: Vec<&str> = path.steps.iter().map(String::as_str).collect();
                let node = resolve_steps(asg, base, &steps, var)?;
                var_nodes.insert(var.clone(), node);
                node
            }
        };
        let _ = node;
    }

    // Translate WHERE predicates to relational atoms through leaf names.
    let mut predicates = Vec::new();
    for p in &u.predicates {
        let (path, op, value) = match (&p.lhs, &p.rhs) {
            (Operand::Path(path), Operand::Literal(v)) => (path, p.op, v.clone()),
            (Operand::Literal(v), Operand::Path(path)) => (path, p.op.flip(), v.clone()),
            _ => {
                return Err(InvalidReason::Malformed {
                    detail: format!("unsupported update predicate: {p}"),
                })
            }
        };
        let base = *var_nodes.get(&path.var).ok_or_else(|| InvalidReason::Malformed {
            detail: format!("unbound variable ${} in predicate", path.var),
        })?;
        let steps: Vec<&str> = path.element_steps().iter().map(String::as_str).collect();
        let node = resolve_steps(asg, base, &steps, &path.var)?;
        // The node should be a tag wrapping a leaf (or the leaf itself).
        let leaf = find_leaf(asg, node).ok_or_else(|| InvalidReason::UnknownTarget {
            detail: format!("predicate path {path} does not reach a value"),
        })?;
        // Type the literal according to the leaf's declared type.
        let typed = match &value {
            Value::Str(s) => Value::parse_as(s, leaf.ty).unwrap_or(value.clone()),
            other => other.clone().coerce(leaf.ty),
        };
        predicates.push((leaf.name.clone(), op, typed));
    }

    let context_node = *var_nodes.get(&u.target).ok_or_else(|| InvalidReason::Malformed {
        detail: format!("UPDATE target ${} is unbound", u.target),
    })?;

    let mut out = Vec::new();
    for action in &u.actions {
        match action {
            UpdateAction::Insert(frag) => {
                let tag = frag.name(frag.root()).unwrap_or("").to_string();
                let node = child_named(asg, context_node, &tag).ok_or_else(|| {
                    InvalidReason::HierarchyViolation {
                        detail: format!(
                            "element <{tag}> cannot occur under <{}>",
                            asg.node(context_node).tag
                        ),
                    }
                })?;
                out.push(ResolvedAction {
                    kind: UpdateKind::Insert,
                    node,
                    context_node,
                    predicates: predicates.clone(),
                    fragment: Some(frag.clone()),
                });
            }
            UpdateAction::Delete(path) => {
                let base = *var_nodes.get(&path.var).ok_or_else(|| InvalidReason::Malformed {
                    detail: format!("unbound variable ${} in DELETE", path.var),
                })?;
                let steps: Vec<&str> = path.steps.iter().map(String::as_str).collect();
                let node = resolve_steps(asg, base, &steps, &path.var)?;
                out.push(ResolvedAction {
                    kind: UpdateKind::Delete,
                    node,
                    context_node,
                    predicates: predicates.clone(),
                    fragment: None,
                });
            }
            UpdateAction::Replace { target, with } => {
                // Replace = delete the target node + insert the fragment
                // under its parent (§4 footnote).
                let base = *var_nodes.get(&target.var).ok_or_else(|| InvalidReason::Malformed {
                    detail: format!("unbound variable ${} in REPLACE", target.var),
                })?;
                let steps: Vec<&str> = target.steps.iter().map(String::as_str).collect();
                let node = resolve_steps(asg, base, &steps, &target.var)?;
                // A same-tag replace of a *value* element swaps the value in
                // place — one action, translated to a single SET. The
                // delete+insert split would misfire here: its check-time
                // "value absent" precondition reads the pre-delete state.
                let n = asg.node(node);
                let frag_tag = with.name(with.root()).unwrap_or("");
                if matches!(n.kind, AsgNodeKind::Tag | AsgNodeKind::Leaf)
                    && n.tag.eq_ignore_ascii_case(frag_tag)
                {
                    out.push(ResolvedAction {
                        kind: UpdateKind::Replace,
                        node,
                        context_node,
                        predicates: predicates.clone(),
                        fragment: Some(with.clone()),
                    });
                    continue;
                }
                out.push(ResolvedAction {
                    kind: UpdateKind::Delete,
                    node,
                    context_node,
                    predicates: predicates.clone(),
                    fragment: None,
                });
                let parent = asg.node(node).parent.unwrap_or(asg.root());
                let tag = with.name(with.root()).unwrap_or("").to_string();
                let ins_node = child_named(asg, parent, &tag).ok_or_else(|| {
                    InvalidReason::HierarchyViolation {
                        detail: format!(
                            "element <{tag}> cannot occur under <{}>",
                            asg.node(parent).tag
                        ),
                    }
                })?;
                out.push(ResolvedAction {
                    kind: UpdateKind::Insert,
                    node: ins_node,
                    context_node: parent,
                    predicates: predicates.clone(),
                    fragment: Some(with.clone()),
                });
            }
        }
    }
    Ok(out)
}

fn resolve_steps(
    asg: &ViewAsg,
    from: AsgNodeId,
    steps: &[&str],
    var: &str,
) -> Result<AsgNodeId, InvalidReason> {
    let mut cur = from;
    for step in steps {
        let next = if *step == "text()" {
            asg.node(cur).children.iter().copied().find(|c| asg.node(*c).kind == AsgNodeKind::Leaf)
        } else {
            child_named(asg, cur, step)
        };
        cur = next.ok_or_else(|| InvalidReason::UnknownTarget {
            detail: format!(
                "${var}: the view schema has no <{step}> under <{}>",
                asg.node(cur).tag
            ),
        })?;
    }
    Ok(cur)
}

fn child_named(asg: &ViewAsg, parent: AsgNodeId, tag: &str) -> Option<AsgNodeId> {
    asg.node(parent).children.iter().copied().find(|c| asg.node(*c).tag.eq_ignore_ascii_case(tag))
}

/// The leaf info at-or-under a node (tag nodes wrap exactly one leaf).
pub fn find_leaf(asg: &ViewAsg, id: AsgNodeId) -> Option<&ufilter_asg::LeafInfo> {
    let n = asg.node(id);
    if let Some(l) = &n.leaf {
        return Some(l);
    }
    if n.kind == AsgNodeKind::Tag {
        n.children.iter().find_map(|c| asg.node(*c).leaf.as_ref())
    } else {
        None
    }
}

/// Strip the decorative quotes the paper's figures put around values
/// (`<bookid>"98004"</bookid>`).
pub fn clean_text(s: &str) -> String {
    let t = s.trim();
    for q in ['"', '\''] {
        if t.len() >= 2 && t.starts_with(q) && t.ends_with(q) {
            return t[1..t.len() - 1].trim().to_string();
        }
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bookdemo;
    use ufilter_rdb::CmpOp;

    fn filter() -> crate::pipeline::UFilter {
        bookdemo::book_filter()
    }

    fn resolve_text(update: &str) -> Result<Vec<ResolvedAction>, InvalidReason> {
        let f = filter();
        let u = ufilter_xquery::parse_update(update).unwrap();
        resolve(&f.asg, &u)
    }

    #[test]
    fn u2_resolves_to_publisher_under_book() {
        let f = filter();
        let actions = resolve_text(bookdemo::U2).unwrap();
        assert_eq!(actions.len(), 1);
        let a = &actions[0];
        assert_eq!(a.kind, UpdateKind::Delete);
        assert_eq!(f.asg.node(a.node).tag, "publisher");
        // … the nested one, not the top-level list.
        assert_eq!(f.asg.node(f.asg.node(a.node).parent.unwrap()).tag, "book");
        // Context = UPDATE $root → the view root.
        assert_eq!(a.context_node, f.asg.root());
    }

    #[test]
    fn predicates_become_typed_relational_atoms() {
        let actions = resolve_text(bookdemo::U8).unwrap();
        let preds = &actions[0].predicates;
        assert_eq!(preds.len(), 1);
        let (col, op, v) = &preds[0];
        assert!(col.matches("book", "price"));
        assert_eq!(*op, CmpOp::Lt);
        // Literal typed against the leaf's Double type.
        assert_eq!(*v, Value::Double(40.0));
    }

    #[test]
    fn string_literals_coerce_to_leaf_types() {
        // bookid is a string column: "98001" stays a string.
        let actions = resolve_text(bookdemo::U2).unwrap();
        let (col, _, v) = &actions[0].predicates[0];
        assert!(col.matches("book", "bookid"));
        assert_eq!(*v, Value::str("98001"));
    }

    #[test]
    fn unknown_path_is_invalid_target() {
        let err = resolve_text(r#"FOR $b IN document("V.xml")/book UPDATE $b { DELETE $b/isbn }"#)
            .unwrap_err();
        assert!(matches!(err, InvalidReason::UnknownTarget { .. }), "{err}");
    }

    #[test]
    fn unknown_fragment_tag_is_hierarchy_violation() {
        let err =
            resolve_text(r#"FOR $b IN document("V.xml")/book UPDATE $b { INSERT <isbn>1</isbn> }"#)
                .unwrap_err();
        assert!(matches!(err, InvalidReason::HierarchyViolation { .. }), "{err}");
    }

    #[test]
    fn unbound_variable_is_malformed() {
        let err =
            resolve_text(r#"FOR $b IN document("V.xml")/book UPDATE $b { DELETE $zzz/review }"#)
                .unwrap_err();
        assert!(matches!(err, InvalidReason::Malformed { .. }), "{err}");
    }

    #[test]
    fn replace_splits_into_delete_then_insert() {
        let actions = resolve_text(
            r#"FOR $b IN document("V.xml")/book, $r IN $b/review
               UPDATE $b { REPLACE $r WITH <review><reviewid>9</reviewid></review> }"#,
        )
        .unwrap();
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0].kind, UpdateKind::Delete);
        assert_eq!(actions[1].kind, UpdateKind::Insert);
        // Insert context = the deleted node's parent (the book).
        let f = filter();
        assert_eq!(f.asg.node(actions[1].context_node).tag, "book");
    }

    #[test]
    fn clean_text_strips_paper_style_quotes() {
        assert_eq!(clean_text("\"98004\""), "98004");
        assert_eq!(clean_text("' Operating Systems '"), "Operating Systems");
        assert_eq!(clean_text("  plain  "), "plain");
        assert_eq!(clean_text("\"unbalanced'"), "\"unbalanced'");
    }

    #[test]
    fn ambiguous_publisher_paths_resolve_by_position() {
        // document("V")/publisher → the top-level list, not the nested one.
        let f = filter();
        let actions =
            resolve_text(r#"FOR $p IN document("V.xml")/publisher UPDATE $p { DELETE $p }"#)
                .unwrap();
        let node = f.asg.node(actions[0].node);
        assert_eq!(node.tag, "publisher");
        assert_eq!(node.parent, Some(f.asg.root()));
    }
}
