//! Multi-view catalog and batched update checking.
//!
//! The paper's pipeline (Fig. 5) compiles a view once and then filters a
//! *stream* of updates; this module scales that idea out to many views over
//! one schema. A [`ViewCatalog`]
//!
//! * registers compiled views by name, with a **compile-once cache** keyed
//!   by canonical view text (re-adding the same query under another name —
//!   or after a drop — reuses the compiled ASG + STAR marking);
//! * tracks **view → relation dependencies**, so schema-affecting DDL on a
//!   relation is rejected (RESTRICT) while registered views still read it;
//! * exposes [`check_batch`](ViewCatalog::check_batch), which amortizes
//!   parsing, target resolution and data-check probes across a whole update
//!   stream — updates are grouped by resolved target so identical context
//!   probes share a single scan (see [`ProbeCache`]);
//! * maintains a shared **relevance index** ([`ufilter_route`]) over every
//!   registered view, so [`check_all`](ViewCatalog::check_all) /
//!   [`check_all_batch`](ViewCatalog::check_all_batch) can fan one update
//!   out to the candidate views it could possibly affect instead of
//!   running the pipeline against the whole catalog — a sound superset,
//!   with [`check_all_brute`](ViewCatalog::check_all_brute) as the
//!   index-free baseline and fallback.
//!
//! Batch checking is **check-only** by design: nothing is executed, so every
//! probe result stays valid for the lifetime of the batch and the per-update
//! outcomes are identical to running [`UFilter::check`] one statement at a
//! time.
//!
//! ```
//! use ufilter_core::bookdemo;
//! use ufilter_core::catalog::ViewCatalog;
//!
//! let mut catalog = ViewCatalog::new(bookdemo::book_schema());
//! catalog.add("books", bookdemo::BOOK_VIEW).unwrap();
//!
//! let mut db = bookdemo::book_db();
//! let stream =
//!     vec![("books".to_string(), bookdemo::U8.to_string()), ("books".into(), bookdemo::U10.into())];
//! let batch = catalog.check_batch_text(&stream, &mut db);
//! assert!(batch.items[0].reports[0].outcome.is_translatable()); // u8
//! assert!(!batch.items[1].reports[0].outcome.is_translatable()); // u10
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use ufilter_rdb::{DatabaseSchema, Db, ExecOutcome, Parser, Stmt};
use ufilter_route::{Footprint, IndexStats, Route, TrieIndex, ViewSignature};
use ufilter_xquery::{parse_update, UpdateStmt};

use crate::obs::{self, Stage};
use crate::outcome::CheckReport;
use crate::persist::{self, CatalogStore, LogRecord, ReplayStats};
use crate::pipeline::{malformed, CompileError, ProbeCache, UFilter, UFilterConfig};
use crate::target::resolve;

/// Why a catalog operation failed.
#[derive(Debug, Clone)]
pub enum CatalogError {
    /// `add` under a name that is already registered.
    DuplicateView {
        /// The already-taken view name.
        name: String,
    },
    /// `drop_view`/`get` on a name that is not registered.
    UnknownView {
        /// The unresolved view name.
        name: String,
    },
    /// The view text failed to compile; the structured cause is preserved.
    Compile {
        /// The name the view was being registered under.
        name: String,
        /// The underlying compilation failure.
        error: CompileError,
    },
    /// Schema-affecting DDL on a relation that registered views still read
    /// (the catalog's RESTRICT rule).
    DependentViews {
        /// The relation the DDL targets.
        relation: String,
        /// Names of the views that depend on it.
        views: Vec<String>,
    },
    /// A guarded SQL statement failed to parse or execute.
    Sql {
        /// Engine-reported detail.
        detail: String,
    },
    /// The attached durable store could not record the mutation (the
    /// operation is **not** acknowledged — nothing the store did not accept
    /// is inserted into the live catalog).
    Persist {
        /// Store-reported detail.
        detail: String,
    },
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::DuplicateView { name } => {
                write!(f, "view '{name}' is already registered")
            }
            CatalogError::UnknownView { name } => write!(f, "no view named '{name}'"),
            CatalogError::Compile { name, error } => {
                write!(f, "view '{name}' failed to compile: {error}")
            }
            CatalogError::DependentViews { relation, views } => write!(
                f,
                "cannot alter relation '{relation}': view(s) {} depend on it",
                views.join(", ")
            ),
            CatalogError::Sql { detail } => write!(f, "{detail}"),
            CatalogError::Persist { detail } => write!(f, "persistence failure: {detail}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// One registered view, as reported by [`ViewCatalog::list`].
#[derive(Debug, Clone)]
pub struct ViewInfo {
    /// Registration name.
    pub name: String,
    /// Relations the view reads (its dependency set).
    pub relations: Vec<String>,
    /// Whether registration reused an already-compiled artifact.
    pub cached: bool,
}

/// Per-item result of a batch check, in input order.
#[derive(Debug, Clone)]
pub struct BatchItemReport {
    /// Index of the item in the submitted stream.
    pub index: usize,
    /// The view the update addressed.
    pub view: String,
    /// Per-action reports, exactly as [`UFilter::check`] would produce.
    pub reports: Vec<CheckReport>,
}

/// Amortization counters for one batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchStats {
    /// Number of items in the stream.
    pub items: usize,
    /// Updates whose text was already parsed earlier in the batch.
    pub parse_hits: usize,
    /// Distinct (view, target-node) groups the stream collapsed into.
    pub target_groups: usize,
    /// Context probes answered from the shared cache.
    pub probe_hits: usize,
    /// Context probes that had to scan.
    pub probe_misses: usize,
}

impl BatchStats {
    /// Accumulate another batch's counters into this one (used by the
    /// sharded catalog and worker pool when merging partial reports).
    pub fn merge(&mut self, other: &BatchStats) {
        self.items += other.items;
        self.parse_hits += other.parse_hits;
        self.target_groups += other.target_groups;
        self.probe_hits += other.probe_hits;
        self.probe_misses += other.probe_misses;
    }
}

/// Result of [`ViewCatalog::check_batch`]: per-item reports plus the
/// amortization counters.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One entry per submitted item, sorted back into input order.
    pub items: Vec<BatchItemReport>,
    /// What the batch engine amortized.
    pub stats: BatchStats,
}

/// Pruning and fan-out counters for catalog-wide checking, aggregated over
/// one [`ViewCatalog::check_all`] / [`ViewCatalog::check_all_batch`] call (and further
/// merged across shards/workers by the service layer). Field names match
/// the service `STATS` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// Views registered when the fan-out ran.
    pub views: usize,
    /// Fan-out requests routed (`fanout_requests` in `STATS`).
    pub fanout_requests: usize,
    /// Candidate (view, update) checks actually run.
    pub candidates: usize,
    /// Views pruned without running the pipeline, all levels.
    pub pruned: usize,
    /// … of which at the tag-vocabulary level.
    pub pruned_tags: usize,
    /// … of which at the path-structure level.
    pub pruned_paths: usize,
    /// … of which at the constant-predicate level.
    pub pruned_preds: usize,
    /// Requests the index could not classify (every view became a
    /// candidate; the per-view pipeline was the fallback).
    pub fallbacks: usize,
}

impl FanoutStats {
    /// Fold one routing decision into the counters (the service's fan-out
    /// paths call this per request).
    pub fn absorb(&mut self, route: &Route) {
        self.fanout_requests += 1;
        self.candidates += route.candidates.len();
        self.pruned += route.pruned();
        self.pruned_tags += route.pruned_tags;
        self.pruned_paths += route.pruned_paths;
        self.pruned_preds += route.pruned_preds;
        self.fallbacks += usize::from(route.fallback);
    }
}

/// One (update, candidate view) result of a catalog-wide check.
#[derive(Debug, Clone)]
pub struct FanoutItem {
    /// Index of the update in the submitted stream (0 for single-update
    /// [`ViewCatalog::check_all`]).
    pub update: usize,
    /// The candidate view this entry checked against.
    pub view: String,
    /// Per-action reports, exactly as [`UFilter::check`] would produce.
    pub reports: Vec<CheckReport>,
}

/// Result of a catalog-wide check: per-candidate reports in
/// `(update index, view name)` order, plus routing and batch counters.
#[derive(Debug, Clone)]
pub struct FanoutReport {
    /// One entry per surviving (update, candidate view) pair.
    pub items: Vec<FanoutItem>,
    /// What the relevance index pruned.
    pub fanout: FanoutStats,
    /// What the batch engine amortized across the candidates.
    pub batch: BatchStats,
}

/// What a lazily-recovered view needs to build its [`UFilter`] on first
/// use: the canonical view text, the persisted artifact bytes, the schema
/// as of the view's position in the replayed record order, and the
/// catalog's pipeline config.
struct HydrationSeed {
    view_text: String,
    artifact: Vec<u8>,
    schema: Arc<DatabaseSchema>,
    config: UFilterConfig,
}

struct Registered {
    /// The compiled filter — set immediately by [`ViewCatalog::add`],
    /// hydrated from `seed` on first use for replayed views.
    filter: OnceLock<Arc<UFilter>>,
    /// Deferred-hydration seed (replayed views only).
    seed: Option<HydrationSeed>,
    /// `rel(DEF_V)` in compile order — kept outside the filter so `list`
    /// and the wire `CATALOG LIST` never force hydration.
    relations: Vec<String>,
    cached: bool,
}

impl Registered {
    fn eager(filter: Arc<UFilter>, cached: bool) -> Registered {
        let relations = filter.asg.relations.clone();
        let cell = OnceLock::new();
        let _ = cell.set(filter);
        Registered { filter: cell, seed: None, relations, cached }
    }

    fn lazy(seed: HydrationSeed, relations: Vec<String>, cached: bool) -> Registered {
        Registered { filter: OnceLock::new(), seed: Some(seed), relations, cached }
    }

    /// The compiled filter, hydrating from the persisted artifact on first
    /// use. Decoding cannot fail for bytes the store wrote (they are
    /// CRC-checked on the way in); any damage that slips through falls
    /// back to recompiling the canonical view text, which parsed when the
    /// view was originally registered.
    fn filter(&self) -> &Arc<UFilter> {
        self.filter.get_or_init(|| {
            let seed = self.seed.as_ref().expect("unhydrated entry carries a seed");
            let decoded = persist::decode_artifact(&seed.artifact)
                .ok()
                .filter(|(config, _, _, _)| *config == seed.config)
                .map(|(config, asg, marking, read_sets)| {
                    UFilter::from_artifact(
                        seed.view_text.clone(),
                        (*seed.schema).clone(),
                        asg,
                        marking,
                        read_sets,
                        config,
                    )
                });
            Arc::new(decoded.unwrap_or_else(|| {
                UFilter::compile(&seed.view_text, &seed.schema)
                    .map(|f| f.with_config(seed.config))
                    .expect("replayed view text compiled when originally registered")
            }))
        })
    }
}

/// A persistent catalog of compiled views over one relational schema.
///
/// See the [module docs](self) for semantics; `docs/ARCHITECTURE.md` records
/// the design decisions (drop-is-RESTRICT, compile-once caching) as an ADR.
pub struct ViewCatalog {
    schema: DatabaseSchema,
    config: UFilterConfig,
    views: BTreeMap<String, Registered>,
    /// (canonical view text, config) → compiled artifact (survives
    /// `drop_view`, so re-registering identical text is a cache hit; keyed
    /// by config too, so a `with_config` change never serves an artifact
    /// compiled under the old mode/strategy).
    compiled: HashMap<(String, UFilterConfig), Arc<UFilter>>,
    compile_hits: usize,
    /// Schema epoch: bumped by [`set_schema`](ViewCatalog::set_schema)
    /// (i.e. on every guarded schema-affecting DDL), and synced into every
    /// caller-held [`ProbeCache`] by the batch engine so probe results can
    /// never survive a schema change. The sharded service catalog adopts
    /// new schemas on all shards inside one all-locks critical section, so
    /// shard epochs advance in lockstep and a worker cache shared across
    /// shards never thrashes.
    epoch: u64,
    /// The shared path-trie relevance index over every registered view,
    /// maintained incrementally by `add`/`drop_view` (see
    /// [`ufilter_route::TrieIndex`]).
    index: TrieIndex,
    /// Durable backing store (see [`crate::persist`]). When attached, every
    /// mutating operation appends (and fsyncs) its record **before** the
    /// in-memory mutation is acknowledged. Shared behind a mutex because the
    /// sharded service catalog funnels all shards into one log.
    store: Option<Arc<Mutex<CatalogStore>>>,
}

impl ViewCatalog {
    /// An empty catalog over `schema`, with the default pipeline config.
    pub fn new(schema: DatabaseSchema) -> ViewCatalog {
        ViewCatalog {
            schema,
            config: UFilterConfig::default(),
            views: BTreeMap::new(),
            compiled: HashMap::new(),
            compile_hits: 0,
            epoch: 0,
            index: TrieIndex::new(),
            store: None,
        }
    }

    /// Attach a durable store: from now on `add`, `drop_view` and guarded
    /// schema DDL append their record (fsynced) before they are
    /// acknowledged. Call **after** [`replay`](Self::replay) — replayed
    /// records are already on disk and must not be appended again.
    pub fn attach_store(&mut self, store: Arc<Mutex<CatalogStore>>) {
        self.store = Some(store);
    }

    /// The attached store, if any (the service layer reaches through this
    /// for `STATS` counters and shutdown syncs).
    pub fn store(&self) -> Option<&Arc<Mutex<CatalogStore>>> {
        self.store.as_ref()
    }

    /// Append `record` to the attached store (no-op without one). Called
    /// before the corresponding in-memory mutation, so a crash can lose an
    /// unacknowledged operation but never an acknowledged one.
    fn append_record(&self, record: &LogRecord) -> Result<(), CatalogError> {
        if let Some(store) = &self.store {
            store
                .lock()
                .expect("catalog store lock")
                .append(record)
                .map_err(|e| CatalogError::Persist { detail: e.to_string() })?;
        }
        Ok(())
    }

    /// The catalog's schema epoch (see the field docs): a counter bumped on
    /// every adopted schema change. [`ProbeCache::sync_epoch`] pairs with it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set the pipeline configuration used for views registered *after*
    /// this call.
    pub fn with_config(mut self, config: UFilterConfig) -> ViewCatalog {
        self.config = config;
        self
    }

    /// The schema every registered view is compiled against.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// The pipeline configuration used for new registrations.
    pub fn config(&self) -> UFilterConfig {
        self.config
    }

    /// Register `view_text` under `name`, compiling it unless canonically
    /// identical text was compiled before (then the cached artifact is
    /// shared). Duplicate names are rejected.
    pub fn add(&mut self, name: &str, view_text: &str) -> Result<ViewInfo, CatalogError> {
        if self.views.contains_key(name) {
            return Err(CatalogError::DuplicateView { name: name.to_string() });
        }
        let key = (canonicalize(view_text), self.config);
        let canonical = key.0.clone();
        let (filter, cached) = match self.compiled.get(&key) {
            Some(f) => {
                self.compile_hits += 1;
                (Arc::clone(f), true)
            }
            None => {
                let f = UFilter::compile(view_text, &self.schema)
                    .map(|f| f.with_config(self.config))
                    .map_err(|error| CatalogError::Compile { name: name.to_string(), error })?;
                let f = Arc::new(f);
                self.compiled.insert(key, Arc::clone(&f));
                (f, false)
            }
        };
        let sig = ViewSignature::of(&filter.asg);
        self.append_record(&LogRecord::Add {
            name: name.to_string(),
            view_text: canonical,
            deps: filter.asg.relations.clone(),
            cached,
            artifact: persist::encode_artifact(&filter, &sig),
        })?;
        let info =
            ViewInfo { name: name.to_string(), relations: filter.asg.relations.clone(), cached };
        self.index.insert_signature(name, sig);
        self.views.insert(name.to_string(), Registered::eager(filter, cached));
        Ok(info)
    }

    /// The compiled filter registered under `name`. A view recovered by
    /// [`replay`](Self::replay) hydrates from its persisted artifact on
    /// the first call.
    pub fn get(&self, name: &str) -> Option<&UFilter> {
        self.views.get(name).map(|r| r.filter().as_ref())
    }

    /// All registered views, in **ascending name order** (a documented
    /// guarantee, like [`dependents_of`](Self::dependents_of) and
    /// [`relevant_views`](Self::relevant_views): every name list the
    /// catalog returns is deterministic and name-sorted).
    pub fn list(&self) -> Vec<ViewInfo> {
        self.views
            .iter()
            .map(|(name, r)| ViewInfo {
                name: name.clone(),
                relations: r.relations.clone(),
                cached: r.cached,
            })
            .collect()
    }

    /// Unregister `name`. The compiled artifact stays in the compile-once
    /// cache, so re-adding identical text later is free.
    pub fn drop_view(&mut self, name: &str) -> Result<(), CatalogError> {
        if !self.views.contains_key(name) {
            return Err(CatalogError::UnknownView { name: name.to_string() });
        }
        self.append_record(&LogRecord::Drop { name: name.to_string() })?;
        self.views.remove(name);
        self.index.remove(name);
        Ok(())
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no view is registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// How many registrations were served from the compile-once cache.
    pub fn compile_cache_hits(&self) -> usize {
        self.compile_hits
    }

    /// Names of registered views that read `relation`
    /// (case-insensitively), in **ascending name order**. Answered from
    /// the relevance index's inverted relation postings — no scan over the
    /// registered views.
    pub fn dependents_of(&self, relation: &str) -> Vec<String> {
        self.index.views_reading(relation)
    }

    /// The views a parsed update could possibly affect, in **ascending
    /// name order** — a sound superset of the truly relevant views (see
    /// [`ufilter_route`]): every pruned view is guaranteed to classify the
    /// update as statically irrelevant (`Invalid` with an
    /// unknown-target / hierarchy / predicate-outside-view reason).
    pub fn relevant_views(&self, u: &UpdateStmt) -> Vec<String> {
        self.index.route(u).candidates
    }

    /// [`relevant_views`](Self::relevant_views) with the full per-level
    /// pruning counters.
    pub fn route_update(&self, u: &UpdateStmt) -> Route {
        self.index.route(u)
    }

    /// [`route_update`](Self::route_update) for a pre-extracted
    /// [`Footprint`] — the sharded service catalog extracts one footprint
    /// per request and routes it through every shard's index.
    pub fn route_footprint(&self, fp: &Footprint) -> Route {
        self.index.route_footprint(fp)
    }

    /// Resident-size and churn gauges of the routing index (the service
    /// `STATS` verb sums these across shards).
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// How many registered views hold a *hydrated* compiled filter (their
    /// ASG has been decoded or compiled). Replayed views hydrate lazily on
    /// first check, so right after a warm restart this is 0 even though
    /// the routing index is fully populated — the invariant the
    /// persist+route integration test pins.
    pub fn hydrated_count(&self) -> usize {
        self.views.values().filter(|r| r.filter.get().is_some()).count()
    }

    /// The catalog's RESTRICT rule: reject schema-affecting DDL (see
    /// [`is_schema_ddl`]) targeting a relation that registered views depend
    /// on. Non-DDL statements pass through.
    pub fn guard_ddl(&self, stmt: &Stmt) -> Result<(), CatalogError> {
        let relation = match stmt {
            Stmt::DropTable(name) => name.as_str(),
            Stmt::CreateTable(ts) if self.schema.table(&ts.name).is_some() => ts.name.as_str(),
            _ => return Ok(()),
        };
        let views = self.dependents_of(relation);
        if views.is_empty() {
            Ok(())
        } else {
            Err(CatalogError::DependentViews { relation: relation.to_string(), views })
        }
    }

    /// Parse `sql`, then [`execute_guarded_stmt`](Self::execute_guarded_stmt).
    /// With a store attached, schema-affecting DDL that executed
    /// successfully is appended to the log (by its SQL text, after
    /// execution): the base database itself is in-memory only, so on
    /// restart the logged statements are **re-executed** in order to
    /// rebuild the exact schema timeline the surviving views compiled
    /// against. Non-DDL statements touch data, not the catalog, and are
    /// not logged.
    pub fn execute_guarded(&mut self, db: &mut Db, sql: &str) -> Result<ExecOutcome, CatalogError> {
        let stmt =
            Parser::parse_stmt(sql).map_err(|e| CatalogError::Sql { detail: e.to_string() })?;
        let ddl = is_schema_ddl(&stmt);
        let out = self.execute_guarded_stmt(db, stmt)?;
        if ddl {
            self.append_record(&LogRecord::Ddl { sql: sql.to_string() })?;
        }
        Ok(out)
    }

    /// Apply [`guard_ddl`](ViewCatalog::guard_ddl) to an already-parsed
    /// statement and execute it against `db`. After schema-changing DDL
    /// goes through, the catalog adopts `db`'s new schema via
    /// [`set_schema`](ViewCatalog::set_schema).
    pub fn execute_guarded_stmt(
        &mut self,
        db: &mut Db,
        stmt: Stmt,
    ) -> Result<ExecOutcome, CatalogError> {
        self.guard_ddl(&stmt)?;
        let ddl = is_schema_ddl(&stmt);
        let out = db.run(stmt).map_err(|e| CatalogError::Sql { detail: e.to_string() })?;
        if ddl {
            self.set_schema(db.schema().clone());
        }
        Ok(out)
    }

    /// Adopt `schema` as the compile target for future registrations and
    /// clear the compile-once cache — its artifacts were compiled against
    /// the old schema, so re-adding a view must recompile (and may now
    /// rightly fail) rather than resurrect a stale ASG. The sharded
    /// concurrent catalog in `ufilter-service` calls this on every shard
    /// after executing guarded DDL once against the shared database.
    pub fn set_schema(&mut self, schema: DatabaseSchema) {
        self.schema = schema;
        self.compiled.clear();
        // Probe results cached under the old schema may be stale (the DDL
        // that triggered this dropped or re-created tables): advance the
        // epoch so every caller-held ProbeCache invalidates on next use.
        self.epoch += 1;
    }

    // ---- durable-store replay (ufilter_core::persist) ------------------

    /// Re-register a view from a durable `Add` record, preferring its
    /// serialized compile artifact over recompiling. Resolution order:
    /// **deferred hydration** (the artifact prelude's routing signature
    /// feeds the relevance index immediately; the ASG + marking decode
    /// waits for the view's first check — accepted only when the prelude
    /// carries this catalog's exact pipeline config) → compile-once cache
    /// hit on the canonical text → full recompile of `view_text`.
    /// `deps` is the record's relation list, restored verbatim along with
    /// the `cached` flag so `CATALOG LIST` output is byte-identical after
    /// a restart. Returns whether compiling was skipped.
    ///
    /// This is a [`replay`](Self::replay) building block: it never appends
    /// to an attached store.
    pub fn add_rehydrated(
        &mut self,
        name: &str,
        view_text: &str,
        deps: &[String],
        cached: bool,
        artifact: &[u8],
    ) -> Result<bool, CatalogError> {
        let schema = Arc::new(self.schema.clone());
        self.add_rehydrated_at(name, view_text, deps, cached, artifact, &schema)
    }

    /// [`add_rehydrated`](Self::add_rehydrated) against a caller-supplied
    /// schema snapshot — [`replay`](Self::replay) clones the schema once
    /// per DDL epoch instead of once per view.
    fn add_rehydrated_at(
        &mut self,
        name: &str,
        view_text: &str,
        deps: &[String],
        cached: bool,
        artifact: &[u8],
        schema: &Arc<DatabaseSchema>,
    ) -> Result<bool, CatalogError> {
        if self.views.contains_key(name) {
            return Err(CatalogError::DuplicateView { name: name.to_string() });
        }
        if let Ok((config, sig)) = persist::decode_artifact_header(artifact) {
            if config == self.config {
                // The prelude carries everything registration needs (the
                // routing signature and the config it was compiled under);
                // the ASG + marking decode is deferred to the view's first
                // check. Structural damage deeper in the artifact surfaces
                // there as a silent recompile, never an error. This path
                // does not even canonicalize the view text — replay cost per
                // warm view is the header decode plus two index inserts.
                self.index.insert_signature(name, sig);
                let seed = HydrationSeed {
                    view_text: view_text.to_string(),
                    artifact: artifact.to_vec(),
                    schema: Arc::clone(schema),
                    config,
                };
                self.views.insert(name.to_string(), Registered::lazy(seed, deps.to_vec(), cached));
                return Ok(true);
            }
        }
        // Blank, damaged, or foreign-version/config artifact: fall back to
        // the compile-once cache on the canonical text, then to an eager
        // recompile.
        let key = (canonicalize(view_text), self.config);
        if let Some(f) = self.compiled.get(&key) {
            // Identical text already compiled this session: share it.
            self.compile_hits += 1;
            let f = Arc::clone(f);
            self.index.insert(name, &f.asg);
            self.views.insert(name.to_string(), Registered::eager(f, cached));
            return Ok(true);
        }
        let f = UFilter::compile(view_text, &self.schema)
            .map(|f| f.with_config(self.config))
            .map_err(|error| CatalogError::Compile { name: name.to_string(), error })?;
        let f = Arc::new(f);
        self.compiled.insert(key, Arc::clone(&f));
        self.index.insert(name, &f.asg);
        self.views.insert(name.to_string(), Registered::eager(f, cached));
        Ok(false)
    }

    /// Rebuild the catalog from recovered records, in order: `Add`s
    /// rehydrate (see [`add_rehydrated`](Self::add_rehydrated)), `Drop`s
    /// unregister, `Ddl`s re-execute against `db` through the normal
    /// guarded path — so the relevance index, dependency postings and
    /// schema epoch come out exactly as if the original session had run.
    ///
    /// Must be called **before** [`attach_store`](Self::attach_store):
    /// replayed records are already on disk, and an attached store would
    /// append every one of them a second time.
    pub fn replay(
        &mut self,
        db: &mut Db,
        records: &[LogRecord],
    ) -> Result<ReplayStats, CatalogError> {
        if self.store.is_some() {
            return Err(CatalogError::Persist {
                detail: "replay must run before attach_store (records would be re-appended)".into(),
            });
        }
        let mut stats = ReplayStats::default();
        // One schema snapshot per DDL epoch: every lazily-hydrated view
        // captures the schema as of its position in the record order (the
        // schema it was originally compiled against), without a per-view
        // clone.
        let mut schema_epoch = Arc::new(self.schema.clone());
        for record in records {
            stats.records += 1;
            match record {
                LogRecord::Add { name, view_text, deps, cached, artifact } => {
                    stats.adds += 1;
                    if self.add_rehydrated_at(
                        name,
                        view_text,
                        deps,
                        *cached,
                        artifact,
                        &schema_epoch,
                    )? {
                        stats.rehydrated += 1;
                    } else {
                        stats.recompiled += 1;
                    }
                }
                LogRecord::Drop { name } => {
                    stats.drops += 1;
                    self.drop_view(name)?;
                }
                LogRecord::Ddl { sql } => {
                    stats.ddl += 1;
                    self.execute_guarded(db, sql)?;
                    schema_epoch = Arc::new(self.schema.clone());
                }
            }
        }
        Ok(stats)
    }

    /// Check a stream of raw update texts. Parsing is amortized: each
    /// distinct text is parsed once, however often it recurs in the stream.
    /// Items naming an unregistered view or failing to parse get a
    /// per-item invalid report; they never abort the batch.
    pub fn check_batch_text(&self, items: &[(String, String)], db: &mut Db) -> BatchReport {
        self.check_batch_text_with_cache(items, db, &mut ProbeCache::new())
    }

    /// [`check_batch_text`](Self::check_batch_text) with a caller-supplied
    /// probe cache that outlives the batch. This is the long-running-service
    /// entry point: a `ufilter-service` worker keeps one cache per worker
    /// across its whole lifetime, so probe results survive from one request
    /// to the next. Sound only while the probed base tables do not change
    /// between batches (the service is check-only, so they do not).
    /// Reported [`BatchStats`] hit/miss counters are per-call deltas.
    pub fn check_batch_text_with_cache(
        &self,
        items: &[(String, String)],
        db: &mut Db,
        cache: &mut ProbeCache,
    ) -> BatchReport {
        let refs: Vec<(&str, &str)> = items.iter().map(|(v, t)| (v.as_str(), t.as_str())).collect();
        self.check_batch_refs(&refs, db, cache)
    }

    /// [`check_batch_text_with_cache`](Self::check_batch_text_with_cache)
    /// over borrowed items — the zero-copy entry point the sharded service
    /// catalog feeds worker partitions through.
    pub fn check_batch_refs(
        &self,
        items: &[(&str, &str)],
        db: &mut Db,
        cache: &mut ProbeCache,
    ) -> BatchReport {
        let mut parsed: HashMap<&str, Result<UpdateStmt, String>> = HashMap::new();
        let mut parse_hits = 0;
        let mut stream: Vec<(usize, &str, Result<UpdateStmt, String>)> =
            Vec::with_capacity(items.len());
        for (i, (view, text)) in items.iter().copied().enumerate() {
            let entry = match parsed.get(text) {
                Some(r) => {
                    parse_hits += 1;
                    r.clone()
                }
                None => {
                    let span = obs::clock();
                    let r = parse_update(text).map_err(|e| e.to_string());
                    obs::stage_elapsed(Stage::Parse, span);
                    parsed.insert(text, r.clone());
                    r
                }
            };
            stream.push((i, view, entry));
        }
        let mut report = self.run_batch(&stream, db, cache);
        report.stats.parse_hits = parse_hits;
        report
    }

    /// Check a stream of already-parsed updates (see the module docs; this
    /// is the amortized, check-only batch engine).
    pub fn check_batch(&self, items: &[(String, UpdateStmt)], db: &mut Db) -> BatchReport {
        let stream: Vec<(usize, &str, Result<UpdateStmt, String>)> = items
            .iter()
            .enumerate()
            .map(|(i, (view, u))| (i, view.as_str(), Ok(u.clone())))
            .collect();
        self.run_batch(&stream, db, &mut ProbeCache::new())
    }

    /// The shared batch engine: resolve every update once, group by
    /// (view, resolved target node), then run the groups back-to-back over
    /// one probe cache so same-target probes share scans.
    fn run_batch(
        &self,
        stream: &[(usize, &str, Result<UpdateStmt, String>)],
        db: &mut Db,
        cache: &mut ProbeCache,
    ) -> BatchReport {
        // A caller-held cache filled before a schema change must not answer
        // probes issued after it.
        cache.sync_epoch(self.epoch);
        let (hits_before, misses_before) = (cache.hits(), cache.misses());
        let mut stats = BatchStats { items: stream.len(), ..BatchStats::default() };
        let mut items: Vec<BatchItemReport> = Vec::with_capacity(stream.len());
        // (view, target node) → resolved work items awaiting the group pass.
        type Group<'a> = Vec<(usize, &'a str, Vec<crate::target::ResolvedAction>)>;
        let mut groups: BTreeMap<(&str, usize), Group> = BTreeMap::new();

        for (index, view, parsed) in stream {
            let u = match parsed {
                Ok(u) => u,
                Err(m) => {
                    items.push(BatchItemReport {
                        index: *index,
                        view: view.to_string(),
                        reports: vec![malformed(m.clone())],
                    });
                    continue;
                }
            };
            let Some(reg) = self.views.get(*view) else {
                items.push(BatchItemReport {
                    index: *index,
                    view: view.to_string(),
                    reports: vec![malformed(format!("no view named '{view}' in the catalog"))],
                });
                continue;
            };
            match resolve(&reg.filter().asg, u) {
                Ok(actions) => {
                    let target = actions.first().map(|a| a.node.0).unwrap_or(0);
                    groups.entry((view, target)).or_default().push((*index, view, actions));
                }
                Err(reason) => {
                    // Mirror UFilter::run's resolution-failure report.
                    items.push(BatchItemReport {
                        index: *index,
                        view: view.to_string(),
                        reports: vec![CheckReport {
                            trace: vec![(
                                crate::outcome::CheckStep::Validation,
                                reason.to_string(),
                            )],
                            outcome: crate::outcome::CheckOutcome::Invalid(reason),
                        }],
                    });
                }
            }
        }

        stats.target_groups = groups.len();
        // Hybrid check-only probes execute-and-undo; inside a caller-held
        // transaction that undo is impossible in place, so run_hybrid falls
        // back to cloning the database per action. Pay the copy once for the
        // whole batch instead: check against a committed snapshot of the
        // caller's current (uncommitted) state and discard it afterwards.
        let mut scratch;
        let db: &mut Db =
            if self.config.strategy == crate::datacheck::Strategy::Hybrid && db.in_transaction() {
                scratch = db.clone();
                scratch.commit().expect("clone carries the active transaction");
                &mut scratch
            } else {
                db
            };
        for ((view, _target), group) in groups {
            let filter = self.views[view].filter();
            for (index, view, actions) in group {
                let reports = filter.run_resolved(&actions, Some(db), false, cache);
                items.push(BatchItemReport { index, view: view.to_string(), reports });
            }
        }
        stats.probe_hits = cache.hits() - hits_before;
        stats.probe_misses = cache.misses() - misses_before;
        items.sort_by_key(|i| i.index);
        BatchReport { items, stats }
    }

    // ---- catalog-wide fan-out (ufilter-route) --------------------------

    /// Check one update against **every view it could affect**: route it
    /// through the relevance index, then run the unchanged per-view
    /// pipeline on the candidates only. Per-candidate outcomes are
    /// byte-identical (in wire form) to checking that view directly.
    pub fn check_all(&self, update_text: &str, db: &mut Db) -> FanoutReport {
        self.check_all_batch_refs(&[update_text], db, &mut ProbeCache::new())
    }

    /// [`check_all`](Self::check_all) over a stream of updates, sharing
    /// parse results and one probe cache across the whole fan-out.
    pub fn check_all_batch(&self, updates: &[String], db: &mut Db) -> FanoutReport {
        let refs: Vec<&str> = updates.iter().map(String::as_str).collect();
        self.check_all_batch_refs(&refs, db, &mut ProbeCache::new())
    }

    /// The borrowed, caller-cached fan-out entry point (the service layer
    /// feeds worker partitions through this).
    pub fn check_all_batch_refs(
        &self,
        updates: &[&str],
        db: &mut Db,
        cache: &mut ProbeCache,
    ) -> FanoutReport {
        self.fan_out(updates, db, cache, true)
    }

    /// The brute-force baseline: identical to
    /// [`check_all_batch_refs`](Self::check_all_batch_refs) but with the
    /// relevance index bypassed — every registered view is a candidate for
    /// every update. This is both the benchmark baseline and the oracle
    /// the differential soundness test compares routing against.
    pub fn check_all_brute(
        &self,
        updates: &[&str],
        db: &mut Db,
        cache: &mut ProbeCache,
    ) -> FanoutReport {
        self.fan_out(updates, db, cache, false)
    }

    /// Shared fan-out engine. Parses each distinct update text once,
    /// routes it (or takes all views when `use_index` is off), then pushes
    /// every surviving (update, view) pair through the batch engine so
    /// same-target candidates share probe scans. Items come back sorted by
    /// `(update index, view name)` — the exact order of a per-update loop
    /// over name-sorted candidate views.
    fn fan_out(
        &self,
        updates: &[&str],
        db: &mut Db,
        cache: &mut ProbeCache,
        use_index: bool,
    ) -> FanoutReport {
        let mut fanout = FanoutStats { views: self.views.len(), ..FanoutStats::default() };
        let mut items: Vec<FanoutItem> = Vec::new();
        let mut parsed: HashMap<&str, Result<UpdateStmt, String>> = HashMap::new();
        // (update index, view) for every candidate pair; the parsed
        // statement is cloned out of `parsed` only at stream build.
        let mut work: Vec<(usize, String)> = Vec::new();
        for (ui, text) in updates.iter().copied().enumerate() {
            let entry = parsed.entry(text).or_insert_with(|| {
                let span = obs::clock();
                let r = parse_update(text).map_err(|e| e.to_string());
                obs::stage_elapsed(Stage::Parse, span);
                r
            });
            match entry {
                Err(m) => {
                    // Unparsable text fails identically for every view —
                    // emit the same per-view malformed reports the
                    // brute-force loop would.
                    fanout.fanout_requests += 1;
                    fanout.fallbacks += 1;
                    fanout.candidates += self.views.len();
                    for name in self.views.keys() {
                        items.push(FanoutItem {
                            update: ui,
                            view: name.clone(),
                            reports: vec![malformed(m.clone())],
                        });
                    }
                }
                Ok(u) => {
                    let span = obs::clock();
                    let route = if use_index {
                        self.index.route(u)
                    } else {
                        Route {
                            candidates: self.views.keys().cloned().collect(),
                            views: self.views.len(),
                            ..Route::default()
                        }
                    };
                    obs::stage_elapsed(Stage::Route, span);
                    obs::record_route_candidates(route.candidates.len());
                    fanout.absorb(&route);
                    for view in route.candidates {
                        work.push((ui, view));
                    }
                }
            }
        }
        let stream: Vec<(usize, &str, Result<UpdateStmt, String>)> = work
            .iter()
            .enumerate()
            .map(|(seq, (ui, view))| (seq, view.as_str(), parsed[updates[*ui]].clone()))
            .collect();
        let report = self.run_batch(&stream, db, cache);
        for item in report.items {
            let (ui, view) = &work[item.index];
            items.push(FanoutItem { update: *ui, view: view.clone(), reports: item.reports });
        }
        items.sort_by(|a, b| (a.update, a.view.as_str()).cmp(&(b.update, b.view.as_str())));
        FanoutReport { items, fanout, batch: report.stats }
    }
}

/// Whether `stmt` is schema-affecting DDL the catalog guards (the single
/// source of truth for that classification — the CLI consults it too).
pub fn is_schema_ddl(stmt: &Stmt) -> bool {
    matches!(stmt, Stmt::CreateTable(_) | Stmt::DropTable(_))
}

/// Canonical form of a view text: `(: … :)` comments stripped (they lex as
/// whitespace — nesting and string literals respected), then whitespace
/// runs outside string literals collapsed to one space, trimmed. Keys the
/// compile-once cache, so neither formatting nor comment differences defeat
/// it — while quoted literals (which are data, not formatting) stay
/// byte-exact.
fn canonicalize(text: &str) -> String {
    let text = ufilter_xquery::strip_comments(text);
    let text = text.as_str();
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    let mut in_quote: Option<char> = None;
    for c in text.trim().chars() {
        if let Some(q) = in_quote {
            out.push(c);
            if c == q {
                in_quote = None;
            }
            continue;
        }
        match c {
            '"' | '\'' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                in_quote = Some(c);
                out.push(c);
            }
            c if c.is_whitespace() => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c);
            }
        }
    }
    out
}
