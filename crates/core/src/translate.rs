//! The update translation engine: build the relational update sequence `U`
//! for a schema-approved view update, together with the probes the Step-3
//! data checks need.
//!
//! Deletes anchor on the Rule-2 witness relation (the *clean extended
//! source*) and let the engine's foreign-key policies cascade, which is
//! exactly the "delete a clean extended source" prescription of \[32\]; under
//! the translation-minimization condition, shared sources (the other
//! relations of `CR(v)`) are retained — deleting them would surface as a
//! side effect wherever else the view exposes them (u9's publisher).
//!
//! Inserts decompose the fragment into per-relation tuples, propagate key
//! values through join equalities, check *shared* relations for existence +
//! duplication consistency (u4), and emit plain single-table INSERTs.

use std::collections::HashMap;

use ufilter_asg::{AsgNodeId, AsgNodeKind, ViewAsg};
use ufilter_rdb::{ColRef, DatabaseSchema, Delete, Expr, Insert, Row, Select, Stmt, Update, Value};
use ufilter_xml::{Document, NodeId};
use ufilter_xquery::UpdateKind;

use crate::outcome::{CheckOutcome, CheckStep};
use crate::probe::{build_probe, path_info, SelectSpec};
use crate::star::StarMarking;
use crate::target::{clean_text, ResolvedAction};

/// A shared-relation check (existence + duplication consistency).
#[derive(Debug, Clone)]
pub struct SharedCheck {
    /// The shared relation the fragment writes into.
    pub relation: String,
    /// Key columns identifying the shared row.
    pub key_cols: Vec<String>,
    /// Key values the fragment supplies for those columns.
    pub key_vals: Vec<Value>,
    /// All values the fragment supplies for this relation.
    pub supplied: Vec<(String, Value)>,
}

/// A data-driven gate run before the plan may execute — the plan-level
/// analogue of the outside strategy's key-conflict probe. Value-element
/// inserts demand an *empty* probe ("the value slot must still be empty");
/// foreign-key existence gates demand a *non-empty* one ("the referenced
/// row must already be stored").
#[derive(Debug, Clone)]
pub struct Precondition {
    /// Probe query deciding the gate.
    pub probe: Select,
    /// When `true`, any returned row rejects the update; when `false`, an
    /// empty result rejects it.
    pub expect_empty: bool,
    /// Reason reported when the gate fails.
    pub reason: String,
}

/// One translated statement with its optional outside-strategy pre-probe.
#[derive(Debug, Clone)]
pub struct PlannedStmt {
    /// The translated SQL statement.
    pub stmt: Stmt,
    /// Probe run by the outside strategy before issuing the statement:
    /// for inserts, a key-conflict probe (non-empty ⇒ reject); for deletes
    /// and updates, an existence probe (empty ⇒ skip the statement).
    pub probe: Option<Select>,
    /// The relation the statement writes.
    pub relation: String,
}

/// The full translation plan for one action.
#[derive(Debug, Clone)]
pub struct TranslationPlan {
    /// Context probe (§6.1); `None` when the context is the view root.
    pub context_probe: Option<Select>,
    /// Materialized-probe table name (`TAB_book` in the paper).
    pub tab_name: Option<String>,
    /// Refined-mode shared-data conditions to discharge (Observation 2).
    pub shared_checks: Vec<SharedCheck>,
    /// Reject-if-nonempty probes evaluated before any statement runs.
    pub preconditions: Vec<Precondition>,
    /// The translated statements, in execution order.
    pub statements: Vec<PlannedStmt>,
    /// Human-readable planning notes for the report trace.
    pub notes: Vec<String>,
}

impl TranslationPlan {
    /// Just the SQL statements, in execution order.
    pub fn sql(&self) -> Vec<Stmt> {
        self.statements.iter().map(|p| p.stmt.clone()).collect()
    }
}

/// Failure during plan construction → final outcome.
pub type PlanResult = Result<TranslationPlan, CheckOutcome>;

fn untranslatable(step: CheckStep, reason: impl Into<String>) -> CheckOutcome {
    CheckOutcome::Untranslatable { step, reason: reason.into() }
}

/// Build the plan. `context_rows` are the results of the already-executed
/// context probe (empty slice when the context is the root).
pub fn build_plan(
    asg: &ViewAsg,
    marking: &StarMarking,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
    context_probe: Option<Select>,
    context_rows: &[(Vec<ColRef>, Row)],
    tab_name: Option<String>,
) -> PlanResult {
    let mut plan = TranslationPlan {
        context_probe,
        tab_name,
        shared_checks: Vec::new(),
        preconditions: Vec::new(),
        statements: Vec::new(),
        notes: Vec::new(),
    };
    let ctx_cols: Vec<ColRef> =
        context_rows.first().map(|(cols, _)| cols.clone()).unwrap_or_default();
    let is_value_target =
        matches!(asg.node(action.node).kind, AsgNodeKind::Tag | AsgNodeKind::Leaf);
    match action.kind {
        UpdateKind::Delete => {
            plan_delete(asg, marking, schema, action, &ctx_cols, &mut plan)?;
        }
        UpdateKind::Replace if is_value_target && action.fragment.is_some() => {
            plan_value_set(asg, schema, action, &mut plan)?;
        }
        UpdateKind::Replace => {
            plan_delete(asg, marking, schema, action, &ctx_cols, &mut plan)?;
        }
        UpdateKind::Insert if is_value_target => {
            plan_value_insert(asg, schema, action, &mut plan)?;
        }
        UpdateKind::Insert => {
            plan_insert(asg, marking, schema, action, context_rows, &mut plan)?;
        }
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// deletes
// ---------------------------------------------------------------------------

fn plan_delete(
    asg: &ViewAsg,
    marking: &StarMarking,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
    ctx_cols: &[ColRef],
    plan: &mut TranslationPlan,
) -> Result<(), CheckOutcome> {
    let node = asg.node(action.node);
    match node.kind {
        AsgNodeKind::Root => {
            // Deleting the root empties the view: delete each top-level
            // repeated element's anchor under the view predicates.
            for c in &node.children {
                if asg.node(*c).kind == AsgNodeKind::Internal {
                    emit_anchor_delete(asg, marking, schema, *c, action, ctx_cols, plan)?;
                }
            }
            Ok(())
        }
        AsgNodeKind::Internal => {
            emit_anchor_delete(asg, marking, schema, action.node, action, ctx_cols, plan)
        }
        // Unreachable: the non-injective classification rejects aggregate
        // targets before planning. Kept as a defensive error, not a panic.
        AsgNodeKind::Aggregate => Err(untranslatable(
            CheckStep::NonInjective,
            format!("<{}> is aggregated output and cannot be translated", node.tag),
        )),
        AsgNodeKind::Tag | AsgNodeKind::Leaf => {
            // Valid value deletion (cardinality ?): SET NULL on the column.
            let leaf = crate::target::find_leaf(asg, action.node)
                .ok_or_else(|| untranslatable(CheckStep::Star, "no leaf under target"))?
                .clone();
            let owner = schema
                .table(&leaf.name.table)
                .ok_or_else(|| untranslatable(CheckStep::Star, "unknown relation"))?;
            let parent_internal = asg.internal_ancestor(action.node).unwrap_or(asg.root());
            let info = path_info(asg, parent_internal);
            let key_cols: Vec<ColRef> = owner
                .primary_key
                .iter()
                .map(|k| ColRef::new(owner.name.clone(), k.clone()))
                .collect();
            let probe = build_probe(
                schema,
                &info,
                &action.predicates,
                &SelectSpec::Columns(key_cols.clone()),
            );
            let where_clause = in_probe_pred(&key_cols, &probe);
            plan.statements.push(PlannedStmt {
                stmt: Stmt::Update(Update {
                    table: owner.name.clone(),
                    assignments: vec![(leaf.name.column.clone(), Value::Null)],
                    where_clause: Some(where_clause),
                }),
                probe: Some(probe),
                relation: owner.name.clone(),
            });
            Ok(())
        }
    }
}

fn emit_anchor_delete(
    asg: &ViewAsg,
    marking: &StarMarking,
    schema: &DatabaseSchema,
    node: AsgNodeId,
    action: &ResolvedAction,
    ctx_cols: &[ColRef],
    plan: &mut TranslationPlan,
) -> Result<(), CheckOutcome> {
    let anchor = marking.delete_anchor.get(&node).cloned().ok_or_else(|| {
        untranslatable(
            CheckStep::Star,
            format!("<{}> has no clean extended source to anchor the delete", asg.node(node).tag),
        )
    })?;
    let table = schema
        .table(&anchor)
        .ok_or_else(|| untranslatable(CheckStep::Star, format!("unknown relation {anchor}")))?;

    let push_minimization_notes = |plan: &mut TranslationPlan| {
        // Translation minimization: shared sources of CR(v) are retained.
        for r in asg.cr(node) {
            if !r.eq_ignore_ascii_case(&anchor) {
                plan.notes.push(format!(
                    "minimization: shared source {r} retained (removal would side-effect \
                     other view elements)"
                ));
            }
        }
    };

    // Preferred translation: key the delete on the parent link, like the
    // paper's U3 — `DELETE FROM anchor WHERE link_col IN (SELECT parent_col
    // FROM …)`. The outside strategy's inner SELECT ranges over the
    // materialized TAB (unindexed, §7.2); the hybrid strategy inlines the
    // context join itself (indexed), materializing nothing.
    // Requires every update predicate to be covered: applied by the context
    // probe, or constraining the anchor relation directly (conjoined here).
    let ctx_rel = |t: &str| ctx_cols.iter().any(|c| c.table.eq_ignore_ascii_case(t));
    let anchor_preds: Vec<&(ColRef, ufilter_rdb::CmpOp, Value)> = action
        .predicates
        .iter()
        .filter(|(c, _, _)| c.table.eq_ignore_ascii_case(&anchor))
        .collect();
    let all_covered = action
        .predicates
        .iter()
        .all(|(c, _, _)| ctx_rel(&c.table) || c.table.eq_ignore_ascii_case(&anchor));
    if all_covered {
        if let Some((anchor_col, parent)) = tab_link(asg, schema, node, &anchor, ctx_cols) {
            let inner: Option<Select> = if let Some(tab) = &plan.tab_name {
                Some(Select::new(
                    vec![ufilter_rdb::SelectItem::Expr {
                        expr: Expr::col("", parent.column.clone()),
                        alias: None,
                    }],
                    vec![ufilter_rdb::FromItem::Table(ufilter_rdb::TableRef::named(tab.clone()))],
                    None,
                ))
            } else {
                plan.context_probe.as_ref().map(|cp| {
                    Select::new(
                        vec![ufilter_rdb::SelectItem::Expr {
                            expr: Expr::Column(parent.clone()),
                            alias: None,
                        }],
                        cp.from.clone(),
                        cp.where_clause.clone(),
                    )
                })
            };
            if let Some(inner) = inner {
                let mut conj = vec![Expr::InSubquery {
                    expr: Box::new(Expr::col(table.name.clone(), anchor_col.clone())),
                    query: Box::new(inner.clone()),
                    negated: false,
                }];
                for (c, op, v) in &anchor_preds {
                    conj.push(Expr::cmp(*op, Expr::Column((*c).clone()), Expr::lit((*v).clone())));
                }
                let where_clause = Expr::and(conj.clone());
                let probe = Select::new(
                    vec![ufilter_rdb::SelectItem::Expr {
                        expr: Expr::col(table.name.clone(), "rowid"),
                        alias: None,
                    }],
                    vec![ufilter_rdb::FromItem::Table(ufilter_rdb::TableRef::named(
                        table.name.clone(),
                    ))],
                    Some(Expr::and(conj)),
                );
                plan.statements.push(PlannedStmt {
                    stmt: Stmt::Delete(Delete {
                        table: table.name.clone(),
                        where_clause: Some(where_clause),
                    }),
                    probe: Some(probe),
                    relation: table.name.clone(),
                });
                push_minimization_notes(plan);
                return Ok(());
            }
        }
    }

    // Fallback: self-join form — `DELETE FROM anchor WHERE pk IN (full
    // path probe selecting the anchor's key)`.
    let info = path_info(asg, node);
    let key_cols: Vec<ColRef> =
        table.primary_key.iter().map(|k| ColRef::new(table.name.clone(), k.clone())).collect();
    let probe =
        build_probe(schema, &info, &action.predicates, &SelectSpec::Columns(key_cols.clone()));
    let where_clause = in_probe_pred(&key_cols, &probe);
    plan.statements.push(PlannedStmt {
        stmt: Stmt::Delete(Delete { table: table.name.clone(), where_clause: Some(where_clause) }),
        probe: Some(probe),
        relation: table.name.clone(),
    });
    push_minimization_notes(plan);
    Ok(())
}

/// Find the column pairing `(anchor_col, parent_colref)` linking the
/// anchor relation to the update context: either through the deleted
/// node's edge condition (child side on the anchor, parent side present in
/// the context header), or — when the deleted node *is* the context —
/// through the anchor's single-column primary key.
fn tab_link(
    asg: &ViewAsg,
    schema: &DatabaseSchema,
    node: AsgNodeId,
    anchor: &str,
    ctx_cols: &[ColRef],
) -> Option<(String, ColRef)> {
    let in_ctx = |col: &ColRef| {
        ctx_cols.iter().any(|c| {
            c.column.eq_ignore_ascii_case(&col.column)
                && (c.table.is_empty() || c.table.eq_ignore_ascii_case(&col.table))
        })
    };
    for jc in &asg.node(node).conditions {
        for (child, parent) in [(&jc.left, &jc.right), (&jc.right, &jc.left)] {
            if child.table.eq_ignore_ascii_case(anchor) && in_ctx(parent) {
                return Some((child.column.clone(), parent.clone()));
            }
        }
    }
    // Node is (or shares relations with) the context: single-column PK.
    let table = schema.table(anchor)?;
    if table.primary_key.len() == 1 {
        let pk = &table.primary_key[0];
        let pk_ref = ColRef::new(table.name.clone(), pk.clone());
        if in_ctx(&pk_ref) {
            return Some((pk.clone(), pk_ref));
        }
    }
    None
}

/// `(k1, …) IN (probe)` — single-key probes use `IN (SELECT …)`; composite
/// keys fall back to a conjunction per probe row resolved at execution.
fn in_probe_pred(key_cols: &[ColRef], probe: &Select) -> Expr {
    if key_cols.len() == 1 {
        Expr::InSubquery {
            expr: Box::new(Expr::Column(key_cols[0].clone())),
            query: Box::new(probe.clone()),
            negated: false,
        }
    } else {
        // Composite key: compare each column against the probe's projection
        // via correlated IN per column is unsound in general; the executor
        // path for composite keys re-runs the probe and expands to a
        // disjunction of conjunctions. Here we emit the expanded form lazily
        // as an `InSubquery` on the first column plus residuals — the
        // datacheck layer expands composite deletes row-by-row instead.
        Expr::InSubquery {
            expr: Box::new(Expr::Column(key_cols[0].clone())),
            query: Box::new(probe.clone()),
            negated: false,
        }
    }
}

// ---------------------------------------------------------------------------
// value-element ops
// ---------------------------------------------------------------------------
//
// Materialization omits NULL columns, so a cardinality-? value element is
// *absent* exactly when its column is NULL. Inserting one into an existing
// region is therefore `UPDATE … SET col = v` gated on the slot being empty,
// and replacing one swaps the value only where it is currently present
// (`… AND col IS NOT NULL`), mirroring the XML-side in-place replace.

/// Resolve the pieces every value-element translation needs: the leaf
/// column, its owning table, the region probe keyed on that table's primary
/// key, and the parsed replacement value.
#[allow(clippy::type_complexity)]
fn value_parts(
    asg: &ViewAsg,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
) -> Result<(ufilter_asg::LeafInfo, String, Vec<ColRef>, Select, Value), CheckOutcome> {
    let node = asg.node(action.node);
    if node.card.is_starred() {
        return Err(untranslatable(
            CheckStep::Star,
            format!("<{}> is a repeating value element; no single SET targets it", node.tag),
        ));
    }
    let leaf = crate::target::find_leaf(asg, action.node)
        .ok_or_else(|| untranslatable(CheckStep::Star, "no leaf under target"))?
        .clone();
    let owner = schema
        .table(&leaf.name.table)
        .ok_or_else(|| untranslatable(CheckStep::Star, "unknown relation"))?;
    let parent_internal = asg.internal_ancestor(action.node).unwrap_or(asg.root());
    let info = path_info(asg, parent_internal);
    let key_cols: Vec<ColRef> =
        owner.primary_key.iter().map(|k| ColRef::new(owner.name.clone(), k.clone())).collect();
    let probe =
        build_probe(schema, &info, &action.predicates, &SelectSpec::Columns(key_cols.clone()));
    let frag = action.fragment.as_ref().expect("value op carries a fragment");
    let text = clean_text(&frag.text_content(frag.root()));
    let value = Value::parse_as(&text, leaf.ty).unwrap_or(Value::Str(text));
    Ok((leaf, owner.name.clone(), key_cols, probe, value))
}

/// `SELECT rowid FROM R WHERE pk IN (region probe) AND col IS (NOT) NULL`.
fn value_slot_probe(
    table: &str,
    key_cols: &[ColRef],
    region: &Select,
    col: &str,
    present: bool,
) -> Select {
    let slot = Expr::IsNull { expr: Box::new(Expr::col(table, col)), negated: present };
    Select::new(
        vec![SelectItemExpr(Expr::col(table, "rowid"))],
        vec![FromTable(table)],
        Some(Expr::and(vec![in_probe_pred(key_cols, region), slot])),
    )
}

/// INSERT of a value element into an existing region: the slot must be
/// empty everywhere the region probe matches (view-schema cardinality `?`
/// admits at most one occurrence), then `UPDATE … SET col = v`.
fn plan_value_insert(
    asg: &ViewAsg,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
    plan: &mut TranslationPlan,
) -> Result<(), CheckOutcome> {
    let (leaf, table, key_cols, probe, value) = value_parts(asg, schema, action)?;
    let col = leaf.name.column.clone();
    plan.preconditions.push(Precondition {
        probe: value_slot_probe(&table, &key_cols, &probe, &col, true),
        expect_empty: true,
        reason: format!(
            "<{}> already present: {} holds a value, and a second occurrence would \
             violate the view schema",
            asg.node(action.node).tag,
            leaf.name
        ),
    });
    let where_clause = Expr::and(vec![
        in_probe_pred(&key_cols, &probe),
        Expr::IsNull { expr: Box::new(Expr::col(table.clone(), col.clone())), negated: false },
    ]);
    plan.statements.push(PlannedStmt {
        stmt: Stmt::Update(Update {
            table: table.clone(),
            assignments: vec![(col.clone(), value)],
            where_clause: Some(where_clause.clone()),
        }),
        probe: Some(value_slot_probe(&table, &key_cols, &probe, &col, false)),
        relation: table,
    });
    plan.notes.push("value insert: filling an empty optional column slot".into());
    Ok(())
}

/// REPLACE of a value element: swap the value wherever it currently
/// exists; absent occurrences stay absent (the XML replace matches only
/// existing elements).
fn plan_value_set(
    asg: &ViewAsg,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
    plan: &mut TranslationPlan,
) -> Result<(), CheckOutcome> {
    let (leaf, table, key_cols, probe, value) = value_parts(asg, schema, action)?;
    let col = leaf.name.column.clone();
    let where_clause = Expr::and(vec![
        in_probe_pred(&key_cols, &probe),
        Expr::IsNull { expr: Box::new(Expr::col(table.clone(), col.clone())), negated: true },
    ]);
    plan.statements.push(PlannedStmt {
        stmt: Stmt::Update(Update {
            table: table.clone(),
            assignments: vec![(col, value)],
            where_clause: Some(where_clause),
        }),
        probe: Some(value_slot_probe(&table, &key_cols, &probe, &leaf.name.column, true)),
        relation: table,
    });
    plan.notes.push("value replace: in-place SET on the present occurrences".into());
    Ok(())
}

// ---------------------------------------------------------------------------
// inserts
// ---------------------------------------------------------------------------

/// Per-relation tuple under construction.
#[derive(Debug, Clone, Default)]
struct TupleDraft {
    values: Vec<(String, Value)>,
}

impl TupleDraft {
    fn get(&self, col: &str) -> Option<&Value> {
        self.values.iter().find(|(c, _)| c.eq_ignore_ascii_case(col)).map(|(_, v)| v)
    }

    /// Returns `false` on a conflicting re-assignment (duplication
    /// inconsistency inside the fragment).
    fn set(&mut self, col: &str, v: Value) -> bool {
        match self.get(col) {
            Some(existing) => existing.sql_eq(&v) == Some(true) || existing.is_null(),
            None => {
                self.values.push((col.to_string(), v));
                true
            }
        }
    }
}

fn plan_insert(
    asg: &ViewAsg,
    marking: &StarMarking,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
    context_rows: &[(Vec<ColRef>, Row)],
    plan: &mut TranslationPlan,
) -> Result<(), CheckOutcome> {
    let frag = action.fragment.as_ref().expect("insert carries a fragment");
    // One insert group per matched context instance (root context → one).
    let contexts: Vec<Option<&(Vec<ColRef>, Row)>> =
        if context_rows.is_empty() { vec![None] } else { context_rows.iter().map(Some).collect() };
    for ctx in contexts {
        emit_insert_group(asg, marking, schema, action.node, frag, frag.root(), ctx, plan)?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_insert_group(
    asg: &ViewAsg,
    marking: &StarMarking,
    schema: &DatabaseSchema,
    node: AsgNodeId,
    frag: &Document,
    el: NodeId,
    ctx: Option<&(Vec<ColRef>, Row)>,
    plan: &mut TranslationPlan,
) -> Result<(), CheckOutcome> {
    // 1. Collect leaf values for the non-starred subtree of `node`.
    let mut drafts: HashMap<String, TupleDraft> = HashMap::new();
    for (_, table) in &asg.node(node).bindings {
        drafts.entry(table.to_ascii_lowercase()).or_default();
    }
    let mut nested: Vec<(AsgNodeId, NodeId)> = Vec::new();
    collect_values(asg, node, frag, el, &mut drafts, &mut nested)?;

    // 2. Propagate values through join equalities (node conditions +
    //    context row values).
    let resolve_ctx = |col: &ColRef| -> Option<Value> {
        let (cols, row) = ctx?;
        cols.iter()
            .position(|c| {
                c.matches(&col.table, &col.column)
                    || c.column.eq_ignore_ascii_case(&col.column) && c.table.is_empty()
            })
            .map(|i| row[i].clone())
    };
    let mut changed = true;
    while changed {
        changed = false;
        for jc in &asg.node(node).conditions {
            let pairs = [(&jc.left, &jc.right), (&jc.right, &jc.left)];
            for (src, dst) in pairs {
                let src_val = drafts
                    .get(&src.table.to_ascii_lowercase())
                    .and_then(|d| d.get(&src.column))
                    .cloned()
                    .or_else(|| resolve_ctx(src));
                if let Some(v) = src_val {
                    if v.is_null() {
                        continue;
                    }
                    if let Some(d) = drafts.get_mut(&dst.table.to_ascii_lowercase()) {
                        match d.get(&dst.column) {
                            None => {
                                d.set(&dst.column, v.clone());
                                changed = true;
                            }
                            // The join equality must actually hold between the
                            // fragment and the targeted context instance, or
                            // the inserted element can never surface under that
                            // instance: any SQL we emit either does nothing
                            // visible there (a silent side effect elsewhere) or
                            // nothing at all while the XML side still grows.
                            Some(have) if have.sql_eq(&v) == Some(false) => {
                                return Err(untranslatable(
                                    CheckStep::DataPoint,
                                    format!(
                                        "the fragment fixes {dst} = {have} but the view's \
                                         join with the targeted context requires {src} = {v}; \
                                         the inserted element can never appear at this position",
                                    ),
                                ));
                            }
                            Some(_) => {}
                        }
                    }
                }
            }
        }
    }

    // 2b. Hidden view predicates: columns the view never projects but its
    // non-correlation predicates range over (`book.year > 1990`) must still
    // be satisfied, or the inserted element silently fails to appear — a
    // lost update. Synthesize a witness value, as the paper's own U2 does
    // (`year = 1994`).
    let hidden = path_info(asg, node).local_preds;
    for (rel, draft) in drafts.iter_mut() {
        let mut per_column: HashMap<String, ufilter_rdb::sat::Domain> = HashMap::new();
        for lp in &hidden {
            if !lp.column.table.eq_ignore_ascii_case(rel) {
                continue;
            }
            let supplied = draft.get(&lp.column.column).map(|v| !v.is_null()).unwrap_or(false);
            if supplied {
                continue; // fragment provided it; Step 1 validated it
            }
            // Synthesis is only sound for columns the view never shows.
            // A *projected* predicate column fixes visible content: an
            // invented value would surface as an element the fragment
            // never contained (a silent side effect), and NULL would keep
            // the element out of the view (a lost update). Either way the
            // fragment must spell the value out.
            if projected_in_subtree(asg, node, &lp.column) {
                return Err(untranslatable(
                    CheckStep::DataPoint,
                    format!(
                        "the view constrains and projects {}; the fragment must \
                         supply its element explicitly or the inserted content \
                         cannot appear as given",
                        lp.column
                    ),
                ));
            }
            // Nor is synthesis sound for foreign-key columns: a witness
            // picked from the predicate's value domain is not guaranteed to
            // reference a stored parent row, and NULL keeps the row out of
            // the view (three-valued predicates). Which parent the new row
            // attaches to is the updater's decision, not ours.
            if schema.table(rel).is_some_and(|t| {
                t.foreign_keys
                    .iter()
                    .any(|fk| fk.columns.iter().any(|c| c.eq_ignore_ascii_case(&lp.column.column)))
            }) {
                return Err(untranslatable(
                    CheckStep::DataPoint,
                    format!(
                        "the view constrains {}, a foreign-key column the fragment \
                         does not determine; no synthesized value is guaranteed to \
                         reference an existing row",
                        lp.column
                    ),
                ));
            }
            per_column
                .entry(lp.column.column.to_ascii_lowercase())
                .or_default()
                .constrain(lp.op, &lp.value);
        }
        for (col, domain) in per_column {
            let ty = schema.table(rel).and_then(|t| t.column_named(&col).map(|c| c.ty));
            match domain.witness(ty) {
                Some(v) => {
                    plan.notes.push(format!(
                        "hidden view predicate on {rel}.{col}: synthesized {v} so the \
                         inserted element appears in the view"
                    ));
                    draft.set(&col, v);
                }
                None => {
                    return Err(untranslatable(
                        CheckStep::DataPoint,
                        format!(
                            "no value for {rel}.{col} can satisfy the view's hidden \
                             predicates; the inserted element could never appear"
                        ),
                    ))
                }
            }
        }
    }

    // 3. Shared-vs-fresh split and emission in FK-topological order.
    let shared_rels: Vec<String> = marking.rule3.get(&node).cloned().unwrap_or_default();
    let mut order: Vec<String> = drafts.keys().cloned().collect();
    order.sort_by_key(|r| fk_depth(schema, r));
    for rel in order {
        let table = schema.table(&rel).ok_or_else(|| {
            untranslatable(CheckStep::DataPoint, format!("unknown relation {rel}"))
        })?;
        let draft = drafts.get(&rel).expect("drafted");
        if draft.values.is_empty() {
            // Nothing determined for this relation — not by the fragment,
            // not by join propagation, not by synthesis. No base row can
            // come into existence, so the inserted element would never
            // appear in a recomputed view; skipping it silently would turn
            // the whole insert into a no-op translation (a lost update).
            return Err(untranslatable(
                CheckStep::DataPoint,
                format!(
                    "the inserted element determines no column of {rel}; no base \
                     row can make it appear in the view"
                ),
            ));
        }
        let key_vals: Option<Vec<Value>> =
            table.primary_key.iter().map(|k| draft.get(k).cloned()).collect();
        let is_shared = shared_rels.iter().any(|s| s.eq_ignore_ascii_case(&rel));
        if is_shared {
            let Some(key_vals) = key_vals else {
                return Err(untranslatable(
                    CheckStep::DataPoint,
                    format!("shared relation {rel}: fragment does not supply its key"),
                ));
            };
            plan.shared_checks.push(SharedCheck {
                relation: table.name.clone(),
                key_cols: table.primary_key.clone(),
                key_vals,
                supplied: draft.values.clone(),
            });
            plan.notes.push(format!(
                "shared data: {rel} must pre-exist (no INSERT issued; duplication \
                 consistency verified against the stored row)"
            ));
            continue;
        }
        // Fresh insert. Every NOT NULL column must be determined — by the
        // fragment, join propagation, or hidden-predicate synthesis — or
        // the base row cannot exist and the engine would refuse at
        // execution time (the check must refuse first).
        for col in &table.columns {
            let supplied = draft.get(&col.name).map(|v| !v.is_null()).unwrap_or(false);
            let required =
                col.not_null || table.primary_key.iter().any(|k| k.eq_ignore_ascii_case(&col.name));
            if required && !supplied {
                return Err(untranslatable(
                    CheckStep::DataPoint,
                    format!(
                        "{}.{} is required (NOT NULL or key) but neither the fragment \
                         nor the view determines its value; the inserted element \
                         cannot exist in the base",
                        table.name, col.name
                    ),
                ));
            }
        }
        // Determined foreign-key values must reference a stored row, or the
        // engine refuses the insert after the check accepted it. A parent
        // emitted earlier in this same plan (FK-topological order puts
        // referenced relations first) satisfies the reference without a
        // probe.
        for fk in &table.foreign_keys {
            let vals: Option<Vec<Value>> =
                fk.columns.iter().map(|c| draft.get(c).cloned()).collect();
            let Some(vals) = vals else { continue };
            if vals.iter().any(Value::is_null) {
                continue; // NULL references nothing; the engine allows it
            }
            let satisfied_in_plan = plan.statements.iter().any(|p| match &p.stmt {
                Stmt::Insert(ins) if ins.table.eq_ignore_ascii_case(&fk.ref_table) => {
                    ins.rows.iter().any(|row| {
                        fk.ref_columns.iter().zip(&vals).all(|(rc, v)| {
                            ins.columns
                                .iter()
                                .position(|c| c.eq_ignore_ascii_case(rc))
                                .is_some_and(|i| row[i].sql_eq(v) == Some(true))
                        })
                    })
                }
                _ => false,
            });
            if satisfied_in_plan {
                continue;
            }
            let conj: Vec<Expr> = fk
                .ref_columns
                .iter()
                .zip(&vals)
                .map(|(c, v)| Expr::eq(Expr::col(&fk.ref_table, c.clone()), Expr::lit(v.clone())))
                .collect();
            plan.preconditions.push(Precondition {
                probe: Select::new(
                    vec![SelectItemExpr(Expr::col(&fk.ref_table, "rowid"))],
                    vec![FromTable(&fk.ref_table)],
                    Some(Expr::and(conj)),
                ),
                expect_empty: false,
                reason: format!(
                    "{}({}) references {}({}) but no such row is stored; the \
                     engine would refuse the insert",
                    table.name,
                    fk.columns.join(", "),
                    fk.ref_table,
                    fk.ref_columns.join(", ")
                ),
            });
        }
        let columns: Vec<String> = draft.values.iter().map(|(c, _)| c.clone()).collect();
        let row: Vec<Value> = draft.values.iter().map(|(_, v)| v.clone()).collect();
        let probe = key_vals.map(|kv| key_conflict_probe(&table.name, &table.primary_key, &kv));
        plan.statements.push(PlannedStmt {
            stmt: Stmt::Insert(Insert { table: table.name.clone(), columns, rows: vec![row] }),
            probe,
            relation: table.name.clone(),
        });
    }

    // 4. Starred nested elements in the fragment (e.g. a new book carrying
    //    its reviews) recurse as further insert groups, with the parent's
    //    freshly-known values as context.
    for (child_node, child_el) in nested {
        // Pass the parent drafts as a context row.
        let mut cols = Vec::new();
        let mut row = Vec::new();
        for (rel, d) in &drafts {
            for (c, v) in &d.values {
                cols.push(ColRef::new(rel.clone(), c.clone()));
                row.push(v.clone());
            }
        }
        emit_insert_group(
            asg,
            marking,
            schema,
            child_node,
            frag,
            child_el,
            Some(&(cols, row)),
            plan,
        )?;
    }
    Ok(())
}

/// Does the view expose `col` anywhere under `node`'s subtree?
fn projected_in_subtree(asg: &ViewAsg, node: AsgNodeId, col: &ColRef) -> bool {
    asg.subtree(node).into_iter().any(|s| {
        asg.node(s).leaf.as_ref().is_some_and(|l| {
            l.name.table.eq_ignore_ascii_case(&col.table)
                && l.name.column.eq_ignore_ascii_case(&col.column)
        })
    })
}

/// Walk the ASG subtree in lockstep with the fragment, collecting leaf
/// values for the drafts of the relations bound at `node`. Starred internal
/// children found in the fragment are queued for recursive handling.
fn collect_values(
    asg: &ViewAsg,
    node: AsgNodeId,
    frag: &Document,
    el: NodeId,
    drafts: &mut HashMap<String, TupleDraft>,
    nested: &mut Vec<(AsgNodeId, NodeId)>,
) -> Result<(), CheckOutcome> {
    for child_el in frag.child_elements(el) {
        let tag = frag.name(child_el).unwrap_or("");
        let Some(&child) =
            asg.node(node).children.iter().find(|c| asg.node(**c).tag.eq_ignore_ascii_case(tag))
        else {
            continue; // validation already rejected unknown tags
        };
        let cn = asg.node(child);
        match cn.kind {
            AsgNodeKind::Tag => {
                if let Some(leaf) = crate::target::find_leaf(asg, child) {
                    let text = clean_text(&frag.text_content(child_el));
                    let value = if text.is_empty() {
                        Value::Null
                    } else {
                        Value::parse_as(&text, leaf.ty).unwrap_or(Value::Str(text))
                    };
                    let rel = leaf.name.table.to_ascii_lowercase();
                    let draft = drafts.entry(rel).or_default();
                    if !draft.set(&leaf.name.column, value.clone()) {
                        return Err(untranslatable(
                            CheckStep::DataPoint,
                            format!(
                                "duplication inconsistency: {} receives conflicting values",
                                leaf.name
                            ),
                        ));
                    }
                }
            }
            AsgNodeKind::Internal => {
                if cn.card.is_starred() {
                    nested.push((child, child_el));
                } else {
                    collect_values(asg, child, frag, child_el, drafts, nested)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// `SELECT rowid FROM R WHERE k1 = v1 AND …` — the outside strategy's
/// key-conflict probe (PQ3 of §6.2.2).
pub fn key_conflict_probe(table: &str, key_cols: &[String], key_vals: &[Value]) -> Select {
    let conj: Vec<Expr> = key_cols
        .iter()
        .zip(key_vals)
        .map(|(c, v)| Expr::eq(Expr::col(table, c.clone()), Expr::lit(v.clone())))
        .collect();
    Select::new(
        vec![SelectItemExpr(Expr::col(table, "rowid"))],
        vec![FromTable(table)],
        Some(Expr::and(conj)),
    )
}

#[allow(non_snake_case)]
fn SelectItemExpr(e: Expr) -> ufilter_rdb::SelectItem {
    ufilter_rdb::SelectItem::Expr { expr: e, alias: None }
}

#[allow(non_snake_case)]
fn FromTable(t: &str) -> ufilter_rdb::FromItem {
    ufilter_rdb::FromItem::Table(ufilter_rdb::TableRef::named(t))
}

/// Depth of a relation in the FK DAG (referenced relations first).
fn fk_depth(schema: &DatabaseSchema, rel: &str) -> usize {
    fn depth(schema: &DatabaseSchema, rel: &str, seen: &mut Vec<String>) -> usize {
        if seen.iter().any(|s| s.eq_ignore_ascii_case(rel)) {
            return 0;
        }
        seen.push(rel.to_string());
        let Some(t) = schema.table(rel) else { return 0 };
        t.foreign_keys.iter().map(|fk| 1 + depth(schema, &fk.ref_table, seen)).max().unwrap_or(0)
    }
    depth(schema, rel, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bookdemo;
    use crate::target::resolve;

    fn plan_for(update: &str) -> TranslationPlan {
        let f = bookdemo::book_filter();
        let mut db = bookdemo::book_db();
        let u = ufilter_xquery::parse_update(update).unwrap();
        let actions = resolve(&f.asg, &u).unwrap();
        // Execute the context probe the way the pipeline does.
        let action = &actions[0];
        let ctx = f.asg.node(action.context_node);
        let (probe, rows, tab) = if ctx.kind == AsgNodeKind::Root {
            (None, Vec::new(), None)
        } else {
            let info = crate::probe::path_info(&f.asg, action.context_node);
            let probe = crate::probe::build_probe(
                &f.schema,
                &info,
                &crate::datacheck::relevant_preds(&info, &action.predicates),
                &crate::probe::SelectSpec::Keys,
            );
            let rs = db.query(&probe).unwrap();
            let tab = format!("TAB_{}", ctx.tag);
            db.materialize(&tab, &probe).unwrap();
            let rows: Vec<(Vec<ColRef>, Row)> =
                rs.rows.into_iter().map(|r| (rs.columns.clone(), r)).collect();
            (Some(probe), rows, Some(tab))
        };
        build_plan(&f.asg, &f.marking, &f.schema, action, probe, &rows, tab).unwrap()
    }

    #[test]
    fn u8_translates_to_tab_keyed_delete() {
        let plan = plan_for(bookdemo::U8);
        assert_eq!(plan.statements.len(), 1);
        let sql = plan.statements[0].stmt.to_string();
        // The paper's U3 shape: DELETE keyed on the parent link via TAB.
        assert!(sql.starts_with("DELETE FROM review"), "{sql}");
        assert!(sql.contains("review.bookid IN (SELECT bookid FROM TAB_book)"), "{sql}");
        assert!(plan.statements[0].probe.is_some());
    }

    #[test]
    fn u9_anchor_delete_with_minimization_note() {
        let plan = plan_for(bookdemo::U9);
        assert_eq!(plan.statements.len(), 1);
        let sql = plan.statements[0].stmt.to_string();
        assert!(sql.starts_with("DELETE FROM book"), "{sql}");
        assert!(plan.notes.iter().any(|n| n.contains("publisher")), "{:?}", plan.notes);
    }

    #[test]
    fn u13_insert_carries_probe_bookid_and_shared_check_free() {
        let plan = plan_for(bookdemo::U13);
        assert_eq!(plan.statements.len(), 1);
        assert!(plan.shared_checks.is_empty()); // review shares nothing
        let Stmt::Insert(ins) = &plan.statements[0].stmt else { panic!() };
        assert_eq!(ins.table, "review");
        let cols_vals: Vec<(String, String)> =
            ins.columns.iter().zip(&ins.rows[0]).map(|(c, v)| (c.clone(), v.to_string())).collect();
        assert!(cols_vals.contains(&("bookid".to_string(), "'98003'".to_string())));
        assert!(cols_vals.contains(&("reviewid".to_string(), "'001'".to_string())));
    }

    #[test]
    fn u4_book_insert_has_publisher_shared_check() {
        let plan = plan_for(bookdemo::U4);
        assert_eq!(plan.shared_checks.len(), 1);
        let sc = &plan.shared_checks[0];
        assert_eq!(sc.relation, "publisher");
        assert_eq!(sc.key_vals, vec![Value::str("A01")]);
        // The book INSERT itself gets the FK value propagated from the
        // fragment's publisher pubid.
        let Stmt::Insert(ins) = &plan.statements[0].stmt else { panic!() };
        assert_eq!(ins.table, "book");
        let pubid_pos = ins.columns.iter().position(|c| c == "pubid").expect("pubid propagated");
        assert_eq!(ins.rows[0][pubid_pos], Value::str("A01"));
        // Key-conflict probe attached for the outside strategy.
        assert!(plan.statements[0].probe.is_some());
    }

    #[test]
    fn conflicting_duplicate_values_rejected_in_plan() {
        // A fragment supplying two different titles for the same book leaf
        // — duplication inconsistency caught before any data access.
        let f = bookdemo::book_filter();
        let u = ufilter_xquery::parse_update(
            r#"FOR $root IN document("V.xml") UPDATE $root {
               INSERT <book><bookid>98004</bookid><title>One</title><title>One</title>
               <price>20.00</price>
               <publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname></publisher>
               </book> }"#,
        )
        .unwrap();
        let actions = resolve(&f.asg, &u).unwrap();
        // (title twice violates cardinality at validation; here we call the
        // planner directly to exercise its own guard with equal values —
        // equal duplicates are tolerated.)
        let plan = build_plan(&f.asg, &f.marking, &f.schema, &actions[0], None, &[], None);
        assert!(plan.is_ok());
    }

    #[test]
    fn key_conflict_probe_is_pq3_shaped() {
        let probe = key_conflict_probe("book", &["bookid".to_string()], &[Value::str("98001")]);
        assert_eq!(probe.to_string(), "SELECT book.rowid FROM book WHERE book.bookid = '98001'");
    }

    #[test]
    fn fk_topological_order_inserts_referenced_first() {
        // Inserting a book with nested reviews: book before review.
        let f = bookdemo::book_filter();
        let mut db = bookdemo::book_db();
        let u = ufilter_xquery::parse_update(
            r#"FOR $root IN document("V.xml") UPDATE $root {
               INSERT <book><bookid>98004</bookid><title>T</title><price>20.00</price>
               <publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname></publisher>
               <review><reviewid>001</reviewid><comment>ok</comment></review>
               </book> }"#,
        )
        .unwrap();
        let actions = resolve(&f.asg, &u).unwrap();
        let plan = build_plan(&f.asg, &f.marking, &f.schema, &actions[0], None, &[], None).unwrap();
        let tables: Vec<&str> = plan
            .statements
            .iter()
            .filter_map(|p| match &p.stmt {
                Stmt::Insert(i) => Some(i.table.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(tables, vec!["book", "review"]);
        // Executing the plan really nests the review under the new book.
        let report = crate::datacheck::run_hybrid(&mut db, &plan, true);
        assert!(report.rejected.is_none(), "{:?}", report.rejected);
        assert_eq!(db.row_count("book"), 4);
        assert_eq!(db.row_count("review"), 3);
    }
}

#[cfg(test)]
mod hidden_pred_tests {
    use crate::bookdemo;
    use crate::outcome::CheckOutcome;

    #[test]
    fn book_insert_synthesizes_hidden_year() {
        // The view requires year > 1990 but never projects year; the
        // translation must invent one (the paper's U2 uses 1994) or the new
        // book would silently vanish from the view.
        let filter = bookdemo::book_filter();
        let mut db = bookdemo::book_db();
        let u = r#"FOR $root IN document("V.xml")
                   UPDATE $root {
                   INSERT <book><bookid>98020</bookid><title>T</title><price>20.00</price>
                   <publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname></publisher>
                   </book> }"#;
        let report = filter.apply(u, &mut db).remove(0);
        let CheckOutcome::Translatable { translation, .. } = &report.outcome else {
            panic!("{}", report.outcome);
        };
        let sql = translation[0].to_string();
        assert!(sql.contains("year"), "{sql}");
        // The stored year satisfies the hidden predicate.
        let rs = db.query_sql("SELECT year FROM book WHERE bookid = '98020'").unwrap();
        match &rs.rows[0][0] {
            ufilter_rdb::Value::Date(y) => assert!(*y > 1990, "year {y}"),
            other => panic!("unexpected year {other}"),
        }
        // And the book is visible in the regenerated view.
        let v = ufilter_xquery::materialize(&db, filter.query()).unwrap();
        let visible = v.children_named(v.root(), "book").iter().any(|b| {
            v.child_named(*b, "bookid").map(|n| v.text_content(n)) == Some("98020".into())
        });
        assert!(visible);
    }
}
