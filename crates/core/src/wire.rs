//! Stable single-line text form of check outcomes — the **wire format**.
//!
//! One [`CheckOutcome`] encodes to exactly one line with no raw spaces
//! inside fields (percent-style escaping), so the same string can travel
//! over the `ufilter-service` line protocol, appear in `check-batch` CLI
//! output, and be diffed byte-for-byte between a concurrent server run and
//! a single-threaded replay. [`decode_outcome`] inverts [`encode_outcome`]
//! exactly (round-trip tested), including re-parsing the translated SQL.
//!
//! Grammar (space-separated tokens, one outcome per line):
//!
//! ```text
//! invalid <reason-code> <escaped-detail>
//! untranslatable <step-code> <escaped-reason>
//! translatable [cond:<cond>]... [sql:<escaped-stmt>]...
//! ```
//!
//! where `<cond>` is `min` (translation minimization), `dup` (duplication
//! consistency) or `shared:<rel>,<rel>,...` (shared-data existence), and the
//! escape set is `% space tab newline CR comma` → `%25 %20 %09 %0A %0D %2C`.
//! Multiple outcomes of one multi-action update are joined with a single
//! tab (tabs are escaped inside an outcome, so the join is unambiguous).

use ufilter_rdb::Parser;

use crate::outcome::{CheckOutcome, CheckStep, Condition, InvalidReason};

/// A line failed to decode as a wire outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was malformed.
    pub detail: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

fn err(detail: impl Into<String>) -> WireError {
    WireError { detail: detail.into() }
}

/// Escape `s` so it contains no space, tab, newline, CR, comma or raw `%`.
///
/// Characters outside the escape set pass through verbatim (including
/// non-ASCII); escaped characters are emitted as the `%XX` percent-encoding
/// of their UTF-8 bytes, so a future escape-set extension to multi-byte
/// characters stays representable.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            ',' => out.push_str("%2C"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape`]. Any `%XX` hex pair is accepted, not just the ones
/// `escape` emits, so the format can grow its escape set compatibly —
/// including multi-byte characters: maximal runs of `%XX` pairs decode as
/// UTF-8 byte sequences (`%C3%A9` → `é`), so the codec round-trips
/// arbitrary Unicode payloads instead of rejecting bytes ≥ 0x80.
pub fn unescape(s: &str) -> Result<String, WireError> {
    let mut out = String::with_capacity(s.len());
    let mut bytes = Vec::new(); // pending run of %XX-decoded bytes
    let mut chars = s.chars().peekable();
    let flush = |bytes: &mut Vec<u8>, out: &mut String| -> Result<(), WireError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let decoded = std::str::from_utf8(bytes)
            .map_err(|_| err("escaped bytes are not valid UTF-8"))?
            .to_string();
        out.push_str(&decoded);
        bytes.clear();
        Ok(())
    };
    while let Some(c) = chars.next() {
        if c != '%' {
            flush(&mut bytes, &mut out)?;
            out.push(c);
            continue;
        }
        let hi = chars.next().ok_or_else(|| err("truncated % escape"))?;
        let lo = chars.next().ok_or_else(|| err("truncated % escape"))?;
        let byte = (hi.to_digit(16).ok_or_else(|| err(format!("bad hex digit '{hi}'")))? * 16)
            + lo.to_digit(16).ok_or_else(|| err(format!("bad hex digit '{lo}'")))?;
        bytes.push(byte as u8);
    }
    flush(&mut bytes, &mut out)?;
    Ok(out)
}

/// Stable code for an [`InvalidReason`] variant.
fn invalid_code(r: &InvalidReason) -> (&'static str, &str) {
    match r {
        InvalidReason::PredicateOutsideView { detail } => ("predicate-outside-view", detail),
        InvalidReason::NonDeletableNode { detail } => ("non-deletable-node", detail),
        InvalidReason::HierarchyViolation { detail } => ("hierarchy-violation", detail),
        InvalidReason::TypeViolation { detail } => ("type-violation", detail),
        InvalidReason::CheckViolation { detail } => ("check-violation", detail),
        InvalidReason::NotNullViolation { detail } => ("not-null-violation", detail),
        InvalidReason::UnknownTarget { detail } => ("unknown-target", detail),
        InvalidReason::Malformed { detail } => ("malformed", detail),
    }
}

fn invalid_from(code: &str, detail: String) -> Result<InvalidReason, WireError> {
    Ok(match code {
        "predicate-outside-view" => InvalidReason::PredicateOutsideView { detail },
        "non-deletable-node" => InvalidReason::NonDeletableNode { detail },
        "hierarchy-violation" => InvalidReason::HierarchyViolation { detail },
        "type-violation" => InvalidReason::TypeViolation { detail },
        "check-violation" => InvalidReason::CheckViolation { detail },
        "not-null-violation" => InvalidReason::NotNullViolation { detail },
        "unknown-target" => InvalidReason::UnknownTarget { detail },
        "malformed" => InvalidReason::Malformed { detail },
        other => return Err(err(format!("unknown invalid-reason code '{other}'"))),
    })
}

/// Stable code for a [`CheckStep`].
pub fn step_code(step: CheckStep) -> &'static str {
    match step {
        CheckStep::Validation => "validation",
        CheckStep::NonInjective => "non-injective",
        CheckStep::Star => "star",
        CheckStep::DataContext => "data-context",
        CheckStep::DataPoint => "data-point",
    }
}

/// Invert [`step_code`].
pub fn step_from(code: &str) -> Result<CheckStep, WireError> {
    Ok(match code {
        "validation" => CheckStep::Validation,
        "non-injective" => CheckStep::NonInjective,
        "star" => CheckStep::Star,
        "data-context" => CheckStep::DataContext,
        "data-point" => CheckStep::DataPoint,
        other => return Err(err(format!("unknown step code '{other}'"))),
    })
}

fn encode_condition(c: &Condition) -> String {
    match c {
        Condition::TranslationMinimization => "cond:min".into(),
        Condition::DuplicationConsistency => "cond:dup".into(),
        Condition::SharedDataExistence { relations } => {
            let rels: Vec<String> = relations.iter().map(|r| escape(r)).collect();
            format!("cond:shared:{}", rels.join(","))
        }
    }
}

fn decode_condition(token: &str) -> Result<Condition, WireError> {
    Ok(match token {
        "min" => Condition::TranslationMinimization,
        "dup" => Condition::DuplicationConsistency,
        shared => {
            let Some(rels) = shared.strip_prefix("shared:") else {
                return Err(err(format!("unknown condition '{shared}'")));
            };
            let relations = rels
                .split(',')
                .filter(|r| !r.is_empty())
                .map(unescape)
                .collect::<Result<Vec<String>, WireError>>()?;
            Condition::SharedDataExistence { relations }
        }
    })
}

/// Encode one outcome as one wire line (no trailing newline).
pub fn encode_outcome(outcome: &CheckOutcome) -> String {
    match outcome {
        CheckOutcome::Invalid(reason) => {
            let (code, detail) = invalid_code(reason);
            format!("invalid {code} {}", escape(detail))
        }
        CheckOutcome::Untranslatable { step, reason } => {
            format!("untranslatable {} {}", step_code(*step), escape(reason))
        }
        CheckOutcome::Translatable { conditions, translation } => {
            let mut out = String::from("translatable");
            for c in conditions {
                out.push(' ');
                out.push_str(&encode_condition(c));
            }
            for stmt in translation {
                out.push_str(" sql:");
                out.push_str(&escape(&stmt.to_string()));
            }
            out
        }
    }
}

/// Decode one wire line back into the outcome it encodes. Translated SQL is
/// re-parsed, so a decoded `Translatable` carries executable statements.
pub fn decode_outcome(line: &str) -> Result<CheckOutcome, WireError> {
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.splitn(3, ' ');
    let kind = parts.next().unwrap_or_default();
    match kind {
        "invalid" => {
            let code = parts.next().ok_or_else(|| err("invalid: missing reason code"))?;
            let detail = unescape(parts.next().unwrap_or_default())?;
            Ok(CheckOutcome::Invalid(invalid_from(code, detail)?))
        }
        "untranslatable" => {
            let step = step_from(parts.next().ok_or_else(|| err("missing step code"))?)?;
            let reason = unescape(parts.next().unwrap_or_default())?;
            Ok(CheckOutcome::Untranslatable { step, reason })
        }
        "translatable" => {
            let rest: Vec<&str> = line.split(' ').skip(1).filter(|t| !t.is_empty()).collect();
            let mut conditions = Vec::new();
            let mut translation = Vec::new();
            for token in rest {
                if let Some(c) = token.strip_prefix("cond:") {
                    conditions.push(decode_condition(c)?);
                } else if let Some(sql) = token.strip_prefix("sql:") {
                    let text = unescape(sql)?;
                    let stmt = Parser::parse_stmt(&text)
                        .map_err(|e| err(format!("embedded SQL failed to re-parse: {e}")))?;
                    translation.push(stmt);
                } else {
                    return Err(err(format!("unknown translatable token '{token}'")));
                }
            }
            Ok(CheckOutcome::Translatable { conditions, translation })
        }
        other => Err(err(format!("unknown outcome kind '{other}'"))),
    }
}

/// Encode every action outcome of one update, tab-joined into a single
/// line (one wire outcome per [`crate::CheckReport`], in report order).
pub fn encode_outcomes(outcomes: &[CheckOutcome]) -> String {
    outcomes.iter().map(encode_outcome).collect::<Vec<String>>().join("\t")
}

/// Decode a tab-joined multi-outcome line (inverse of [`encode_outcomes`]).
pub fn decode_outcomes(line: &str) -> Result<Vec<CheckOutcome>, WireError> {
    line.trim_end_matches(['\r', '\n']).split('\t').map(decode_outcome).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(o: &CheckOutcome) {
        let line = encode_outcome(o);
        assert!(!line.contains('\n') && !line.contains('\t'), "not single-line: {line:?}");
        let back = decode_outcome(&line).expect("decodes");
        assert_eq!(&back, o, "wire round trip changed the outcome: {line}");
    }

    #[test]
    fn escape_roundtrips_awkward_text() {
        for s in ["", "plain", "two words", "tab\there", "a\nb\r\nc", "100% sure, yes", "%2C"] {
            let e = escape(s);
            assert!(!e.contains([' ', '\t', '\n', '\r', ',']), "{e:?}");
            assert_eq!(unescape(&e).unwrap(), s);
        }
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape("%").is_err());
        assert!(unescape("%2").is_err());
        assert!(unescape("%zz").is_err());
        // A %XX run that is not valid UTF-8 is an error, not a silent
        // mojibake (0xFF can never start a UTF-8 sequence).
        assert!(unescape("%FF").is_err());
        assert!(unescape("%C3").is_err(), "truncated two-byte sequence");
    }

    #[test]
    fn escape_roundtrips_non_ascii_payloads() {
        // Raw non-ASCII passes through untouched…
        for s in ["café", "中文 reason", "emoji 😀 tail", "é,中\t😀"] {
            let e = escape(s);
            assert!(!e.contains([' ', '\t', '\n', '\r', ',']), "{e:?}");
            assert_eq!(unescape(&e).unwrap(), s);
        }
        // …and percent-encoded UTF-8 byte runs decode as characters, so a
        // future escape-set extension to multi-byte characters is already
        // readable (the pre-fix decoder rejected any %XX ≥ 0x80).
        assert_eq!(unescape("%C3%A9").unwrap(), "é");
        assert_eq!(unescape("%E4%B8%AD%E6%96%87").unwrap(), "中文");
        assert_eq!(unescape("a%20%C3%A9b").unwrap(), "a éb");
    }

    #[test]
    fn invalid_outcomes_roundtrip() {
        let details =
            ["", "simple", "with spaces, commas and 100%", "multi\nline\tdetail"].map(String::from);
        for detail in details {
            roundtrip(&CheckOutcome::Invalid(InvalidReason::PredicateOutsideView {
                detail: detail.clone(),
            }));
            roundtrip(&CheckOutcome::Invalid(InvalidReason::Malformed { detail: detail.clone() }));
            roundtrip(&CheckOutcome::Invalid(InvalidReason::NotNullViolation { detail }));
        }
    }

    #[test]
    fn untranslatable_outcomes_roundtrip() {
        for step in [
            CheckStep::Validation,
            CheckStep::NonInjective,
            CheckStep::Star,
            CheckStep::DataContext,
            CheckStep::DataPoint,
        ] {
            roundtrip(&CheckOutcome::Untranslatable {
                step,
                reason: "shared <publisher> is (dirty|u-d), Observation 1 fails".into(),
            });
        }
        // The aggregate/Distinct extension's wire code is pinned: service
        // smoke and clients grep for this exact token.
        assert_eq!(step_code(CheckStep::NonInjective), "non-injective");
    }

    #[test]
    fn translatable_outcomes_roundtrip() {
        roundtrip(&CheckOutcome::Translatable { conditions: vec![], translation: vec![] });
        roundtrip(&CheckOutcome::Translatable {
            conditions: vec![
                Condition::TranslationMinimization,
                Condition::DuplicationConsistency,
                Condition::SharedDataExistence {
                    relations: vec!["book".into(), "publisher".into()],
                },
            ],
            translation: vec![
                Parser::parse_stmt("DELETE FROM review WHERE bookid = '98001'").unwrap(),
                Parser::parse_stmt("INSERT INTO review (bookid) VALUES ('98003')").unwrap(),
            ],
        });
    }

    #[test]
    fn real_pipeline_outcomes_roundtrip() {
        use crate::bookdemo;
        let filter = bookdemo::book_filter();
        let mut db = bookdemo::book_db();
        for update in [bookdemo::U8, bookdemo::U10, bookdemo::U13, bookdemo::U5] {
            for report in filter.check(update, &mut db) {
                roundtrip(&report.outcome);
            }
        }
    }

    #[test]
    fn tab_joined_multi_outcomes_roundtrip() {
        let outcomes = vec![
            CheckOutcome::Invalid(InvalidReason::Malformed { detail: "a b".into() }),
            CheckOutcome::Untranslatable { step: CheckStep::Star, reason: "r".into() },
        ];
        let line = encode_outcomes(&outcomes);
        assert_eq!(line.matches('\t').count(), 1);
        assert_eq!(decode_outcomes(&line).unwrap(), outcomes);
    }
}
