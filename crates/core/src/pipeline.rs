//! The U-Filter pipeline (Fig. 5): compile a view once (ASG construction +
//! STAR marking), then push every incoming update through the three checks,
//! handing survivors to the translation engine.

use ufilter_asg::{build_view_asg, AsgNodeKind, BaseAsg, ReadSets, ViewAsg};
use ufilter_rdb::{DatabaseSchema, Db, Row, Select};
use ufilter_xquery::{features, parse_update, parse_view_query, UpdateStmt, ViewQuery};

use crate::datacheck::{self, DataCheckReport, Strategy};
use crate::independence;
use crate::obs::{self, Stage};
use crate::outcome::{CheckOutcome, CheckReport, CheckStep};
use crate::probe::{build_probe, path_info, SelectSpec};
use crate::star::{self, StarMarking, StarMode, StarVerdict};
use crate::target::{resolve, ResolvedAction};
use crate::translate::build_plan;
use crate::validate::validate;

/// View compilation failure.
///
/// Each variant preserves the underlying error value (not just its message)
/// so callers that aggregate many compilations — the [`catalog`] batch
/// reporting in particular — can distinguish failure causes structurally.
///
/// [`catalog`]: crate::catalog
#[derive(Debug, Clone)]
pub enum CompileError {
    /// The query text failed to parse; carries the parser's error with its
    /// byte offset into the view text.
    Parse(ufilter_xquery::ParseError),
    /// The query uses constructs outside the ASG subset (Fig. 12 exclusions).
    Unsupported(Vec<ufilter_xquery::UnsupportedFeature>),
    /// The ASG builder rejected the query/schema combination.
    Asg(ufilter_asg::AsgError),
}

impl CompileError {
    /// Stable short label for the failure cause ("parse" / "unsupported" /
    /// "asg"), for per-cause aggregation in batch reports.
    pub fn cause(&self) -> &'static str {
        match self {
            CompileError::Parse(_) => "parse",
            CompileError::Unsupported(_) => "unsupported",
            CompileError::Asg(_) => "asg",
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Unsupported(fs) => {
                let names: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "view query outside the ASG subset: {}", names.join(", "))
            }
            CompileError::Asg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::Asg(e) => Some(e),
            CompileError::Unsupported(_) => None,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct UFilterConfig {
    /// Observation-2 handling for STAR (strict vs. refined).
    pub mode: StarMode,
    /// Update-point data-check strategy (§6.2).
    pub strategy: Strategy,
}

/// Cache of update-context probe results, shared across the checks of a
/// batch so identically-targeted updates pay for one table scan instead of
/// many.
///
/// Keyed by the probe's SQL text. Reusing a cache is sound only while the
/// probed tables do not change: [`UFilter::run`] uses a fresh cache per
/// statement (every action of a multi-action update is planned against the
/// pre-update state, so intra-statement sharing is always safe), and
/// [`crate::catalog::ViewCatalog::check_batch`] shares one cache across a
/// whole check-only batch.
#[derive(Debug, Default)]
pub struct ProbeCache {
    entries: std::collections::HashMap<String, ufilter_rdb::ResultSet>,
    /// Which probe's result each `TAB_…` table currently holds, so a cache
    /// hit only skips re-materialization while the table is still fresh.
    materialized: std::collections::HashMap<String, String>,
    /// The catalog schema epoch the cached results were produced under (see
    /// [`crate::catalog::ViewCatalog::epoch`]). Guarded DDL bumps the
    /// catalog epoch; the batch engine calls [`sync_epoch`](Self::sync_epoch)
    /// so results from before a schema change can never answer a probe
    /// issued after it.
    epoch: u64,
    hits: usize,
    misses: usize,
}

impl ProbeCache {
    /// An empty cache.
    pub fn new() -> ProbeCache {
        ProbeCache::default()
    }

    /// Number of probes answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of probes that had to hit the engine.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Drop every cached probe result and `TAB_…` freshness record (the
    /// hit/miss counters survive — they are lifetime telemetry, not
    /// content). Call after anything that could change probe answers: a
    /// schema change, direct base-table writes between check-only batches.
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.materialized.clear();
    }

    /// Adopt `epoch`, invalidating all content if it differs from the epoch
    /// the cache was filled under. The catalog batch engine calls this on
    /// every batch, making a caller-held long-lived cache safe across
    /// guarded DDL.
    pub fn sync_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.invalidate();
            self.epoch = epoch;
        }
    }

    /// Look up `sql`, or run `fetch` and remember its result.
    /// `Ok((result, was_hit))`.
    fn get_or_fetch(
        &mut self,
        sql: &str,
        fetch: impl FnOnce() -> Result<ufilter_rdb::ResultSet, ufilter_rdb::RdbError>,
    ) -> Result<(ufilter_rdb::ResultSet, bool), ufilter_rdb::RdbError> {
        if let Some(rs) = self.entries.get(sql) {
            self.hits += 1;
            return Ok((rs.clone(), true));
        }
        let span = obs::clock();
        let rs = fetch()?;
        obs::stage_elapsed(Stage::ProbeSql, span);
        self.misses += 1;
        self.entries.insert(sql.to_string(), rs.clone());
        Ok((rs, false))
    }
}

/// Where a filter's [`ViewQuery`] comes from: parsed eagerly at compile
/// time, or deferred to first use (warm restart from a persisted artifact —
/// the check path never needs the parsed query, only materialization and
/// evaluation do).
enum QuerySource {
    /// Parsed at compile time.
    Parsed(ViewQuery),
    /// View text whose parse is deferred until [`UFilter::query`] is first
    /// called. The text parsed successfully when the view was originally
    /// compiled, so the deferred parse cannot fail.
    Deferred { text: String, parsed: std::sync::OnceLock<ViewQuery> },
}

/// A compiled view: ASGs built and STAR-marked, ready to check updates.
pub struct UFilter {
    /// The view query — parsed, or deferred view text (warm restart).
    query: QuerySource,
    /// The relational schema the view is defined over.
    pub schema: DatabaseSchema,
    /// The view ASG `G_V`, with STAR marks written in.
    pub asg: ViewAsg,
    /// The base ASG `G_D`.
    pub base: BaseAsg,
    /// The compile-time STAR marking summary.
    pub marking: StarMarking,
    /// Read-sets of the view's non-injective machinery (aggregate operands,
    /// gate columns, Distinct regions), extracted once for the independence
    /// analysis. Empty for classic views.
    pub read_sets: ReadSets,
    /// Mode/strategy the checks run under.
    pub config: UFilterConfig,
}

impl UFilter {
    /// The parsed view query. For a filter rehydrated from a persisted
    /// artifact this parses the stored view text on first use (the check
    /// path never calls it; materialization and evaluation do).
    pub fn query(&self) -> &ViewQuery {
        match &self.query {
            QuerySource::Parsed(q) => q,
            QuerySource::Deferred { text, parsed } => parsed.get_or_init(|| {
                parse_view_query(text)
                    .expect("rehydrated view text parsed when originally compiled")
            }),
        }
    }

    /// Assemble a filter from persisted compile artifacts, skipping parse,
    /// ASG construction and STAR marking entirely. The caller (the
    /// persistence layer) guarantees the parts came from a successful
    /// [`compile`](Self::compile) of `view_text` against `schema`.
    pub(crate) fn from_artifact(
        view_text: String,
        schema: DatabaseSchema,
        asg: ViewAsg,
        marking: StarMarking,
        read_sets: ReadSets,
        config: UFilterConfig,
    ) -> UFilter {
        let leaves: Vec<ufilter_rdb::ColRef> =
            asg.iter().filter_map(|n| n.leaf.as_ref().map(|l| l.name.clone())).collect();
        let base = BaseAsg::build(&schema, &asg.relations, &leaves);
        UFilter {
            query: QuerySource::Deferred { text: view_text, parsed: std::sync::OnceLock::new() },
            schema,
            asg,
            base,
            marking,
            read_sets,
            config,
        }
    }
    /// Compile a view: parse, expressibility-check, build both ASGs, run
    /// the STAR marking procedure.
    pub fn compile(view_text: &str, schema: &DatabaseSchema) -> Result<UFilter, CompileError> {
        let span = obs::clock();
        if let Err(found) = features::expressible(view_text) {
            return Err(CompileError::Unsupported(found));
        }
        let query = parse_view_query(view_text).map_err(CompileError::Parse)?;
        let out = Self::compile_query(query, schema);
        if out.is_ok() {
            obs::stage_elapsed(Stage::Compile, span);
        }
        out
    }

    /// Compile an already-parsed view query.
    pub fn compile_query(
        query: ViewQuery,
        schema: &DatabaseSchema,
    ) -> Result<UFilter, CompileError> {
        let mut asg = build_view_asg(&query, schema).map_err(CompileError::Asg)?;
        let leaves: Vec<ufilter_rdb::ColRef> =
            asg.iter().filter_map(|n| n.leaf.as_ref().map(|l| l.name.clone())).collect();
        let base = BaseAsg::build(schema, &asg.relations, &leaves);
        let marking = star::mark(&mut asg, &base, schema);
        let read_sets = ReadSets::extract(&asg);
        Ok(UFilter {
            query: QuerySource::Parsed(query),
            schema: schema.clone(),
            asg,
            base,
            marking,
            read_sets,
            config: UFilterConfig::default(),
        })
    }

    /// Replace the pipeline configuration (builder style).
    pub fn with_config(mut self, config: UFilterConfig) -> UFilter {
        self.config = config;
        self
    }

    /// Parse an update against this view.
    pub fn parse(&self, update_text: &str) -> Result<UpdateStmt, String> {
        let span = obs::clock();
        let out = parse_update(update_text).map_err(|e| e.to_string());
        obs::stage_elapsed(Stage::Parse, span);
        out
    }

    /// Steps 1–2 only (no database access): validation + STAR.
    pub fn check_schema(&self, update_text: &str) -> Vec<CheckReport> {
        match self.parse(update_text) {
            Ok(u) => self.run(&u, None, false),
            Err(m) => vec![malformed(m)],
        }
    }

    /// All three steps; data checks use non-destructive probes (the outside
    /// strategy's probe set). The database is only touched to materialize
    /// probe results (`TAB_…`), as the paper's Step 3 does.
    pub fn check(&self, update_text: &str, db: &mut Db) -> Vec<CheckReport> {
        match self.parse(update_text) {
            Ok(u) => self.run(&u, Some(db), false),
            Err(m) => vec![malformed(m)],
        }
    }

    /// Full pipeline; translatable updates are executed with the configured
    /// strategy.
    pub fn apply(&self, update_text: &str, db: &mut Db) -> Vec<CheckReport> {
        match self.parse(update_text) {
            Ok(u) => self.run(&u, Some(db), true),
            Err(m) => vec![malformed(m)],
        }
    }

    /// Translate and execute **without any translatability checking** —
    /// the "Update" baseline of Fig. 13 (a system that blindly trusts the
    /// update). Returns total rows affected. Uses the hybrid execution path
    /// so engine errors still abort.
    pub fn apply_unchecked(&self, update_text: &str, db: &mut Db) -> Result<usize, String> {
        let u = self.parse(update_text)?;
        let actions = resolve(&self.asg, &u).map_err(|e| e.to_string())?;
        let mut affected = 0;
        for action in &actions {
            // Fresh cache per action: this loop executes between probes, so
            // nothing may be carried over.
            let mut cache = ProbeCache::new();
            let mut trace = Vec::new();
            let (context_probe, context_rows, tab_name) = self
                .context_check(action, db, &mut trace, false, &mut cache)
                .map_err(|o| o.to_string())?;
            let plan = build_plan(
                &self.asg,
                &self.marking,
                &self.schema,
                action,
                context_probe,
                &context_rows,
                tab_name,
            )
            .map_err(|o| o.to_string())?;
            let report = datacheck::run_hybrid(db, &plan, true);
            if let Some((_, reason)) = report.rejected {
                return Err(reason);
            }
            affected += report.rows_affected;
        }
        Ok(affected)
    }

    /// Check an already-parsed update.
    ///
    /// Two-phase: every action is validated, STAR-checked and planned
    /// against the *pre-update* state first; only if all actions survive
    /// are the plans executed (atomically, for multi-action blocks such as
    /// REPLACE = delete + insert).
    pub fn run(&self, u: &UpdateStmt, db: Option<&mut Db>, apply: bool) -> Vec<CheckReport> {
        let actions = match resolve(&self.asg, u) {
            Ok(a) => a,
            Err(reason) => {
                return vec![CheckReport {
                    trace: vec![(CheckStep::Validation, reason.to_string())],
                    outcome: CheckOutcome::Invalid(reason),
                }]
            }
        };
        self.run_resolved(&actions, db, apply, &mut ProbeCache::new())
    }

    /// [`run`](UFilter::run) for already-resolved actions, with a caller
    /// supplied probe cache. This is the batch entry point: the catalog
    /// resolves every update of a stream up front, groups by target, and
    /// shares one cache across the whole (check-only) batch.
    pub fn run_resolved(
        &self,
        actions: &[ResolvedAction],
        db: Option<&mut Db>,
        apply: bool,
        cache: &mut ProbeCache,
    ) -> Vec<CheckReport> {
        let mut db = db;

        // ---- Phase 1: check + plan every action ------------------------
        let mut prepared = Vec::new();
        let mut reports = Vec::new();
        let mut any_rejected = false;
        for action in actions {
            match self.prepare_action(action, db.as_deref_mut(), cache) {
                Ok((trace, conditions, plan)) => {
                    prepared.push((action, trace, conditions, plan));
                }
                Err(report) => {
                    any_rejected = true;
                    reports.push(report);
                }
            }
        }
        if any_rejected || db.is_none() {
            // Schema-only mode, or some action failed: report planned
            // actions as translatable-with-translation but execute nothing.
            for (_, trace, conditions, plan) in prepared {
                let translation = plan.map(|p| p.sql()).unwrap_or_default();
                reports.push(CheckReport {
                    trace,
                    outcome: CheckOutcome::Translatable { conditions, translation },
                });
            }
            return reports;
        }
        let db = db.expect("checked above");

        // ---- Phase 2: run the data checks (and optionally execute) -----
        let own_txn = apply && prepared.len() > 1 && !db.in_transaction();
        if own_txn {
            db.begin().expect("no active transaction");
        }
        let mut failed = false;
        for (action, mut trace, conditions, plan) in prepared {
            let plan = plan.expect("phase 1 planned with a database");
            if failed {
                // An earlier action failed: report and skip.
                trace.push((CheckStep::DataPoint, "skipped: earlier action rejected".into()));
                reports.push(CheckReport {
                    trace,
                    outcome: CheckOutcome::Untranslatable {
                        step: CheckStep::DataPoint,
                        reason: "earlier action of the same update was rejected".into(),
                    },
                });
                continue;
            }
            let report: DataCheckReport = match self.config.strategy {
                Strategy::Outside => datacheck::run_outside(db, &plan, apply),
                Strategy::Hybrid => datacheck::run_hybrid(db, &plan, apply),
                Strategy::Internal => {
                    datacheck::run_internal(db, &self.asg, &self.schema, action, &plan, apply)
                }
            };
            for note in &report.notes {
                trace.push((CheckStep::DataPoint, note.clone()));
            }
            if let Some((step, reason)) = report.rejected {
                trace.push((step, reason.clone()));
                reports.push(CheckReport {
                    trace,
                    outcome: CheckOutcome::Untranslatable { step, reason },
                });
                failed = true;
                continue;
            }
            reports.push(CheckReport {
                trace,
                outcome: CheckOutcome::Translatable { conditions, translation: plan.sql() },
            });
        }
        if own_txn {
            if failed {
                db.rollback().expect("transaction active");
            } else {
                db.commit().expect("transaction active");
            }
        }
        reports
    }

    /// Phase 1 for one action: Steps 1–2, the context check, and plan
    /// construction. With no database, returns `Ok` with `plan = None`
    /// (schema-only classification).
    #[allow(clippy::type_complexity)]
    fn prepare_action(
        &self,
        action: &ResolvedAction,
        db: Option<&mut Db>,
        cache: &mut ProbeCache,
    ) -> Result<
        (
            Vec<(CheckStep, String)>,
            Vec<crate::outcome::Condition>,
            Option<crate::translate::TranslationPlan>,
        ),
        CheckReport,
    > {
        let mut trace: Vec<(CheckStep, String)> = Vec::new();

        // ---- Step 1: update validation --------------------------------
        let span = obs::clock();
        let validated = validate(&self.asg, action);
        obs::stage_elapsed(Stage::Validate, span);
        if let Err(reason) = validated {
            trace.push((CheckStep::Validation, reason.to_string()));
            return Err(CheckReport { trace, outcome: CheckOutcome::Invalid(reason) });
        }
        trace.push((CheckStep::Validation, "valid".into()));

        // ---- Step 1½: conservative aggregate/Distinct classification ----
        // Runs before STAR: non-injective regions (Distinct output,
        // aggregate values, aggregate-gated membership) have no exact
        // translation, whatever their STAR marks say. Views without such
        // regions skip this in O(nodes) with no behavior change.
        let span = obs::clock();
        let classified = star::non_injective_check(&self.asg, &self.schema, action);
        obs::stage_elapsed(Stage::NonInjective, span);
        if let Some(reason) = classified {
            // The blunt footprint check rejected — refine with the static
            // independence analysis. Only a provably-independent verdict
            // changes the outcome (the update falls through to the
            // unchanged STAR/data/translation path); Dependent and Unknown
            // reject exactly as before, with the blocker appended.
            let span = obs::clock();
            let verdict = independence::classify(
                &self.asg,
                &self.schema,
                &self.marking,
                &self.read_sets,
                action,
            );
            independence::record(&verdict);
            obs::stage_elapsed(Stage::Independence, span);
            let reason = match verdict {
                independence::Verdict::Independent => {
                    trace.push((
                        CheckStep::NonInjective,
                        format!("{reason}; independence: update write-set is disjoint from every non-injective read-set"),
                    ));
                    None
                }
                independence::Verdict::Dependent { blocker } => {
                    Some(format!("{reason}; independence: dependent on {blocker}"))
                }
                independence::Verdict::Unknown { blocker } => {
                    Some(format!("{reason}; independence: unknown, blocked by {blocker}"))
                }
            };
            if let Some(reason) = reason {
                trace.push((CheckStep::NonInjective, reason.clone()));
                return Err(CheckReport {
                    trace,
                    outcome: CheckOutcome::Untranslatable { step: CheckStep::NonInjective, reason },
                });
            }
        }

        // ---- Step 2: STAR ----------------------------------------------
        let span = obs::clock();
        let verdict = star::check(&self.asg, &self.marking, &self.schema, action, self.config.mode);
        obs::stage_elapsed(Stage::Star, span);
        let conditions = match verdict {
            StarVerdict::Untranslatable(reason) => {
                trace.push((CheckStep::Star, reason.clone()));
                return Err(CheckReport {
                    trace,
                    outcome: CheckOutcome::Untranslatable { step: CheckStep::Star, reason },
                });
            }
            StarVerdict::Ok(conditions) => {
                let node = self.asg.node(action.node);
                trace.push((
                    CheckStep::Star,
                    match (&node.upoint, &node.ucontext) {
                        (Some(up), Some(uc)) => {
                            format!("target <{}> marked ({up}|{uc})", node.tag)
                        }
                        _ => format!("target <{}>", node.tag),
                    },
                ));
                conditions
            }
        };

        // ---- Step 3 preparation ----------------------------------------
        let Some(db) = db else {
            return Ok((trace, conditions, None));
        };

        // 3a. Update context check (§6.1). Only the outside and internal
        // strategies materialize the probe result (the hybrid strategy
        // "does not materialize the intermediate result", §7.2).
        let materialize_tab = self.config.strategy != Strategy::Hybrid;
        let (context_probe, context_rows, tab_name) =
            match self.context_check(action, db, &mut trace, materialize_tab, cache) {
                Ok(x) => x,
                Err(outcome) => return Err(CheckReport { trace, outcome }),
            };

        // Build the translation plan.
        let span = obs::clock();
        let planned = build_plan(
            &self.asg,
            &self.marking,
            &self.schema,
            action,
            context_probe,
            &context_rows,
            tab_name,
        );
        obs::stage_elapsed(Stage::Translate, span);
        let plan = match planned {
            Ok(p) => p,
            Err(outcome) => {
                if let CheckOutcome::Untranslatable { step, reason } = &outcome {
                    trace.push((*step, reason.clone()));
                }
                return Err(CheckReport { trace, outcome });
            }
        };
        for note in &plan.notes {
            trace.push((CheckStep::DataPoint, note.clone()));
        }
        Ok((trace, conditions, Some(plan)))
    }

    /// The §6.1 update-context check. Returns the probe, its rows (header +
    /// row pairs) and the materialized table name.
    #[allow(clippy::type_complexity)]
    fn context_check(
        &self,
        action: &ResolvedAction,
        db: &mut Db,
        trace: &mut Vec<(CheckStep, String)>,
        materialize: bool,
        cache: &mut ProbeCache,
    ) -> Result<(Option<Select>, Vec<(Vec<ufilter_rdb::ColRef>, Row)>, Option<String>), CheckOutcome>
    {
        let ctx = self.asg.node(action.context_node);
        if ctx.kind == AsgNodeKind::Root {
            trace.push((CheckStep::DataContext, "context is the view root".into()));
            return Ok((None, Vec::new(), None));
        }
        // Prefer the deepest path that covers every update predicate: the
        // user's FOR clause binds variables down to the predicate-bearing
        // level, and only combinations matching *all* predicates invoke the
        // UPDATE — so joining those relations into the probe is faithful
        // and keeps it selective.
        let mut info = path_info(&self.asg, action.context_node);
        let covers = |info: &crate::probe::PathInfo| {
            action
                .predicates
                .iter()
                .all(|(c, _, _)| info.relations.iter().any(|r| r.eq_ignore_ascii_case(&c.table)))
        };
        if !covers(&info) {
            let deeper = path_info(&self.asg, action.node);
            if covers(&deeper) {
                info = deeper;
            }
        }
        let preds = datacheck::relevant_preds(&info, &action.predicates);
        let probe = build_probe(&self.schema, &info, &preds, &SelectSpec::Keys);
        let (rs, cache_hit) =
            cache.get_or_fetch(&probe.to_string(), || db.query(&probe)).map_err(|e| {
                CheckOutcome::Untranslatable { step: CheckStep::DataContext, reason: e.to_string() }
            })?;
        if rs.is_empty() {
            let reason = format!(
                "the <{}> element the update addresses does not exist in the view",
                ctx.tag
            );
            trace.push((CheckStep::DataContext, reason.clone()));
            return Err(CheckOutcome::Untranslatable { step: CheckStep::DataContext, reason });
        }
        trace.push((
            CheckStep::DataContext,
            format!("context probe matched {} instance(s) of <{}>", rs.len(), ctx.tag),
        ));
        // Materialize for reuse (the paper's TAB_book) when requested. A
        // cache hit alone is not enough to skip the work: a different probe
        // may have overwritten `TAB_<tag>` in between, so only reuse the
        // table while it still holds this probe's result.
        let tab = if materialize {
            let name = format!("TAB_{}", ctx.tag);
            let sql = probe.to_string();
            if !(cache_hit && cache.materialized.get(&name) == Some(&sql)) {
                // Only record freshness on success — a failed materialize
                // must not make later items trust a stale table (the error
                // itself stays non-fatal, as before: the plan's probes
                // will surface it).
                if db.materialize(&name, &probe).is_ok() {
                    cache.materialized.insert(name.clone(), sql);
                } else {
                    cache.materialized.remove(&name);
                }
            }
            Some(name)
        } else {
            None
        };
        let rows: Vec<(Vec<ufilter_rdb::ColRef>, Row)> =
            rs.rows.into_iter().map(|r| (rs.columns.clone(), r)).collect();
        Ok((Some(probe), rows, tab))
    }
}

pub(crate) fn malformed(m: String) -> CheckReport {
    let reason = crate::outcome::InvalidReason::Malformed { detail: m };
    CheckReport {
        trace: vec![(CheckStep::Validation, reason.to_string())],
        outcome: CheckOutcome::Invalid(reason),
    }
}
