//! Lock-free observability: counters, log-linear histograms, and per-thread
//! recorders merged only at scrape time.
//!
//! U-Filter's core claim is that checking is *lightweight* — so the
//! instrumentation proving it must itself be lightweight. This module is
//! zero-dependency (std only) and contention-free on the hot path:
//!
//! * [`Histogram`] — an HDR-style **log-linear fixed-bucket** histogram
//!   over `u64` values (nanoseconds or counts). Values below 2⁴ get exact
//!   buckets; above that, each power-of-two octave splits into 2⁴ linear
//!   sub-buckets, bounding the relative error of any recorded value to
//!   ≤ 1/16 ≈ 6.25 % while covering the full `0..=u64::MAX` range in 976
//!   buckets. Recording is one index computation plus four `Relaxed`
//!   atomic adds — no allocation, no lock, no branch on contended state.
//! * [`Recorder`] — one per thread (created lazily, thread-local), holding
//!   every histogram family. Worker threads only ever touch their own
//!   recorder, so cache lines are never shared between writers; a global
//!   registry keeps the recorders alive (a dead thread's counts fold into
//!   a retired aggregate) and [`snapshot()`] merges them all at scrape
//!   time — the `METRICS` wire verb, the bench harness, nobody else.
//! * [`Stage`] / [`Verb`] — the span taxonomy: the check pipeline's eight
//!   stages (parse → … → probe-SQL) and the service's request verbs.
//!
//! Instrumentation call sites use the [`clock()`] / `*_elapsed` pair:
//! `clock()` returns `None` when metrics are disabled ([`set_enabled`]),
//! so a disabled build skips even the `Instant::now()` syscall.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` linear
/// buckets, so any recorded value is off by at most `2^-SUB_BITS` of
/// itself (6.25 %).
pub const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: `SUB` exact low buckets plus `(64 - SUB_BITS)`
/// octaves of `SUB` sub-buckets each — covers all of `u64`.
pub const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// The bucket a value lands in (total order preserving: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (msb - u64::from(SUB_BITS))) & (SUB - 1);
    (SUB + (msb - u64::from(SUB_BITS)) * SUB + sub) as usize
}

/// The smallest value that lands in bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let msb = (i - SUB) / SUB + u64::from(SUB_BITS);
    let sub = (i - SUB) % SUB;
    (1u64 << msb) | (sub << (msb - u64::from(SUB_BITS)))
}

/// The largest value that lands in bucket `i` (the value quantile
/// extraction reports, so quantiles are conservative upper bounds).
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// A lock-free log-linear histogram (see the [module docs](self)).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (the only allocation this type ever performs).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Allocation-free, lock-free: one bucket index
    /// computation and four `Relaxed` atomic RMWs.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (scrape path; allocates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A mergeable point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { counts: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping, like the live counter).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fold `other` into `self`. Merging is associative and commutative
    /// (bucket-wise addition), so per-worker snapshots can be combined in
    /// any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The interval recording `self − earlier`, where `earlier` is a prior
    /// snapshot of the same (monotonic) histogram — the bench harness uses
    /// this to extract per-run percentiles from the process-lifetime
    /// registry. `max` cannot be windowed and keeps `self`'s value (an
    /// upper bound for the interval).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .zip(&earlier.counts)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            max: self.max,
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` value — exact to one bucket, i.e.
    /// within 6.25 % of the true order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Median ([`quantile`](Self::quantile) 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// The check pipeline's span taxonomy (one histogram family per stage,
/// labelled `stage="<name>"` in the Prometheus exposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Update-text parsing (`ufilter_xquery::parse_update`).
    Parse,
    /// View compilation (parse + ASG construction + STAR marking) on a
    /// compile-cache miss.
    Compile,
    /// Relevance-index routing of one update (trie walk + posting merge).
    Route,
    /// Step 1: update validation against the view ASG.
    Validate,
    /// Step 1½: conservative aggregate/Distinct classification.
    NonInjective,
    /// Step 1½ refinement: the static query-update independence analysis,
    /// run only on updates the blunt non-injective check rejected.
    Independence,
    /// Step 2: the constant-time STAR check.
    Star,
    /// Translation-plan construction for a surviving update.
    Translate,
    /// Step 3's context-probe SQL execution (cache misses only — hits are
    /// counted by the probe cache, not timed here).
    ProbeSql,
}

impl Stage {
    /// Every stage, in pipeline order (the exposition emits them in this
    /// order).
    pub const ALL: [Stage; 9] = [
        Stage::Parse,
        Stage::Compile,
        Stage::Route,
        Stage::Validate,
        Stage::NonInjective,
        Stage::Independence,
        Stage::Star,
        Stage::Translate,
        Stage::ProbeSql,
    ];

    /// The stable `stage=` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Compile => "compile",
            Stage::Route => "route",
            Stage::Validate => "validate",
            Stage::NonInjective => "non_injective",
            Stage::Independence => "independence",
            Stage::Star => "star",
            Stage::Translate => "translate",
            Stage::ProbeSql => "probe_sql",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).expect("stage in ALL")
    }
}

/// Request-verb taxonomy for per-verb latency (labelled `verb="<name>"`).
/// Pool-backed verbs are recorded by the pool entry points (so in-process
/// callers like the bench harness hit the same histograms as TCP traffic);
/// the rest are recorded by the server's request handler. `SHUTDOWN` is
/// not recorded — it is terminal and fires once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// `CHECK` (pool).
    Check,
    /// `BATCH` (pool).
    Batch,
    /// `CHECKALL` (pool).
    CheckAll,
    /// `BATCHALL` (pool).
    BatchAll,
    /// `CATALOG ADD` (server).
    CatalogAdd,
    /// `CATALOG DROP` (server).
    CatalogDrop,
    /// `CATALOG LIST` (server).
    CatalogList,
    /// `CATALOG VERIFY` (server).
    CatalogVerify,
    /// `STATS` (server).
    Stats,
    /// `METRICS` (server).
    Metrics,
    /// `PING` (server).
    Ping,
}

impl Verb {
    /// Every verb, wire order.
    pub const ALL: [Verb; 11] = [
        Verb::Check,
        Verb::Batch,
        Verb::CheckAll,
        Verb::BatchAll,
        Verb::CatalogAdd,
        Verb::CatalogDrop,
        Verb::CatalogList,
        Verb::CatalogVerify,
        Verb::Stats,
        Verb::Metrics,
        Verb::Ping,
    ];

    /// The stable `verb=` label value.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Check => "check",
            Verb::Batch => "batch",
            Verb::CheckAll => "checkall",
            Verb::BatchAll => "batchall",
            Verb::CatalogAdd => "catalog_add",
            Verb::CatalogDrop => "catalog_drop",
            Verb::CatalogList => "catalog_list",
            Verb::CatalogVerify => "catalog_verify",
            Verb::Stats => "stats",
            Verb::Metrics => "metrics",
            Verb::Ping => "ping",
        }
    }

    fn index(self) -> usize {
        Verb::ALL.iter().position(|v| *v == self).expect("verb in ALL")
    }
}

/// Which shard lock a hold-time sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// A shard read lock (the check hot path).
    Read,
    /// A shard write lock (catalog mutation / guarded DDL sweep).
    Write,
}

/// Which durable-store operation a latency sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistOp {
    /// Appending encoded record frames to the log.
    Append,
    /// The `fsync` making them durable.
    Fsync,
}

/// One thread's private histogram set. Never shared between writer
/// threads; the scrape path reads it with `Relaxed` loads.
#[derive(Debug)]
pub struct Recorder {
    stages: Vec<Histogram>,
    verbs: Vec<Histogram>,
    queue_wait: Histogram,
    lock_read: Histogram,
    lock_write: Histogram,
    persist_append: Histogram,
    persist_fsync: Histogram,
    route_candidates: Histogram,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            stages: (0..Stage::ALL.len()).map(|_| Histogram::new()).collect(),
            verbs: (0..Verb::ALL.len()).map(|_| Histogram::new()).collect(),
            queue_wait: Histogram::new(),
            lock_read: Histogram::new(),
            lock_write: Histogram::new(),
            persist_append: Histogram::new(),
            persist_fsync: Histogram::new(),
            route_candidates: Histogram::new(),
        }
    }

    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: self.stages.iter().map(Histogram::snapshot).collect(),
            verbs: self.verbs.iter().map(Histogram::snapshot).collect(),
            queue_wait: self.queue_wait.snapshot(),
            lock_read: self.lock_read.snapshot(),
            lock_write: self.lock_write.snapshot(),
            persist_append: self.persist_append.snapshot(),
            persist_fsync: self.persist_fsync.snapshot(),
            route_candidates: self.route_candidates.snapshot(),
        }
    }
}

/// Every histogram family, merged across all thread recorders — what the
/// `METRICS` verb renders and the bench harness windows with
/// [`HistogramSnapshot::diff`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    stages: Vec<HistogramSnapshot>,
    verbs: Vec<HistogramSnapshot>,
    /// Time a pool job spent queued before a worker picked it up.
    pub queue_wait: HistogramSnapshot,
    /// Shard read-lock acquire + hold time on the check path.
    pub lock_read: HistogramSnapshot,
    /// Shard write-lock acquire + hold time (mutations, DDL sweeps).
    pub lock_write: HistogramSnapshot,
    /// Durable-log append (write) latency.
    pub persist_append: HistogramSnapshot,
    /// Durable-log fsync latency.
    pub persist_fsync: HistogramSnapshot,
    /// Candidate-set size per routed fan-out update (a count distribution,
    /// not a duration).
    pub route_candidates: HistogramSnapshot,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot::empty()
    }
}

impl MetricsSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            stages: (0..Stage::ALL.len()).map(|_| HistogramSnapshot::empty()).collect(),
            verbs: (0..Verb::ALL.len()).map(|_| HistogramSnapshot::empty()).collect(),
            queue_wait: HistogramSnapshot::empty(),
            lock_read: HistogramSnapshot::empty(),
            lock_write: HistogramSnapshot::empty(),
            persist_append: HistogramSnapshot::empty(),
            persist_fsync: HistogramSnapshot::empty(),
            route_candidates: HistogramSnapshot::empty(),
        }
    }

    /// One stage's span histogram.
    pub fn stage(&self, s: Stage) -> &HistogramSnapshot {
        &self.stages[s.index()]
    }

    /// One verb's request-latency histogram.
    pub fn verb(&self, v: Verb) -> &HistogramSnapshot {
        &self.verbs[v.index()]
    }

    /// Fold `other` in (bucket-wise; associative and commutative).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
        for (a, b) in self.verbs.iter_mut().zip(&other.verbs) {
            a.merge(b);
        }
        self.queue_wait.merge(&other.queue_wait);
        self.lock_read.merge(&other.lock_read);
        self.lock_write.merge(&other.lock_write);
        self.persist_append.merge(&other.persist_append);
        self.persist_fsync.merge(&other.persist_fsync);
        self.route_candidates.merge(&other.route_candidates);
    }
}

/// Live recorders plus the folded counts of threads that have exited
/// (their recorders are merged here once, at thread death, so the registry
/// does not grow with connection churn).
struct Registry {
    live: Vec<Arc<Recorder>>,
    retired: MetricsSnapshot,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry { live: Vec::new(), retired: MetricsSnapshot::empty() })
    })
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    // The registry only ever sees panic-free merge/push code; recover from
    // a poisoned lock rather than cascading the panic into metrics scrapes.
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Owns this thread's registry membership: registers at first use, folds
/// the recorder into the retired aggregate at thread exit.
struct ThreadSlot {
    rec: Arc<Recorder>,
}

impl ThreadSlot {
    fn register() -> ThreadSlot {
        let rec = Arc::new(Recorder::new());
        lock_registry().live.push(Arc::clone(&rec));
        ThreadSlot { rec }
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        let mut reg = lock_registry();
        if let Some(i) = reg.live.iter().position(|r| Arc::ptr_eq(r, &self.rec)) {
            reg.live.swap_remove(i);
        }
        reg.retired.merge(&self.rec.snapshot());
    }
}

thread_local! {
    static LOCAL: ThreadSlot = ThreadSlot::register();
}

fn with_recorder(f: impl FnOnce(&Recorder)) {
    // try_with: recording from another thread-local's destructor (after
    // this slot is gone) silently drops the sample instead of panicking.
    let _ = LOCAL.try_with(|slot| f(&slot.rec));
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is on (default: on).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable/disable recording. Disabling makes [`clock`] return
/// `None`, so instrumented call sites skip even the clock read — the
/// overhead self-check compares exactly these two configurations.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Span start: `Some(Instant::now())`, or `None` when disabled.
pub fn clock() -> Option<Instant> {
    enabled().then(Instant::now)
}

fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Record a pipeline-stage span started at [`clock()`].
pub fn stage_elapsed(stage: Stage, start: Option<Instant>) {
    if let Some(t) = start {
        let nanos = elapsed_nanos(t);
        with_recorder(|r| r.stages[stage.index()].record(nanos));
    }
}

/// Record a request-verb latency span started at [`clock()`].
pub fn verb_elapsed(verb: Verb, start: Option<Instant>) {
    if let Some(t) = start {
        let nanos = elapsed_nanos(t);
        with_recorder(|r| r.verbs[verb.index()].record(nanos));
    }
}

/// Record a pool-queue wait started at enqueue time with [`clock()`].
pub fn queue_wait_elapsed(start: Option<Instant>) {
    if let Some(t) = start {
        let nanos = elapsed_nanos(t);
        with_recorder(|r| r.queue_wait.record(nanos));
    }
}

/// Record a shard-lock acquire + hold span started at [`clock()`].
pub fn lock_hold_elapsed(kind: LockKind, start: Option<Instant>) {
    if let Some(t) = start {
        let nanos = elapsed_nanos(t);
        with_recorder(|r| match kind {
            LockKind::Read => r.lock_read.record(nanos),
            LockKind::Write => r.lock_write.record(nanos),
        });
    }
}

/// Record a durable-store operation span started at [`clock()`].
pub fn persist_elapsed(op: PersistOp, start: Option<Instant>) {
    if let Some(t) = start {
        let nanos = elapsed_nanos(t);
        with_recorder(|r| match op {
            PersistOp::Append => r.persist_append.record(nanos),
            PersistOp::Fsync => r.persist_fsync.record(nanos),
        });
    }
}

/// Record the candidate-set size of one routed fan-out update.
pub fn record_route_candidates(n: usize) {
    if enabled() {
        with_recorder(|r| r.route_candidates.record(n as u64));
    }
}

/// Merge every live thread recorder plus the retired aggregate into one
/// [`MetricsSnapshot`]. Scrape-time only: takes the registry lock, never
/// touched by recording paths.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock_registry();
    let mut out = reg.retired.clone();
    for rec in &reg.live {
        out.merge(&rec.snapshot());
    }
    out
}

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique per-request trace id: a monotonic counter mixed
/// through SplitMix64 so ids are well-distributed in their hex rendering
/// but the sequence stays deterministic for a given request order.
pub fn next_trace_id() -> u64 {
    let mut z = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_monotone_and_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        // Lower bounds invert the index and stay ordered.
        let mut prev = None;
        for i in 0..BUCKETS {
            let lo = bucket_lower(i);
            assert_eq!(bucket_index(lo), i, "bucket {i} lower bound maps back");
            assert_eq!(bucket_index(bucket_upper(i)), i, "bucket {i} upper bound maps back");
            if let Some(p) = prev {
                assert!(lo > p, "bucket {i} not ordered");
            }
            prev = Some(lo);
        }
        // Values below 2^SUB_BITS are exact.
        for v in 0..SUB {
            assert_eq!(bucket_lower(bucket_index(v)), v);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [17u64, 999, 1_000_000, 123_456_789_123, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_upper(i) - bucket_lower(i);
            assert!(
                (width as f64) <= (bucket_lower(i) as f64) / 8.0,
                "bucket {i} too wide for {v}"
            );
        }
    }

    #[test]
    fn quantiles_track_recorded_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        // The reported quantile's bucket equals the true order statistic's.
        assert_eq!(bucket_index(s.p50()), bucket_index(500));
        assert_eq!(bucket_index(s.p99()), bucket_index(990));
        assert_eq!(bucket_index(s.p999()), bucket_index(1000));
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_merge_and_diff_are_inverse() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [0u64, 1, 15, 16, 17, 1_000, u64::MAX] {
            a.record(v);
        }
        for v in [3u64, 700, 42] {
            b.record(v);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.count(), 10);
        assert_eq!(merged.diff(&sb).counts, sa.counts);
        assert_eq!(merged.diff(&sb).count(), sa.count());
        // Commutative.
        let mut other = sb.clone();
        other.merge(&sa);
        assert_eq!(merged.counts, other.counts);
    }

    #[test]
    fn thread_recorders_merge_at_scrape_even_after_thread_death() {
        let before = snapshot().stage(Stage::Star).count();
        let handle = std::thread::spawn(|| {
            let t = clock();
            stage_elapsed(Stage::Star, t);
        });
        handle.join().unwrap();
        assert!(snapshot().stage(Stage::Star).count() > before, "retired counts survive");
    }

    #[test]
    fn disabled_clock_records_nothing() {
        set_enabled(false);
        let t = clock();
        assert!(t.is_none());
        stage_elapsed(Stage::Parse, t); // no-op
        set_enabled(true);
        assert!(clock().is_some());
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero_soon() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
    }
}
