//! Step 3 — data-driven translatability checking (§6): execute a
//! [`TranslationPlan`] under one of the three strategies.
//!
//! * **Outside** (§6.2.2): probe before every statement — key-conflict
//!   probes for inserts, existence probes for deletes — and skip/reject
//!   before touching the database. Detects failed cases early (Fig. 17).
//! * **Hybrid** (§6.2.2): translate and execute inside a transaction,
//!   relying on the engine's errors (key conflict) and warnings (zero rows
//!   deleted); indexes on keys make its joins cheap (Fig. 16).
//! * **Internal** (§6.2.1): map the XML view to a relational LEFT JOIN view,
//!   fetch *all* attributes of the context to build a complete view tuple,
//!   and update through the relational view. Deliberately the most
//!   expensive (Fig. 15).

use ufilter_asg::{AsgNodeKind, ViewAsg};
use ufilter_rdb::{
    view as rdb_view, ColRef, DatabaseSchema, Db, Expr, FromItem, JoinKind, Select, SelectItem,
    Stmt, TableRef, Value,
};
use ufilter_xquery::UpdateKind;

use crate::outcome::CheckStep;
use crate::probe::{build_probe, path_info, SelectSpec};
use crate::target::ResolvedAction;
use crate::translate::TranslationPlan;

/// Update-point checking strategy (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Fetch all candidate rows into the engine's host and check there
    /// (§6.2.1) — expensive fetches, no extra SQL round trips.
    Internal,
    /// Inline the checks into the translated SQL itself, no intermediate
    /// materialization (§6.2.2/§7.2).
    Hybrid,
    /// Probe with separate SQL before issuing each translated statement,
    /// materializing the context probe for reuse (§6.2.3).
    #[default]
    Outside,
}

/// Result of running the data checks (and optionally the update itself).
#[derive(Debug, Clone, Default)]
pub struct DataCheckReport {
    /// Rejection, if any.
    pub rejected: Option<(CheckStep, String)>,
    /// Statements actually issued.
    pub executed: usize,
    /// Statements skipped by empty outside-probes.
    pub skipped: usize,
    /// Total rows affected.
    pub rows_affected: usize,
    /// Human-readable trace notes accumulated while checking.
    pub notes: Vec<String>,
}

impl DataCheckReport {
    fn reject(step: CheckStep, reason: impl Into<String>) -> DataCheckReport {
        DataCheckReport { rejected: Some((step, reason.into())), ..Default::default() }
    }
}

/// Shared-data checks (existence + duplication consistency) — the condition
/// analysis of Fig. 5, common to every strategy.
pub fn run_shared_checks(
    db: &Db,
    plan: &TranslationPlan,
) -> Result<Vec<String>, (CheckStep, String)> {
    let mut notes = Vec::new();
    for check in &plan.shared_checks {
        let rids = db
            .rows_matching(&check.relation, &check.key_cols, &check.key_vals)
            .map_err(|e| (CheckStep::DataPoint, e.to_string()))?;
        let Some(rid) = rids.first() else {
            let key: Vec<String> = check.key_vals.iter().map(|v| v.to_string()).collect();
            return Err((
                CheckStep::DataPoint,
                format!(
                    "shared data missing: {}({}) does not exist — inserting it would \
                     surface elsewhere in the view",
                    check.relation,
                    key.join(", ")
                ),
            ));
        };
        let schema = db.schema().table(&check.relation).expect("checked").clone();
        let stored = db
            .table_data(&check.relation)
            .and_then(|d| d.heap.get(*rid))
            .cloned()
            .expect("matched row");
        for (col, val) in &check.supplied {
            if val.is_null() {
                continue;
            }
            let idx = schema.column_index(col).ok_or_else(|| {
                (CheckStep::DataPoint, format!("unknown column {}.{col}", check.relation))
            })?;
            if stored[idx].sql_eq(val) != Some(true) {
                return Err((
                    CheckStep::DataPoint,
                    format!(
                        "duplication inconsistency: {}.{col} is {} in the base but the \
                         fragment supplies {val}",
                        check.relation, stored[idx]
                    ),
                ));
            }
        }
        notes.push(format!("shared data verified: {} exists and is consistent", check.relation));
    }
    for pre in &plan.preconditions {
        let rs = db.query(&pre.probe).map_err(|e| (CheckStep::DataPoint, e.to_string()))?;
        if rs.is_empty() != pre.expect_empty {
            return Err((CheckStep::DataPoint, pre.reason.clone()));
        }
        notes.push(if pre.expect_empty {
            "precondition probe empty: no conflicting occurrence".into()
        } else {
            "precondition probe non-empty: referenced data exists".into()
        });
    }
    Ok(notes)
}

/// Outside strategy: probe first, then (optionally) execute.
pub fn run_outside(db: &mut Db, plan: &TranslationPlan, apply: bool) -> DataCheckReport {
    let mut report = DataCheckReport::default();
    match run_shared_checks(db, plan) {
        Ok(notes) => report.notes.extend(notes),
        Err((step, reason)) => return DataCheckReport::reject(step, reason),
    }
    for planned in &plan.statements {
        if let Some(probe) = &planned.probe {
            let rs = match db.query(probe) {
                Ok(rs) => rs,
                Err(e) => return DataCheckReport::reject(CheckStep::DataPoint, e.to_string()),
            };
            match &planned.stmt {
                Stmt::Insert(_) => {
                    if !rs.is_empty() {
                        return DataCheckReport::reject(
                            CheckStep::DataPoint,
                            format!(
                                "data conflict: a {} row with this key already exists",
                                planned.relation
                            ),
                        );
                    }
                }
                _ => {
                    if rs.is_empty() {
                        report.skipped += 1;
                        report.notes.push(format!(
                            "probe empty: statement on {} skipped (nothing to do)",
                            planned.relation
                        ));
                        continue;
                    }
                }
            }
        }
        if apply {
            match db.run(planned.stmt.clone()) {
                Ok(out) => {
                    report.executed += 1;
                    report.rows_affected += out.affected;
                    for w in out.warnings {
                        report.notes.push(w.to_string());
                    }
                }
                Err(e) => {
                    return DataCheckReport::reject(CheckStep::DataPoint, e.to_string());
                }
            }
        }
    }
    report
}

/// Hybrid strategy: execute inside a transaction, trusting the engine's
/// error/warning channel; roll back on any error. With `apply = false` the
/// transaction is rolled back even on success (pure check) — and when the
/// caller already holds a transaction (so rolling back would discard *their*
/// work), the statements run against a throwaway copy of the database
/// instead, keeping the check side-effect-free.
pub fn run_hybrid(db: &mut Db, plan: &TranslationPlan, apply: bool) -> DataCheckReport {
    let mut report = DataCheckReport::default();
    match run_shared_checks(db, plan) {
        Ok(notes) => report.notes.extend(notes),
        Err((step, reason)) => return DataCheckReport::reject(step, reason),
    }
    let own_txn = !db.in_transaction();
    if !own_txn && !apply {
        let mut copy = db.clone();
        hybrid_exec(&mut copy, plan, &mut report);
        return report;
    }
    if own_txn {
        db.begin().expect("no active transaction");
    }
    let failed = !hybrid_exec(db, plan, &mut report);
    if own_txn {
        if apply && !failed {
            db.commit().expect("transaction active");
        } else {
            db.rollback().expect("transaction active");
        }
    }
    report
}

/// Run the plan's statements, accumulating into `report`; `false` (and a
/// rejection recorded in `report`) on the first engine error.
fn hybrid_exec(db: &mut Db, plan: &TranslationPlan, report: &mut DataCheckReport) -> bool {
    for planned in &plan.statements {
        match db.run(planned.stmt.clone()) {
            Ok(out) => {
                report.executed += 1;
                report.rows_affected += out.affected;
                for w in out.warnings {
                    report.notes.push(w.to_string());
                }
            }
            Err(e) => {
                *report = DataCheckReport::reject(
                    CheckStep::DataPoint,
                    format!("engine rejected the translated update: {e}"),
                );
                return false;
            }
        }
    }
    true
}

/// Internal strategy (§6.2.1): update through the mapping relational view.
pub fn run_internal(
    db: &mut Db,
    asg: &ViewAsg,
    schema: &DatabaseSchema,
    action: &ResolvedAction,
    plan: &TranslationPlan,
    apply: bool,
) -> DataCheckReport {
    // Value-element ops translate to plain UPDATEs; the mapping relational
    // view has no slot for them (it reads whole tuples), so they execute
    // directly, like the hybrid strategy (which re-runs the shared checks
    // and preconditions itself).
    if !plan.statements.is_empty()
        && plan.statements.iter().all(|p| matches!(p.stmt, Stmt::Update(_)))
    {
        let mut inner = run_hybrid(db, plan, apply);
        inner.notes.push("internal strategy: value op executed directly".into());
        return inner;
    }
    let mut report = DataCheckReport::default();
    match run_shared_checks(db, plan) {
        Ok(notes) => report.notes.extend(notes),
        Err((step, reason)) => return DataCheckReport::reject(step, reason),
    }
    let view_name = match ensure_relational_view(db, asg, schema) {
        Ok(n) => n,
        Err(e) => return DataCheckReport::reject(CheckStep::DataPoint, e),
    };
    match action.kind {
        UpdateKind::Insert => {
            // The expensive part: fetch *all* attributes of every context
            // relation to build complete view tuples (the paper's critique:
            // UV "has to find (pubid, pubname, price)" it never needed).
            let ctx_node = if asg.node(action.context_node).kind == AsgNodeKind::Root {
                action.node
            } else {
                action.context_node
            };
            let info = path_info(asg, ctx_node);
            let probe = build_probe(
                schema,
                &info,
                &relevant_preds(&info, &action.predicates),
                &SelectSpec::AllColumns,
            );
            let ctx_rows = match db.query(&probe) {
                Ok(rs) => rs,
                Err(e) => return DataCheckReport::reject(CheckStep::DataPoint, e.to_string()),
            };
            // Values supplied by the fragment, via the plan's statements.
            let mut supplied: Vec<(String, Value)> = Vec::new();
            for planned in &plan.statements {
                if let Stmt::Insert(ins) = &planned.stmt {
                    for (c, v) in ins.columns.iter().zip(&ins.rows[0]) {
                        supplied.push((
                            format!(
                                "{}_{}",
                                ins.table.to_ascii_lowercase(),
                                c.to_ascii_lowercase()
                            ),
                            v.clone(),
                        ));
                    }
                }
            }
            for check in &plan.shared_checks {
                for (c, v) in &check.supplied {
                    supplied.push((
                        format!(
                            "{}_{}",
                            check.relation.to_ascii_lowercase(),
                            c.to_ascii_lowercase()
                        ),
                        v.clone(),
                    ));
                }
            }
            // Only columns the relational view actually projects can be
            // supplied through it.
            let view_cols: Vec<String> = db
                .view_def(&view_name)
                .map(|v| {
                    v.select
                        .items
                        .iter()
                        .filter_map(|i| match i {
                            ufilter_rdb::SelectItem::Expr { alias: Some(a), .. } => {
                                Some(a.to_ascii_lowercase())
                            }
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            // One view-tuple insert per context row (or one bare insert for
            // a root context).
            let row_count = ctx_rows.rows.len().max(1);
            for i in 0..row_count {
                let mut columns = Vec::new();
                let mut values = Vec::new();
                if let Some(row) = ctx_rows.rows.get(i) {
                    for (j, col) in ctx_rows.columns.iter().enumerate() {
                        let alias = format!(
                            "{}_{}",
                            col.table.to_ascii_lowercase(),
                            col.column.to_ascii_lowercase()
                        );
                        if view_cols.contains(&alias) {
                            columns.push(alias);
                            values.push(row[j].clone());
                        }
                    }
                }
                for (c, v) in &supplied {
                    if view_cols.contains(c) && !columns.iter().any(|x| x == c) {
                        columns.push(c.clone());
                        values.push(v.clone());
                    }
                }
                match rdb_view::insert_into_view(db, &view_name, &columns, &[values]) {
                    Ok(n) => {
                        report.executed += 1;
                        report.rows_affected += n;
                    }
                    Err(e) => return DataCheckReport::reject(CheckStep::DataPoint, e.to_string()),
                }
            }
            if !apply {
                report.notes.push("internal strategy executed through the view".into());
            }
        }
        UpdateKind::Delete | UpdateKind::Replace => {
            // Delete through the view: identify target keys via the plan's
            // probe, then push a predicate over the view's aliased columns.
            let Some(planned) = plan.statements.first() else {
                return report;
            };
            let Some(probe) = &planned.probe else {
                return DataCheckReport::reject(CheckStep::DataPoint, "missing probe");
            };
            let rs = match db.query(probe) {
                Ok(rs) => rs,
                Err(e) => return DataCheckReport::reject(CheckStep::DataPoint, e.to_string()),
            };
            if rs.is_empty() {
                report.skipped += 1;
                return report;
            }
            let first_col = &rs.columns[0];
            let alias = format!(
                "{}_{}",
                first_col.table.to_ascii_lowercase(),
                first_col.column.to_ascii_lowercase()
            );
            let pred = Expr::InSet {
                expr: Box::new(Expr::col("", alias)),
                set: rs.rows.iter().map(|r| r[0].clone()).collect(),
                negated: false,
            };
            match rdb_view::delete_from_view_target(
                db,
                &view_name,
                Some(&pred),
                Some(&planned.relation),
            ) {
                Ok(n) => {
                    report.executed += 1;
                    report.rows_affected += n;
                    if !apply {
                        report.notes.push("internal delete executed through the view".into());
                    }
                }
                Err(e) => return DataCheckReport::reject(CheckStep::DataPoint, e.to_string()),
            }
        }
    }
    report
}

/// Predicates restricted to relations present in the path (others apply to
/// deeper instance probes).
pub fn relevant_preds(
    info: &crate::probe::PathInfo,
    preds: &[(ColRef, ufilter_rdb::CmpOp, Value)],
) -> Vec<(ColRef, ufilter_rdb::CmpOp, Value)> {
    preds
        .iter()
        .filter(|(c, _, _)| info.relations.iter().any(|r| r.eq_ignore_ascii_case(&c.table)))
        .cloned()
        .collect()
}

/// Create (once) the mapping relational view of the whole XML view: a
/// LEFT JOIN chain over `rel(DEF_V)` in FK-topological order, projecting
/// every relation's view leaves plus primary keys, aliased `rel_col`
/// (Fig. 11's `RelationalBookView`).
pub fn ensure_relational_view(
    db: &mut Db,
    asg: &ViewAsg,
    schema: &DatabaseSchema,
) -> Result<String, String> {
    let name = format!("RV_{}", asg.node(asg.root()).tag);
    if db.view_def(&name).is_some() {
        return Ok(name);
    }
    // Relations in FK-topological order (referenced first).
    let mut rels = asg.relations.clone();
    rels.sort_by_key(|r| schema.table(r).map(|t| t.foreign_keys.len()).unwrap_or(0));
    // Collect every join condition in the ASG.
    let mut conds: Vec<(ColRef, ColRef)> = Vec::new();
    for n in asg.iter() {
        for jc in &n.conditions {
            conds.push((jc.left.clone(), jc.right.clone()));
        }
    }
    // Build the join tree.
    let mut placed: Vec<String> = vec![rels[0].clone()];
    let mut from = FromItem::Table(TableRef::named(rels[0].clone()));
    for r in rels.iter().skip(1) {
        let cond = conds.iter().find(|(a, b)| {
            (a.table.eq_ignore_ascii_case(r)
                && placed.iter().any(|p| p.eq_ignore_ascii_case(&b.table)))
                || (b.table.eq_ignore_ascii_case(r)
                    && placed.iter().any(|p| p.eq_ignore_ascii_case(&a.table)))
        });
        let Some((a, b)) = cond else {
            return Err(format!(
                "cannot build the mapping relational view: {r} is not joined to the rest"
            ));
        };
        from = FromItem::Join {
            kind: JoinKind::Left,
            left: Box::new(from),
            right: Box::new(FromItem::Table(TableRef::named(r.clone()))),
            on: Expr::eq(Expr::Column(a.clone()), Expr::Column(b.clone())),
        };
        placed.push(r.clone());
    }
    // Projection: view leaves + PKs per relation, aliased rel_col.
    let mut items = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for r in &placed {
        let Some(t) = schema.table(r) else { continue };
        let mut cols: Vec<String> = t.primary_key.clone();
        for n in asg.iter() {
            if let Some(leaf) = &n.leaf {
                if leaf.name.table.eq_ignore_ascii_case(r)
                    && !cols.iter().any(|c| c.eq_ignore_ascii_case(&leaf.name.column))
                {
                    cols.push(leaf.name.column.clone());
                }
            }
        }
        // FK columns participating in join conditions.
        for fk in &t.foreign_keys {
            for c in &fk.columns {
                if !cols.iter().any(|x| x.eq_ignore_ascii_case(c)) {
                    cols.push(c.clone());
                }
            }
        }
        for c in cols {
            let alias = format!("{}_{}", t.name.to_ascii_lowercase(), c.to_ascii_lowercase());
            if !seen.contains(&alias) {
                seen.push(alias.clone());
                items.push(SelectItem::Expr {
                    expr: Expr::col(t.name.clone(), c),
                    alias: Some(alias),
                });
            }
        }
    }
    let select = Select::new(items, vec![from], None);
    db.create_view(ufilter_rdb::CreateView { name: name.clone(), select })
        .map_err(|e| e.to_string())?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bookdemo;

    #[test]
    fn relational_view_matches_fig11_shape() {
        let f = bookdemo::book_filter();
        let mut db = bookdemo::book_db();
        let name = ensure_relational_view(&mut db, &f.asg, &f.schema).unwrap();
        assert_eq!(name, "RV_BookView");
        let def = db.view_def(&name).unwrap();
        // Left-join chain over publisher → book → review.
        let tables: Vec<&str> = def.select.from[0].tables().iter().map(|t| t.binding()).collect();
        assert_eq!(tables, vec!["publisher", "book", "review"]);
        // Projected aliases include the Fig. 11 columns.
        let rs = db.query_sql("SELECT * FROM RV_BookView").unwrap();
        for col in ["publisher_pubid", "book_bookid", "book_title", "review_reviewid"] {
            assert!(rs.col(col).is_some(), "missing {col}");
        }
        // Fig. 11 row count: 3 rows for A01's books/reviews + 98002 + B01 pad.
        assert_eq!(rs.len(), 5);
        // Idempotent.
        assert_eq!(ensure_relational_view(&mut db, &f.asg, &f.schema).unwrap(), name);
    }

    #[test]
    fn shared_check_passes_on_consistent_duplicate() {
        let db = bookdemo::book_db();
        let plan = TranslationPlan {
            context_probe: None,
            tab_name: None,
            preconditions: Vec::new(),
            shared_checks: vec![crate::translate::SharedCheck {
                relation: "publisher".into(),
                key_cols: vec!["pubid".into()],
                key_vals: vec![Value::str("A01")],
                supplied: vec![
                    ("pubid".into(), Value::str("A01")),
                    ("pubname".into(), Value::str("McGraw-Hill Inc.")),
                ],
            }],
            statements: Vec::new(),
            notes: Vec::new(),
        };
        assert!(run_shared_checks(&db, &plan).is_ok());
    }

    #[test]
    fn shared_check_rejects_missing_and_inconsistent() {
        let db = bookdemo::book_db();
        let mk = |key: &str, name: &str| TranslationPlan {
            context_probe: None,
            tab_name: None,
            preconditions: Vec::new(),
            shared_checks: vec![crate::translate::SharedCheck {
                relation: "publisher".into(),
                key_cols: vec!["pubid".into()],
                key_vals: vec![Value::str(key)],
                supplied: vec![("pubname".into(), Value::str(name))],
            }],
            statements: Vec::new(),
            notes: Vec::new(),
        };
        let missing = run_shared_checks(&db, &mk("Z99", "x")).unwrap_err();
        assert!(missing.1.contains("does not exist"), "{}", missing.1);
        let inconsistent = run_shared_checks(&db, &mk("A01", "Wrong Name")).unwrap_err();
        assert!(inconsistent.1.contains("inconsistency"), "{}", inconsistent.1);
    }

    #[test]
    fn hybrid_check_only_mode_rolls_back() {
        let f = bookdemo::book_filter();
        let mut db = bookdemo::book_db();
        let before = db.dump();
        let plan = TranslationPlan {
            context_probe: None,
            tab_name: None,
            preconditions: Vec::new(),
            shared_checks: Vec::new(),
            statements: vec![crate::translate::PlannedStmt {
                stmt: ufilter_rdb::Parser::parse_stmt("DELETE FROM review WHERE bookid = '98001'")
                    .unwrap(),
                probe: None,
                relation: "review".into(),
            }],
            notes: Vec::new(),
        };
        let report = run_hybrid(&mut db, &plan, false);
        assert!(report.rejected.is_none());
        assert_eq!(report.rows_affected, 2);
        assert_eq!(db.dump(), before, "check-only hybrid must roll back");
        let _ = &f;
    }

    #[test]
    fn outside_skips_empty_delete_probes() {
        let mut db = bookdemo::book_db();
        let plan = TranslationPlan {
            context_probe: None,
            tab_name: None,
            preconditions: Vec::new(),
            shared_checks: Vec::new(),
            statements: vec![crate::translate::PlannedStmt {
                stmt: ufilter_rdb::Parser::parse_stmt("DELETE FROM review WHERE bookid = 'nope'")
                    .unwrap(),
                probe: Some(
                    ufilter_rdb::Parser::parse_select(
                        "SELECT rowid FROM review WHERE bookid = 'nope'",
                    )
                    .unwrap(),
                ),
                relation: "review".into(),
            }],
            notes: Vec::new(),
        };
        let report = run_outside(&mut db, &plan, true);
        assert!(report.rejected.is_none());
        assert_eq!(report.skipped, 1);
        assert_eq!(report.executed, 0);
    }
}
