//! Step 1 — update validation (§4): check the update against the *local*
//! constraints captured in the view ASG.

use ufilter_asg::{AsgNodeKind, Card, ViewAsg};
use ufilter_rdb::sat::Domain;
use ufilter_rdb::Value;
use ufilter_xml::{Document, NodeId};
use ufilter_xquery::UpdateKind;

use crate::outcome::InvalidReason;
use crate::target::{clean_text, find_leaf, ResolvedAction};

/// Validate one resolved action. `Ok(())` means *valid* (Fig. 6's first
/// partition); errors carry the paper's rejection reasons.
pub fn validate(asg: &ViewAsg, action: &ResolvedAction) -> Result<(), InvalidReason> {
    // Check (i) for deletes — and, harmlessly, for inserts too: the
    // update's non-correlation predicates must overlap the view's check
    // annotations (u5: `price > 50` can never select view content).
    predicates_overlap_view(asg, action)?;

    match action.kind {
        UpdateKind::Delete => {
            let node = asg.node(action.node);
            match node.kind {
                // Check (ii): an XML delete may remove a single value or
                // simple element only if the schema lets it be absent; an
                // incoming edge of `1` makes the deletion invalid (u6).
                AsgNodeKind::Leaf | AsgNodeKind::Tag => {
                    if node.card == Card::One {
                        let what = find_leaf(asg, action.node)
                            .map(|l| l.name.to_string())
                            .unwrap_or_else(|| node.tag.clone());
                        return Err(InvalidReason::NonDeletableNode {
                            detail: format!(
                                "<{}> has incoming edge cardinality 1 ({what} is required)",
                                node.tag
                            ),
                        });
                    }
                    Ok(())
                }
                // Deletes of complex elements flow to STAR (u2 is *valid*
                // yet untranslatable; see DESIGN.md faithfulness note 1).
                // Aggregate values are likewise *valid* to address — the
                // non-injective classification then rejects them with a
                // precise reason rather than calling the update malformed.
                AsgNodeKind::Internal | AsgNodeKind::Root | AsgNodeKind::Aggregate => Ok(()),
            }
        }
        UpdateKind::Insert => {
            let frag = action.fragment.as_ref().ok_or_else(|| InvalidReason::Malformed {
                detail: "insert without fragment".into(),
            })?;
            // Dual of the delete check (ii): a value element with incoming
            // edge `1` is always present, so inserting another can only
            // produce a second occurrence — a schema violation.
            let node = asg.node(action.node);
            if matches!(node.kind, AsgNodeKind::Tag | AsgNodeKind::Leaf) {
                if node.card == Card::One {
                    return Err(InvalidReason::HierarchyViolation {
                        detail: format!(
                            "<{}> has incoming edge cardinality 1 (always present); inserting \
                             another occurrence is invalid",
                            node.tag
                        ),
                    });
                }
                require_value_text(asg, action.node, frag)?;
            }
            validate_fragment(asg, action.node, frag, frag.root())
        }
        UpdateKind::Replace => {
            // Complex-element replaces were split into delete+insert during
            // resolution; a surviving Replace action is an in-place value
            // swap — validate the replacement value like an insert's.
            match &action.fragment {
                Some(frag) => {
                    require_value_text(asg, action.node, frag)?;
                    validate_fragment(asg, action.node, frag, frag.root())
                }
                None => Ok(()),
            }
        }
    }
}

fn predicates_overlap_view(asg: &ViewAsg, action: &ResolvedAction) -> Result<(), InvalidReason> {
    // Group predicates per column, folding each group into the leaf's
    // check-annotation domain.
    use std::collections::HashMap;
    let mut domains: HashMap<(String, String), (Domain, ufilter_rdb::DataType)> = HashMap::new();
    for (col, op, v) in &action.predicates {
        let key = (col.table.to_ascii_lowercase(), col.column.to_ascii_lowercase());
        let entry = domains.entry(key).or_insert_with(|| {
            let leaf = asg
                .iter()
                .find_map(|n| n.leaf.as_ref().filter(|l| l.name.matches(&col.table, &col.column)));
            match leaf {
                Some(l) => (l.check.clone(), l.ty),
                None => (Domain::default(), ufilter_rdb::DataType::Str),
            }
        });
        entry.0.constrain(*op, v);
    }
    for ((t, c), (domain, ty)) in domains {
        if !domain.satisfiable(Some(ty)) {
            return Err(InvalidReason::PredicateOutsideView {
                detail: format!("predicates on {t}.{c} contradict the view's check annotation"),
            });
        }
    }
    Ok(())
}

/// A fragment aimed at a *value* element must carry a value: materialization
/// omits NULL attributes entirely, so an empty `<price/>` can never appear
/// in a view instance and inserting (or swapping in) one is invalid.
fn require_value_text(
    asg: &ViewAsg,
    node: ufilter_asg::AsgNodeId,
    frag: &Document,
) -> Result<(), InvalidReason> {
    let n = asg.node(node);
    if !matches!(n.kind, AsgNodeKind::Tag | AsgNodeKind::Leaf) {
        return Ok(());
    }
    if clean_text(&frag.text_content(frag.root())).is_empty() {
        return Err(InvalidReason::TypeViolation {
            detail: format!(
                "<{}> is a value element: an empty occurrence cannot appear in any \
                 view instance",
                n.tag
            ),
        });
    }
    Ok(())
}

/// Recursive fragment validation against the view-ASG subtree (§4, insert
/// checks): hierarchy conformance, then leaf domain / check / NOT NULL.
fn validate_fragment(
    asg: &ViewAsg,
    node: ufilter_asg::AsgNodeId,
    frag: &Document,
    el: NodeId,
) -> Result<(), InvalidReason> {
    let n = asg.node(node);
    match n.kind {
        AsgNodeKind::Tag => {
            let leaf = find_leaf(asg, node).expect("tag wraps a leaf");
            let text = clean_text(&frag.text_content(el));
            if text.is_empty() {
                if leaf.not_null {
                    return Err(InvalidReason::NotNullViolation {
                        detail: format!("<{}> ({}) must not be empty", n.tag, leaf.name),
                    });
                }
                return Ok(());
            }
            let value =
                Value::parse_as(&text, leaf.ty).ok_or_else(|| InvalidReason::TypeViolation {
                    detail: format!("'{text}' is not a valid {} for <{}>", leaf.ty, n.tag),
                })?;
            if !leaf.check.contains(&value) {
                return Err(InvalidReason::CheckViolation {
                    detail: format!(
                        "value {value} for <{}> violates the check annotation of {}",
                        n.tag, leaf.name
                    ),
                });
            }
            Ok(())
        }
        AsgNodeKind::Internal | AsgNodeKind::Root => {
            // Hierarchy conformance: every fragment child must match a
            // schema child; cardinalities 1/?/+ are enforced.
            let schema_children = &n.children;
            for child_el in frag.child_elements(el) {
                let tag = frag.name(child_el).unwrap_or("");
                let matched =
                    schema_children.iter().find(|c| asg.node(**c).tag.eq_ignore_ascii_case(tag));
                match matched {
                    Some(c) => validate_fragment(asg, *c, frag, child_el)?,
                    None => {
                        return Err(InvalidReason::HierarchyViolation {
                            detail: format!("<{tag}> cannot occur under <{}>", n.tag),
                        })
                    }
                }
            }
            for c in schema_children {
                let cn = asg.node(*c);
                let count = frag.children_named(el, &cn.tag).len();
                let ok = match cn.card {
                    Card::One => count == 1,
                    Card::Opt => count <= 1,
                    Card::Plus => count >= 1,
                    Card::Many => true,
                };
                if !ok {
                    return Err(InvalidReason::HierarchyViolation {
                        detail: format!(
                            "<{}> must occur {} under <{}>, found {count}",
                            cn.tag,
                            match cn.card {
                                Card::One => "exactly once".to_string(),
                                Card::Opt => "at most once".to_string(),
                                Card::Plus => "at least once".to_string(),
                                Card::Many => unreachable!(),
                            },
                            n.tag
                        ),
                    });
                }
            }
            Ok(())
        }
        // Fragment content destined for an aggregate slot cannot be
        // locally wrong — the non-injective classification rejects the
        // whole insert right after validation anyway.
        AsgNodeKind::Leaf | AsgNodeKind::Aggregate => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bookdemo;
    use crate::target::resolve;

    fn resolved(update: &str) -> Vec<ResolvedAction> {
        let f = bookdemo::book_filter();
        let u = ufilter_xquery::parse_update(update).unwrap();
        resolve(&f.asg, &u).unwrap()
    }

    fn validate_one(update: &str) -> Result<(), InvalidReason> {
        let f = bookdemo::book_filter();
        let actions = resolved(update);
        validate(&f.asg, &actions[0])
    }

    #[test]
    fn u1_rejected_for_empty_title_first() {
        let err = validate_one(bookdemo::U1).unwrap_err();
        assert!(matches!(err, InvalidReason::NotNullViolation { .. }), "{err}");
    }

    #[test]
    fn price_check_violation_caught_when_title_present() {
        let u = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>98004</bookid><title>T</title><price>0.00</price>
<publisher><pubid>A01</pubid><pubname>M</pubname></publisher></book> }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::CheckViolation { .. }), "{err}");
    }

    #[test]
    fn price_above_view_bound_is_also_invalid() {
        // The merged check annotation is {0 < value < 50}: a $60 book can
        // never appear in this view, so inserting it is invalid.
        let u = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>98004</bookid><title>T</title><price>60.00</price>
<publisher><pubid>A01</pubid><pubname>M</pubname></publisher></book> }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::CheckViolation { .. }), "{err}");
    }

    #[test]
    fn unknown_child_element_rejected() {
        let u = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>98004</bookid><title>T</title><price>20.00</price>
<isbn>123</isbn>
<publisher><pubid>A01</pubid><pubname>M</pubname></publisher></book> }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::HierarchyViolation { .. }), "{err}");
    }

    #[test]
    fn two_publishers_violate_cardinality_one() {
        let u = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>98004</bookid><title>T</title><price>20.00</price>
<publisher><pubid>A01</pubid><pubname>M</pubname></publisher>
<publisher><pubid>A02</pubid><pubname>S</pubname></publisher></book> }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::HierarchyViolation { .. }), "{err}");
    }

    #[test]
    fn non_numeric_price_is_a_type_violation() {
        let u = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>98004</bookid><title>T</title><price>cheap</price>
<publisher><pubid>A01</pubid><pubname>M</pubname></publisher></book> }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::TypeViolation { .. }), "{err}");
    }

    #[test]
    fn nested_reviews_in_fragment_validate_too() {
        let bad = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>98004</bookid><title>T</title><price>20.00</price>
<publisher><pubid>A01</pubid><pubname>M</pubname></publisher>
<review><reviewid> </reviewid><comment>ok</comment></review></book> }"#;
        let err = validate_one(bad).unwrap_err();
        // review.reviewid is a key member → NOT NULL.
        assert!(matches!(err, InvalidReason::NotNullViolation { .. }), "{err}");
    }

    #[test]
    fn u5_predicate_contradiction() {
        let err = validate_one(bookdemo::U5).unwrap_err();
        assert!(matches!(err, InvalidReason::PredicateOutsideView { .. }), "{err}");
    }

    #[test]
    fn boundary_predicate_exactly_50_is_invalid() {
        // view: price < 50 (strict) — selecting price = 50 is empty.
        let u = r#"
FOR $book IN document("BookView.xml")/book
WHERE $book/price/text() = 50.00
UPDATE $book { DELETE $book/review }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::PredicateOutsideView { .. }), "{err}");
    }

    #[test]
    fn boundary_predicate_just_below_50_is_valid() {
        let u = r#"
FOR $book IN document("BookView.xml")/book
WHERE $book/price/text() = 49.99
UPDATE $book { DELETE $book/review }"#;
        assert!(validate_one(u).is_ok());
    }

    #[test]
    fn delete_of_required_simple_element_invalid() {
        // Deleting the whole <title> element (not just its text) is invalid
        // too: title is NOT NULL.
        let u = r#"
FOR $book IN document("BookView.xml")/book
UPDATE $book { DELETE $book/title }"#;
        let err = validate_one(u).unwrap_err();
        assert!(matches!(err, InvalidReason::NonDeletableNode { .. }), "{err}");
    }

    #[test]
    fn fragments_with_quoted_values_accepted() {
        // Paper figures quote values: <bookid>"98004"</bookid>.
        let u = r#"
FOR $root IN document("BookView.xml")
UPDATE $root {
INSERT <book><bookid>"98004"</bookid><title>"T"</title><price>"20.00"</price>
<publisher><pubid>"A01"</pubid><pubname>"M"</pubname></publisher></book> }"#;
        assert!(validate_one(u).is_ok());
    }
}
